//! Umbrella package for the FrogWild reproduction workspace.
//!
//! This crate intentionally contains no code: it exists so the workspace-level
//! integration tests (`tests/integration_*.rs`) and the runnable examples
//! (`examples/*.rs`) have a package to live in. The functionality is in:
//!
//! * [`frogwild`] — algorithms, metrics, theory bounds, drivers (crates/core),
//! * [`frogwild_graph`] — CSR graphs, generators, I/O (crates/graph),
//! * [`frogwild_engine`] — the simulated PowerGraph-style engine (crates/engine),
//! * `frogwild_cli` — the `frogwild` command-line binary (crates/cli),
//! * `frogwild_bench` — the figure harness and Criterion benches (crates/bench).

pub use frogwild;
pub use frogwild_engine;
pub use frogwild_graph;
