//! Small probability-distribution samplers used by the walker programs.
//!
//! Only the two distributions the paper needs are implemented — geometric (walker
//! lifespans) and binomial (per-edge frog counts in the paper's idealised scatter) —
//! to avoid pulling in an extra dependency for two functions.

use rand::Rng;

/// Samples a geometric random variable counting the number of *failures* before the
/// first success: `P(X = k) = p (1 - p)^k`, `k = 0, 1, 2, …`.
///
/// This is the distribution of a FrogWild walker's lifespan with success probability
/// `p = p_T` (the walker "succeeds" at dying). Uses inverse-transform sampling.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric parameter must be in (0, 1]");
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Samples a binomial random variable `Bin(n, p)`.
///
/// For small `n` the sample is the sum of `n` Bernoulli draws; for large `n` with
/// non-degenerate `p` a normal approximation with continuity correction is used (the
/// walkers counts involved are large enough that the approximation error is far below
/// the Monte-Carlo noise of the estimator itself).
///
/// # Panics
///
/// Panics unless `0 <= p <= 1`.
pub fn binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial probability must be in [0, 1]"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let variance = mean * (1.0 - p);
    if n <= 64 || variance < 25.0 {
        // Direct simulation: exact and fast enough at this size.
        let mut count = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                count += 1;
            }
        }
        count
    } else {
        // Normal approximation with continuity correction, clamped to the support.
        let z = standard_normal(rng);
        let sample = (mean + z * variance.sqrt() + 0.5).floor();
        sample.clamp(0.0, n as f64) as u64
    }
}

/// A standard normal sample via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Splits `total` items as evenly as possible into `parts` shares and returns the share
/// with the given `index` (shares `0..total % parts` receive one extra item). This is
/// the deterministic split the paper's implementation uses to divide surviving frogs
/// across synchronized mirrors.
pub fn even_split(total: u64, parts: usize, index: usize) -> u64 {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(index < parts, "share index out of range");
    let parts = parts as u64;
    let base = total / parts;
    let extra = total % parts;
    base + u64::from((index as u64) < extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_matches_theory() {
        let p = 0.15;
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| geometric(p, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // ≈ 5.67
        assert!(
            (mean - expected).abs() < 0.1,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(geometric(1.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "geometric parameter")]
    fn geometric_rejects_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = geometric(0.0, &mut rng);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(10, 0.0, &mut rng), 0);
        assert_eq!(binomial(10, 1.0, &mut rng), 10);
    }

    #[test]
    fn binomial_small_n_mean_and_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20u64;
        let p = 0.3;
        let trials = 50_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let x = binomial(n, p, &mut rng);
            assert!(x <= n);
            sum += x;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - n as f64 * p).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_large_n_uses_approximation_sanely() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000u64;
        let p = 0.4;
        let trials = 2_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let x = binomial(n, p, &mut rng);
            assert!(x <= n);
            sum += x as f64;
        }
        let mean = sum / trials as f64;
        let expected = n as f64 * p;
        // standard error of the mean ≈ sqrt(np(1-p)/trials) ≈ 3.5
        assert!(
            (mean - expected).abs() < 20.0,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn even_split_sums_to_total_and_is_balanced() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 7] {
                let shares: Vec<u64> = (0..parts).map(|i| even_split(total, parts, i)).collect();
                assert_eq!(shares.iter().sum::<u64>(), total);
                let max = *shares.iter().max().unwrap();
                let min = *shares.iter().min().unwrap();
                assert!(max - min <= 1, "total {total}, parts {parts}: {shares:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn even_split_rejects_zero_parts() {
        let _ = even_split(10, 0, 0);
    }
}
