//! The `Session` query service — the primary public API of the crate.
//!
//! Serving-oriented PageRank systems (FAST-PPR, PowerWalk) treat rank estimation as a
//! *query service* over precomputed state: partition the graph once, then answer many
//! cheap queries against the warmed layout. A [`Session`] is exactly that shape for the
//! FrogWild engine:
//!
//! 1. build it once from a graph via [`Session::builder`] — partitioning (the expensive,
//!    `O(|E|)` ingress step) happens a single time at [`SessionBuilder::build`];
//! 2. issue any number of [`Query`] values through [`Session::query`]; every query
//!    reuses the vertex-cut, so its [`QueryCost`] reports **zero** partitioning cost
//!    and the session's (reused) replication factor;
//! 3. read the cumulative, amortized economics of the stream from
//!    [`Session::stats`].
//!
//! A session can additionally precompute a [walk index](crate::walkindex) via
//! [`SessionBuilder::walk_index`]: [`Query::Ppr`] and [`Query::TopK`] are then served
//! by stitching cached walk segments instead of fresh Monte-Carlo sampling, with the
//! segment hit/miss economics reported per query in [`QueryCost`] and cumulatively in
//! [`SessionStats`].
//!
//! All validation happens at `build()` / `query()` time and surfaces as a typed
//! [`Error`] — no panics on configuration paths.
//!
//! ```
//! use frogwild::session::{Query, Session};
//! use frogwild::FrogWildConfig;
//! use frogwild_engine::PartitionerKind;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = frogwild_graph::generators::livejournal_like(2_000, &mut rng);
//!
//! let mut session = Session::builder(&graph)
//!     .machines(8)
//!     .partitioner(PartitionerKind::Oblivious)
//!     .seed(42)
//!     .build()?;
//!
//! let config = FrogWildConfig {
//!     num_walkers: 20_000,
//!     iterations: 4,
//!     sync_probability: 0.7,
//!     ..FrogWildConfig::default()
//! };
//! let response = session.query(&Query::TopK { k: 20, config })?;
//! assert_eq!(response.ranking.len(), 20);
//! assert_eq!(response.cost.partition_seconds, 0.0); // layout reused, not rebuilt
//! # Ok::<(), frogwild::Error>(())
//! ```

use std::time::Instant;

use frogwild_engine::{ClusterConfig, PartitionedGraph, Partitioner, PartitionerKind};
use frogwild_graph::{DiGraph, VertexId};
use frogwild_obs::{span_meta, SpanKey, TraceConfig, Tracer};

use crate::autotune::{auto_topk_on, AutoTuneConfig};
use crate::config::{
    in_open_unit_interval, ExecutionConfig, FrogWildConfig, PageRankConfig, Scheduling,
};
use crate::driver::{run_frogwild_traced, run_graphlab_pr_traced, RunReport};
use crate::error::{Error, Result};
use crate::ppr::{
    forward_push_ppr, monte_carlo_ppr_counted, personalized_pagerank, single_source_restart,
};
use crate::serve::{LatencyStats, QueryKind, ServeConfig, ServeHandle, ServeReport};
use crate::walkindex::{
    build_walk_index_traced, indexed_pagerank, indexed_ppr, IndexServeStats, WalkIndex,
    WalkIndexBuildReport, WalkIndexConfig,
};

/// [`SpanKey::lane`] of the per-query index-serving span. Engine spans use lanes
/// 0–6 within their own `(superstep, machine, batch)` keyspace; the serve layer
/// keys by query sequence id and uses lanes from 8 up so the two instrumented
/// layers never hand the same key to two different sinks.
const LANE_INDEX: u16 = 8;

/// Builder for a [`Session`]. Obtain one via [`Session::builder`].
///
/// Defaults: 16 machines (the cluster size of the paper's accuracy figures), the
/// oblivious (PowerGraph-default) partitioner, a fixed seed, and no walk index.
#[derive(Clone, Copy, Debug)]
pub struct SessionBuilder<'g> {
    graph: &'g DiGraph,
    machines: usize,
    partitioner: PartitionerKind,
    seed: u64,
    execution: ExecutionConfig,
    serve: ServeConfig,
    walk_index: Option<WalkIndexConfig>,
    tracing: TraceConfig,
}

impl<'g> SessionBuilder<'g> {
    /// Number of simulated machines the session's cluster uses.
    pub fn machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Vertex-cut ingress strategy used for the one-time partitioning.
    pub fn partitioner(mut self, partitioner: PartitionerKind) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Seed for partitioning (query-level randomness is seeded per query config).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The [`ExecutionConfig`] every engine-served query runs under: worker pool,
    /// batch size, an optional tolerance override, and the bounded-staleness window.
    ///
    /// The worker/batch knobs decide only how work batches are spread over host
    /// threads — results are bit-identical for every setting. `staleness` changes the
    /// executor's message-visibility schedule (still deterministically — see
    /// [`ExecutionConfig`]); `staleness == 0` is the synchronous executor.
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    /// Worker-pool [`Scheduling`] knobs every engine-served query runs under.
    ///
    /// Thin wrapper over [`execution`](SessionBuilder::execution): sets only the
    /// `workers` and `batch_size` fields of the session's [`ExecutionConfig`],
    /// leaving tolerance and staleness untouched.
    #[deprecated(
        since = "0.6.0",
        note = "use `execution` with an `ExecutionConfig` instead"
    )]
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.execution = self
            .execution
            .workers(scheduling.workers)
            .batch_size(scheduling.batch_size);
        self
    }

    /// Default [`ServeConfig`] for the concurrent serving front-end the session
    /// hands out via [`Session::serve`] — pool size, submission-queue bound, batch
    /// size, and the overload [`Admission`](crate::serve::Admission) policy.
    pub fn serve_config(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Precompute a [`WalkIndex`] at [`build`](SessionBuilder::build) time and serve
    /// [`Query::Ppr`] and [`Query::TopK`] from it.
    ///
    /// The build cost (segment generation, split across the simulated machines) is
    /// paid once and reported as [`SessionStats::index_build_seconds`]; every
    /// index-served query then replaces fresh per-hop Monte-Carlo sampling with O(1)
    /// cached-segment stitching, and its [`QueryCost`] reports the segment hit/miss
    /// economics. A [`PprMethod::ForwardPush`] query keeps its own `epsilon` as the
    /// localization threshold (the index only adds walks for the residual mass).
    /// [`Query::Pagerank`] (the GraphLab baseline) and
    /// [`PprMethod::PowerIteration`] (the exact reference) always bypass the index.
    pub fn walk_index(mut self, config: WalkIndexConfig) -> Self {
        self.walk_index = Some(config);
        self
    }

    /// Structured tracing for everything the session runs: the engine superstep
    /// loop, walk-index build and serving, and the concurrent front-end all record
    /// spans into one [`Tracer`] (read it back via [`Session::tracer`], export via
    /// [`crate::obs::Timeline`]). The default is [`TraceConfig::disabled`], which
    /// allocates no buffers and reads no clock. Tracing never changes query
    /// results — responses are bit-identical with tracing on or off.
    pub fn tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = tracing;
        self
    }

    /// Validates the builder and partitions the graph — the one expensive step of the
    /// session's lifetime. Every subsequent [`Session::query`] reuses the layout.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] when `machines` is zero or exceeds the `u16` machine
    ///   id space;
    /// * [`Error::Graph`] when the graph has no vertices.
    pub fn build(self) -> Result<Session<'g>> {
        if self.machines == 0 {
            return Err(Error::config(
                "SessionBuilder",
                "machines must be at least 1",
            ));
        }
        if self.machines > u16::MAX as usize {
            return Err(Error::config(
                "SessionBuilder",
                format!(
                    "at most {} machines supported, got {}",
                    u16::MAX,
                    self.machines
                ),
            ));
        }
        if self.graph.num_vertices() == 0 {
            return Err(Error::graph("cannot build a session over an empty graph"));
        }
        self.execution.validate()?;
        self.serve.validate()?;
        let cluster = ClusterConfig::new(self.machines, self.seed);
        let tracer = Tracer::new(self.tracing);
        let started = Instant::now(); // lint:allow(timing, host-seconds telemetry only; excluded from determinism)
        let pg = PartitionedGraph::build(self.graph, self.machines, &self.partitioner, self.seed);
        let partition_seconds = started.elapsed().as_secs_f64();
        let replication_factor = pg.placement().replication_factor();
        let index = match self.walk_index {
            Some(config) => {
                let (index, report) = build_walk_index_traced(self.graph, &pg, &config, &tracer)?;
                Some(SessionIndex {
                    index,
                    report,
                    config,
                })
            }
            None => None,
        };
        let index_build_seconds = index.as_ref().map_or(0.0, |si| si.report.build_seconds);
        Ok(Session {
            graph: self.graph,
            pg,
            cluster,
            partitioner: self.partitioner,
            execution: self.execution,
            serve_config: self.serve,
            index,
            tracer,
            stats: SessionStats {
                queries_served: 0,
                queries_rejected: 0,
                partition_seconds,
                replication_factor,
                index_build_seconds,
                index_served_queries: 0,
                total_network_bytes: 0,
                total_simulated_seconds: 0.0,
                total_cpu_seconds: 0.0,
                total_host_seconds: 0.0,
                total_wall_seconds: 0.0,
                total_push_ops: 0,
                total_walk_hops: 0,
                total_index_hits: 0,
                total_index_misses: 0,
                total_active_vertices: 0,
                total_skipped_scatters: 0,
                total_routed_messages: 0,
                total_staleness_lag: 0,
                max_inbox_depth: 0,
                total_barrier_wait_avoided_seconds: 0.0,
                latency: LatencyStats::default(),
            },
        })
    }
}

/// How a [`Query::Ppr`] is evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PprMethod {
    /// Andersen–Chung–Lang forward push down to the given per-vertex residual
    /// threshold. Touches only the source's neighbourhood — the cheap serving path.
    ForwardPush {
        /// Per-vertex residual threshold (`ε > 0`); smaller is more accurate.
        epsilon: f64,
    },
    /// Dense power iteration on the personalized chain — the exact reference.
    PowerIteration {
        /// Maximum number of iterations.
        max_iterations: usize,
        /// L1 convergence tolerance.
        tolerance: f64,
    },
    /// Fresh Monte-Carlo walks from the source (geometric lifespans, endpoints
    /// counted) — the estimator a [walk index](crate::walkindex) amortizes. Serving
    /// this method from a session *with* an index replaces the per-hop sampling with
    /// cached-segment stitching.
    MonteCarlo {
        /// Number of walks released from the source.
        walkers: u64,
        /// Truncation of each walk's geometric lifespan.
        max_steps: usize,
        /// Seed for the walk randomness (mixed with the source vertex).
        seed: u64,
    },
}

/// A request against a [`Session`].
///
/// Each variant carries its own configuration, so one session can serve a
/// heterogeneous stream (different walker budgets, different `p_s`, different sources)
/// without rebuilding anything.
///
/// The enum is `#[non_exhaustive]`: future query kinds (e.g. a FAST-PPR-style pair
/// query) can be added without a breaking release, so downstream `match`es need a
/// wildcard arm. Prefer the constructor helpers ([`Query::top_k`], [`Query::ppr`], …)
/// over spelling out variant literals.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Estimate the global top-`k` PageRank vertices with FrogWild random walkers.
    TopK {
        /// How many vertices to rank.
        k: usize,
        /// The FrogWild run configuration (walkers, iterations, `p_s`, seed).
        config: FrogWildConfig,
    },
    /// Run the GraphLab-style PageRank baseline and report its top-`k`.
    Pagerank {
        /// How many vertices to rank.
        k: usize,
        /// The baseline PageRank configuration.
        config: PageRankConfig,
    },
    /// Personalized PageRank from a single source vertex, ranked top-`k`.
    Ppr {
        /// The source vertex the walk restarts from.
        source: VertexId,
        /// How many vertices to rank.
        k: usize,
        /// Teleportation probability of the personalized chain (`0 < p_T < 1`).
        teleport_probability: f64,
        /// Evaluation method.
        method: PprMethod,
    },
    /// Self-tuning top-k: pilot run → Theorem-1 walker plan → planned run.
    AutotunedTopK {
        /// The pilot/plan configuration (contains its own `k`).
        config: AutoTuneConfig,
    },
}

impl Query {
    /// A [`Query::TopK`] under the default [`FrogWildConfig`] — the paper's
    /// estimator with its default walker budget, iterations and `p_s`.
    pub fn top_k(k: usize) -> Self {
        Query::TopK {
            k,
            config: FrogWildConfig::default(),
        }
    }

    /// A [`Query::TopK`] under an explicit [`FrogWildConfig`].
    pub fn top_k_with(k: usize, config: FrogWildConfig) -> Self {
        Query::TopK { k, config }
    }

    /// A [`Query::Pagerank`] (the GraphLab-style baseline) under the default
    /// [`PageRankConfig`].
    pub fn pagerank(k: usize) -> Self {
        Query::Pagerank {
            k,
            config: PageRankConfig::default(),
        }
    }

    /// A [`Query::Pagerank`] under an explicit [`PageRankConfig`].
    pub fn pagerank_with(k: usize, config: PageRankConfig) -> Self {
        Query::Pagerank { k, config }
    }

    /// A [`Query::Ppr`] from `source`: top-20 under the conventional 0.15 teleport
    /// probability, evaluated with forward push at `ε = 1e-6` (the cheap serving
    /// path). Spell out the variant for a different `k`, teleport or method.
    pub fn ppr(source: VertexId) -> Self {
        Query::Ppr {
            source,
            k: 20,
            teleport_probability: 0.15,
            method: PprMethod::ForwardPush { epsilon: 1e-6 },
        }
    }

    /// A [`Query::AutotunedTopK`] under the given pilot/plan configuration.
    pub fn autotuned(config: AutoTuneConfig) -> Self {
        Query::AutotunedTopK { config }
    }

    /// The `k` this query ranks.
    pub fn k(&self) -> usize {
        match self {
            Query::TopK { k, .. } | Query::Pagerank { k, .. } | Query::Ppr { k, .. } => *k,
            Query::AutotunedTopK { config } => config.k,
        }
    }

    /// The [`QueryKind`] keying this query's latency telemetry.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::TopK { .. } => QueryKind::TopK,
            Query::Pagerank { .. } => QueryKind::Pagerank,
            Query::Ppr { .. } => QueryKind::Ppr,
            Query::AutotunedTopK { .. } => QueryKind::AutotunedTopK,
        }
    }
}

/// Cost of answering one query, with the partitioning economics made explicit.
///
/// `partition_seconds` is always `0.0` and `repartitioned` always `false` for session
/// queries: the vertex-cut was paid for once at [`SessionBuilder::build`] and is reused
/// — that is the amortization the session exists to provide. `replication_factor` is
/// the session layout's (reused) factor.
///
/// The work-unit fields make the serving paths comparable: `push_ops` and `walk_hops`
/// count the local-push and walk-sampling work of serial queries, and the `index_*`
/// fields report the cached-segment economics when a [walk index](crate::walkindex)
/// answered the query.
///
/// Equality ignores `host_seconds`: host time is wall-clock measurement noise, while
/// every other field is a deterministic function of the query and the session seed.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCost {
    /// Seconds spent partitioning for this query — zero, the layout is reused.
    pub partition_seconds: f64,
    /// Whether this query rebuilt the vertex-cut — `false` for session queries.
    pub repartitioned: bool,
    /// Replication factor of the (reused) session layout.
    pub replication_factor: f64,
    /// Engine supersteps executed (zero for serial and index-served queries).
    pub supersteps: usize,
    /// Simulated bytes crossing machine boundaries.
    pub network_bytes: u64,
    /// Simulated cross-machine messages after combining.
    pub network_messages: u64,
    /// Simulated cluster wall-clock seconds.
    pub simulated_seconds: f64,
    /// Simulated CPU seconds summed over machines.
    pub simulated_cpu_seconds: f64,
    /// Forward-push operations performed (serial PPR and index-served queries).
    pub push_ops: u64,
    /// Walk hops covered, freshly sampled or stitched from the index.
    pub walk_hops: u64,
    /// Walk segments served straight from the session's walk index.
    pub index_hits: u64,
    /// Segment requests the index could not serve (fresh hops were resampled).
    pub index_misses: u64,
    /// Whether the session's walk index answered this query.
    pub index_served: bool,
    /// Frontier sizes summed over supersteps (engine-served queries only).
    pub active_vertices: u64,
    /// Scatters the executor's delta gate suppressed (engine-served queries only).
    pub skipped_scatters: u64,
    /// Post-combining message deliveries routed between scatter and the next gather,
    /// including machine-local ones (engine-served queries only).
    pub routed_messages: u64,
    /// Summed delivery lag (in supersteps) of messages the bounded-staleness
    /// executor deferred — zero for synchronous (`staleness == 0`) runs.
    pub staleness_lag: u64,
    /// Deepest staging inbox observed over the run's supersteps (messages staged
    /// beyond the next superstep's drain point) — zero for synchronous runs.
    pub max_inbox_depth: u64,
    /// Simulated seconds of barrier wait the staleness window overlapped away,
    /// relative to fully barriered supersteps — zero for synchronous runs.
    pub barrier_wait_avoided_seconds: f64,
    /// Real (host) seconds spent answering the query. Excluded from equality.
    pub host_seconds: f64,
}

impl PartialEq for QueryCost {
    fn eq(&self, other: &Self) -> bool {
        self.partition_seconds == other.partition_seconds
            && self.repartitioned == other.repartitioned
            && self.replication_factor == other.replication_factor
            && self.supersteps == other.supersteps
            && self.network_bytes == other.network_bytes
            && self.network_messages == other.network_messages
            && self.simulated_seconds == other.simulated_seconds
            && self.simulated_cpu_seconds == other.simulated_cpu_seconds
            && self.push_ops == other.push_ops
            && self.walk_hops == other.walk_hops
            && self.index_hits == other.index_hits
            && self.index_misses == other.index_misses
            && self.index_served == other.index_served
            && self.active_vertices == other.active_vertices
            && self.skipped_scatters == other.skipped_scatters
            && self.routed_messages == other.routed_messages
            && self.staleness_lag == other.staleness_lag
            && self.max_inbox_depth == other.max_inbox_depth
            && self.barrier_wait_avoided_seconds == other.barrier_wait_avoided_seconds
    }
}

impl QueryCost {
    fn from_run(report: &RunReport, host_seconds: f64) -> Self {
        QueryCost {
            partition_seconds: 0.0,
            repartitioned: false,
            replication_factor: report.cost.replication_factor,
            supersteps: report.cost.supersteps,
            network_bytes: report.cost.network_bytes,
            network_messages: report.cost.network_messages,
            simulated_seconds: report.cost.simulated_total_seconds,
            simulated_cpu_seconds: report.cost.simulated_cpu_seconds,
            active_vertices: report.cost.active_vertices,
            skipped_scatters: report.cost.skipped_scatters,
            routed_messages: report.cost.routed_messages,
            staleness_lag: report.cost.staleness_lag,
            max_inbox_depth: report.cost.max_inbox_depth,
            barrier_wait_avoided_seconds: report.cost.barrier_wait_avoided_seconds,
            host_seconds,
            ..QueryCost::default()
        }
    }

    fn from_index_serve(
        stats: &IndexServeStats,
        replication_factor: f64,
        started: Instant,
    ) -> Self {
        QueryCost {
            replication_factor,
            push_ops: stats.pushes as u64,
            walk_hops: stats.walk_hops,
            index_hits: stats.segment_hits,
            index_misses: stats.segment_misses,
            index_served: true,
            host_seconds: started.elapsed().as_secs_f64(),
            ..QueryCost::default()
        }
    }

    /// Which path answered the query: `"index"`, `"engine"` or `"serial"`.
    pub fn served_by(&self) -> &'static str {
        if self.index_served {
            "index"
        } else if self.supersteps > 0 {
            "engine"
        } else {
            "serial"
        }
    }
}

impl std::fmt::Display for QueryCost {
    /// A compact per-query cost audit, mirroring the cumulative
    /// [`SessionStats`] display at single-query granularity.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cost: {}-served, {:.3}ms host",
            self.served_by(),
            self.host_seconds * 1e3
        )?;
        writeln!(
            f,
            "  work: {} push ops, {} walk hops, {} index hits / {} misses",
            self.push_ops, self.walk_hops, self.index_hits, self.index_misses
        )?;
        writeln!(
            f,
            "  engine: {} supersteps, {} active vertices, {} skipped scatters, \
             {} routed messages",
            self.supersteps, self.active_vertices, self.skipped_scatters, self.routed_messages
        )?;
        writeln!(
            f,
            "  async: {} staleness lag, inbox depth {}, {:.4}s barrier wait avoided",
            self.staleness_lag, self.max_inbox_depth, self.barrier_wait_avoided_seconds
        )?;
        write!(
            f,
            "  network: {} bytes, {} messages; simulated {:.4}s wall, {:.4}s cpu",
            self.network_bytes,
            self.network_messages,
            self.simulated_seconds,
            self.simulated_cpu_seconds
        )
    }
}

/// Variant-specific details of a [`Response`].
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseDetail {
    /// A [`Query::TopK`] answer.
    TopK,
    /// A [`Query::Pagerank`] answer.
    Pagerank,
    /// A [`Query::Ppr`] answer.
    Ppr {
        /// Push operations performed (forward push) — `0` for power iteration.
        pushes: usize,
        /// Power iterations performed — `0` for forward push.
        iterations: usize,
        /// Residual mass (push) or final L1 residual (power iteration).
        residual: f64,
    },
    /// A [`Query::AutotunedTopK`] answer.
    AutotunedTopK {
        /// Top-k mass the pilot estimated.
        estimated_topk_mass: f64,
        /// Walker budget the plan settled on.
        planned_walkers: u64,
        /// Iteration count the plan settled on.
        planned_iterations: usize,
        /// Network bytes the pilot itself cost (included in the response cost).
        pilot_network_bytes: u64,
    },
}

/// Answer to a [`Query`].
///
/// Equality between two responses means the *deterministic* content matches: the
/// ranking, the full estimate, the algorithm label, the detail, and every simulated
/// cost field (host wall-clock time is excluded — see [`QueryCost`]). Two queries with
/// identical configuration (including seeds) on sessions with identical layouts
/// produce equal responses.
///
/// The struct is `#[non_exhaustive]`: construct it only through [`Session::query`] /
/// [`Session::serve`], and destructure with a `..` rest pattern, so future response
/// fields are non-breaking.
// lint:allow(non-exhaustive-ctor, output-only type; Session::query is its constructor)
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Human-readable algorithm label, e.g. `"FrogWild ps=0.7 iters=4 walkers=100000"`.
    pub algorithm: String,
    /// The top-`k` vertices, best first, paired with their estimated scores.
    pub ranking: Vec<(VertexId, f64)>,
    /// The full per-vertex estimate the ranking was drawn from.
    pub estimate: Vec<f64>,
    /// Cost of answering this query.
    pub cost: QueryCost,
    /// Variant-specific details.
    pub detail: ResponseDetail,
}

impl Response {
    /// The ranked vertices without their scores.
    pub fn top_vertices(&self) -> Vec<VertexId> {
        self.ranking.iter().map(|&(v, _)| v).collect()
    }

    /// The [`QueryKind`] of the query this response answered (derived from the
    /// detail variant, which maps one-to-one onto the query variants).
    pub fn kind(&self) -> QueryKind {
        match self.detail {
            ResponseDetail::TopK => QueryKind::TopK,
            ResponseDetail::Pagerank => QueryKind::Pagerank,
            ResponseDetail::Ppr { .. } => QueryKind::Ppr,
            ResponseDetail::AutotunedTopK { .. } => QueryKind::AutotunedTopK,
        }
    }
}

/// Cumulative cost of everything a [`Session`] has served.
///
/// `partition_seconds` was paid exactly once, at [`SessionBuilder::build`];
/// [`SessionStats::amortized_partition_seconds`] spreads it over the queries served so
/// far — the number that shrinks as the session earns its keep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionStats {
    /// Queries answered so far.
    pub queries_served: u64,
    /// Queries the serving front-end's admission control turned away (always zero
    /// for direct [`Session::query`] calls — only [`Session::serve`] streams can
    /// reject).
    pub queries_rejected: u64,
    /// Host seconds the one-time partitioning took.
    pub partition_seconds: f64,
    /// Replication factor of the session's vertex-cut.
    pub replication_factor: f64,
    /// Host seconds the one-time walk-index build took (zero without an index).
    pub index_build_seconds: f64,
    /// Queries the walk index answered.
    pub index_served_queries: u64,
    /// Total simulated network bytes over all queries.
    pub total_network_bytes: u64,
    /// Total simulated cluster seconds over all queries.
    pub total_simulated_seconds: f64,
    /// Total simulated CPU seconds over all queries.
    pub total_cpu_seconds: f64,
    /// Total host seconds spent answering queries, summed **per query** (excludes
    /// partitioning). When queries complete concurrently this exceeds the real
    /// elapsed time — that is service time, not wall time; see
    /// [`total_wall_seconds`](SessionStats::total_wall_seconds).
    pub total_host_seconds: f64,
    /// Real elapsed wall-clock seconds spent inside [`Session::query`] and
    /// [`Session::serve`] streams. For serial queries this tracks
    /// `total_host_seconds`; for concurrent streams it is the stream's elapsed
    /// time, so `total_host_seconds / total_wall_seconds` is the pool's effective
    /// concurrency.
    pub total_wall_seconds: f64,
    /// Total forward-push operations over all queries.
    pub total_push_ops: u64,
    /// Total walk hops (fresh or stitched) over all queries.
    pub total_walk_hops: u64,
    /// Total walk segments served from the index.
    pub total_index_hits: u64,
    /// Total segment requests the index could not serve.
    pub total_index_misses: u64,
    /// Total frontier sizes summed over every engine superstep served.
    pub total_active_vertices: u64,
    /// Total scatters the executor's delta gate suppressed.
    pub total_skipped_scatters: u64,
    /// Total post-combining message deliveries routed by the engine.
    pub total_routed_messages: u64,
    /// Total summed delivery lag (supersteps) of staleness-deferred messages.
    pub total_staleness_lag: u64,
    /// Deepest staging inbox observed over every engine-served query.
    pub max_inbox_depth: u64,
    /// Total simulated barrier-wait seconds the staleness window overlapped away.
    pub total_barrier_wait_avoided_seconds: f64,
    /// Per-query-kind latency histograms (service time) with p50/p95/p99, fed by
    /// every served query — serial or pooled.
    pub latency: LatencyStats,
}

impl SessionStats {
    /// The one-time partitioning cost spread over the queries served so far.
    pub fn amortized_partition_seconds(&self) -> f64 {
        if self.queries_served == 0 {
            self.partition_seconds
        } else {
            self.partition_seconds / self.queries_served as f64
        }
    }

    /// The one-time walk-index build cost spread over the queries the index served —
    /// the number that shrinks as the index earns its keep.
    pub fn amortized_index_build_seconds(&self) -> f64 {
        if self.index_served_queries == 0 {
            self.index_build_seconds
        } else {
            self.index_build_seconds / self.index_served_queries as f64
        }
    }

    /// Ratio of summed per-query service time to real elapsed serving time: ≈1 for
    /// a serial session, approaches the worker count for a saturated serving pool,
    /// and 0 before anything was served.
    pub fn effective_concurrency(&self) -> f64 {
        if self.total_wall_seconds > 0.0 {
            self.total_host_seconds / self.total_wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of all segment requests served from the index (1.0 when no segment
    /// was ever requested).
    pub fn index_hit_rate(&self) -> f64 {
        let total = self.total_index_hits + self.total_index_misses;
        if total == 0 {
            1.0
        } else {
            self.total_index_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SessionStats {
    /// A compact human-readable audit of the session's amortized economics, including
    /// the executor's frontier counters (active vertices, delta-skipped scatters,
    /// routed messages).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "session: {} queries served ({} index-served), {} rejected by admission control",
            self.queries_served, self.index_served_queries, self.queries_rejected
        )?;
        writeln!(
            f,
            "  layout: replication factor {:.3}, partitioned once in {:.3}s \
             ({:.4}s amortized per query)",
            self.replication_factor,
            self.partition_seconds,
            self.amortized_partition_seconds()
        )?;
        if self.index_build_seconds > 0.0 {
            writeln!(
                f,
                "  index: built in {:.3}s, hit rate {:.1}%, {} hits / {} misses",
                self.index_build_seconds,
                self.index_hit_rate() * 100.0,
                self.total_index_hits,
                self.total_index_misses
            )?;
        }
        writeln!(
            f,
            "  engine: {} active vertices over all supersteps, \
             {} scatters skipped by the delta gate, {} messages routed",
            self.total_active_vertices, self.total_skipped_scatters, self.total_routed_messages
        )?;
        if self.total_staleness_lag > 0 || self.total_barrier_wait_avoided_seconds > 0.0 {
            writeln!(
                f,
                "  async: {} staleness lag, max inbox depth {}, \
                 {:.4}s barrier wait avoided",
                self.total_staleness_lag,
                self.max_inbox_depth,
                self.total_barrier_wait_avoided_seconds
            )?;
        }
        writeln!(
            f,
            "  totals: {} network bytes, {:.4}s simulated, {:.4}s simulated CPU, \
             {:.4}s host, {} push ops, {} walk hops",
            self.total_network_bytes,
            self.total_simulated_seconds,
            self.total_cpu_seconds,
            self.total_host_seconds,
            self.total_push_ops,
            self.total_walk_hops
        )?;
        writeln!(
            f,
            "  serving: {:.4}s wall, effective concurrency {:.2}",
            self.total_wall_seconds,
            self.effective_concurrency()
        )?;
        if self.latency.count() > 0 {
            let indented = self
                .latency
                .to_string()
                .lines()
                .map(|line| format!("    {line}"))
                .collect::<Vec<_>>()
                .join("\n");
            write!(f, "  latency (service time):\n{indented}")
        } else {
            write!(f, "  latency (service time): nothing served yet")
        }
    }
}

/// The walk index a session optionally carries: arena, build report, serving knobs.
#[derive(Debug)]
struct SessionIndex {
    index: WalkIndex,
    report: WalkIndexBuildReport,
    config: WalkIndexConfig,
}

/// A persistent, queryable PageRank service over one partitioned graph.
///
/// See the [module documentation](self) for the full story. Construct via
/// [`Session::builder`]; serve via [`Session::query`]; audit via [`Session::stats`].
#[derive(Debug)]
pub struct Session<'g> {
    graph: &'g DiGraph,
    pg: PartitionedGraph,
    cluster: ClusterConfig,
    partitioner: PartitionerKind,
    execution: ExecutionConfig,
    serve_config: ServeConfig,
    index: Option<SessionIndex>,
    tracer: Tracer,
    stats: SessionStats,
}

impl<'g> Session<'g> {
    /// Starts building a session over `graph`.
    pub fn builder(graph: &'g DiGraph) -> SessionBuilder<'g> {
        SessionBuilder {
            graph,
            machines: 16,
            partitioner: PartitionerKind::default(),
            seed: 0x5EED_F20C,
            execution: ExecutionConfig::default(),
            serve: ServeConfig::default(),
            walk_index: None,
            tracing: TraceConfig::disabled(),
        }
    }

    /// Answers one query against the session's partitioned layout.
    ///
    /// The layout is never rebuilt: the returned [`QueryCost`] always reports
    /// `partition_seconds == 0.0` and `repartitioned == false`, and cumulative
    /// [`stats`](Session::stats) are updated.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] when the query's configuration fails validation;
    /// * [`Error::Query`] when the query itself is malformed (zero `k`, source vertex
    ///   out of range).
    pub fn query(&mut self, query: &Query) -> Result<Response> {
        let response = self.execute_at(self.stats.queries_served, query)?;
        self.record_response(&response);
        // A serial query occupies the caller for exactly its service time, so wall
        // time and summed host time advance together on this path.
        self.stats.total_wall_seconds += response.cost.host_seconds;
        Ok(response)
    }

    /// Hands out the concurrent serving front-end under the builder-configured
    /// [`ServeConfig`] (see [`SessionBuilder::serve_config`]).
    ///
    /// The returned [`ServeHandle`] shares the session's read-only state — graph,
    /// partitioned layout, walk-index arena — across a fixed worker pool behind a
    /// bounded, admission-controlled submission queue. Served streams fold into the
    /// same cumulative [`SessionStats`] as serial queries.
    pub fn serve(&mut self) -> ServeHandle<'_, 'g> {
        let config = self.serve_config;
        ServeHandle::new(self, config)
    }

    /// Like [`Session::serve`], but under an explicit [`ServeConfig`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the config fails [`ServeConfig::validate`].
    pub fn serve_with(&mut self, config: ServeConfig) -> Result<ServeHandle<'_, 'g>> {
        config.validate()?;
        Ok(ServeHandle::new(self, config))
    }

    /// Answers one query against the session's read-only state without touching the
    /// cumulative stats — the `&self` serving core that both [`Session::query`] and
    /// the concurrent front-end's workers run on (every field it reads is immutable
    /// after `build()`, which is what makes the session shareable across a pool).
    ///
    /// `seq` is the query's sequence id, used only to key this query's trace spans
    /// deterministically — it never influences the answer.
    pub(crate) fn execute_at(&self, seq: u64, query: &Query) -> Result<Response> {
        if query.k() == 0 {
            return Err(Error::query("k must be positive"));
        }
        let started = Instant::now(); // lint:allow(timing, host-seconds telemetry only; excluded from determinism)
        let response = match query {
            Query::TopK { k, config } => match &self.index {
                Some(si) => {
                    let sink = self.tracer.sink();
                    let mut index_span = sink.span(
                        span_meta!("index_topk"),
                        SpanKey::new(seq, 0, 0, LANE_INDEX),
                    );
                    let served = indexed_pagerank(self.graph, &si.index, config)?;
                    record_index_counters(&mut index_span, &served.stats);
                    drop(index_span);
                    let algorithm = format!(
                        "FrogWild walk-index iters={} walkers={}",
                        config.iterations, config.num_walkers
                    );
                    self.indexed_response(algorithm, served, *k, ResponseDetail::TopK, started)
                }
                None => {
                    let report =
                        run_frogwild_traced(&self.pg, config, &self.execution, &self.tracer)?;
                    self.engine_response(report, *k, ResponseDetail::TopK, started)
                }
            },
            Query::Pagerank { k, config } => {
                let report =
                    run_graphlab_pr_traced(&self.pg, config, &self.execution, &self.tracer)?;
                self.engine_response(report, *k, ResponseDetail::Pagerank, started)
            }
            Query::Ppr {
                source,
                k,
                teleport_probability,
                method,
            } => self.ppr_response(seq, *source, *k, *teleport_probability, *method, started)?,
            Query::AutotunedTopK { config } => {
                let report = auto_topk_on(&self.pg, config)?;
                let detail = ResponseDetail::AutotunedTopK {
                    estimated_topk_mass: report.estimated_topk_mass,
                    planned_walkers: report.planned_walkers,
                    planned_iterations: report.planned_iterations,
                    pilot_network_bytes: report.pilot.cost.network_bytes,
                };
                // The response carries the final run's estimate, but the pilot's
                // traffic is real cost of answering this query — fold it in.
                let mut response = self.engine_response(report.run, config.k, detail, started);
                let cost = &mut response.cost;
                let pilot = &report.pilot.cost;
                cost.network_bytes = cost.network_bytes.saturating_add(pilot.network_bytes);
                cost.network_messages =
                    cost.network_messages.saturating_add(pilot.network_messages);
                cost.simulated_seconds += pilot.simulated_total_seconds;
                cost.simulated_cpu_seconds += pilot.simulated_cpu_seconds;
                cost.supersteps = cost.supersteps.saturating_add(pilot.supersteps);
                cost.active_vertices = cost.active_vertices.saturating_add(pilot.active_vertices);
                cost.skipped_scatters =
                    cost.skipped_scatters.saturating_add(pilot.skipped_scatters);
                cost.routed_messages = cost.routed_messages.saturating_add(pilot.routed_messages);
                cost.staleness_lag = cost.staleness_lag.saturating_add(pilot.staleness_lag);
                response.cost.max_inbox_depth = response
                    .cost
                    .max_inbox_depth
                    .max(report.pilot.cost.max_inbox_depth);
                response.cost.barrier_wait_avoided_seconds +=
                    report.pilot.cost.barrier_wait_avoided_seconds;
                response
            }
        };
        Ok(response)
    }

    /// Folds one served response into the cumulative stats.
    ///
    /// All work-unit totals accumulate with saturating arithmetic: a long-lived
    /// serving session must degrade to a pinned counter, never wrap around (or, in
    /// debug builds, panic) mid-stream.
    pub(crate) fn record_response(&mut self, response: &Response) {
        let cost = &response.cost;
        let s = &mut self.stats;
        s.queries_served = s.queries_served.saturating_add(1);
        s.total_network_bytes = s.total_network_bytes.saturating_add(cost.network_bytes);
        s.total_simulated_seconds += cost.simulated_seconds;
        s.total_cpu_seconds += cost.simulated_cpu_seconds;
        s.total_host_seconds += cost.host_seconds;
        s.total_push_ops = s.total_push_ops.saturating_add(cost.push_ops);
        s.total_walk_hops = s.total_walk_hops.saturating_add(cost.walk_hops);
        s.total_index_hits = s.total_index_hits.saturating_add(cost.index_hits);
        s.total_index_misses = s.total_index_misses.saturating_add(cost.index_misses);
        s.total_active_vertices = s.total_active_vertices.saturating_add(cost.active_vertices);
        s.total_skipped_scatters = s
            .total_skipped_scatters
            .saturating_add(cost.skipped_scatters);
        s.total_routed_messages = s.total_routed_messages.saturating_add(cost.routed_messages);
        s.total_staleness_lag = s.total_staleness_lag.saturating_add(cost.staleness_lag);
        s.max_inbox_depth = s.max_inbox_depth.max(cost.max_inbox_depth);
        s.total_barrier_wait_avoided_seconds += cost.barrier_wait_avoided_seconds;
        s.latency.record(response.kind(), cost.host_seconds);
        if cost.index_served {
            s.index_served_queries = s.index_served_queries.saturating_add(1);
        }
    }

    /// Folds a served stream's report into the cumulative stats: every served
    /// response individually, the rejection count, and the stream's *elapsed* wall
    /// time (which under concurrency is less than the summed per-query host time —
    /// the two are tracked separately on purpose).
    pub(crate) fn absorb_serve(&mut self, report: &ServeReport) {
        for response in report.responses() {
            self.record_response(response);
        }
        self.stats.queries_rejected = self.stats.queries_rejected.saturating_add(report.rejected);
        self.stats.total_wall_seconds += report.wall_seconds;
    }

    fn indexed_response(
        &self,
        algorithm: String,
        served: crate::walkindex::IndexedEstimate,
        k: usize,
        detail: ResponseDetail,
        started: Instant,
    ) -> Response {
        let cost =
            QueryCost::from_index_serve(&served.stats, self.stats.replication_factor, started);
        let ranking = crate::topk::top_k(&served.estimate, k)
            .into_iter()
            // lint:allow(indexing, vertex ids come from top_k over this same estimate vector)
            .map(|v| (v, served.estimate[v as usize]))
            .collect();
        Response {
            algorithm,
            ranking,
            estimate: served.estimate,
            cost,
            detail,
        }
    }

    fn engine_response(
        &self,
        report: RunReport,
        k: usize,
        detail: ResponseDetail,
        started: Instant,
    ) -> Response {
        let cost = QueryCost::from_run(&report, started.elapsed().as_secs_f64());
        let ranking = report
            .top_k(k)
            .into_iter()
            // lint:allow(indexing, vertex ids come from top_k over this same estimate vector)
            .map(|v| (v, report.estimate[v as usize]))
            .collect();
        Response {
            algorithm: report.algorithm,
            ranking,
            estimate: report.estimate,
            cost,
            detail,
        }
    }

    fn ppr_response(
        &self,
        seq: u64,
        source: VertexId,
        k: usize,
        teleport_probability: f64,
        method: PprMethod,
        started: Instant,
    ) -> Result<Response> {
        // Monte-Carlo-shaped methods are served from the walk index when the session
        // has one; the exact power-iteration reference always runs as asked. A
        // ForwardPush query keeps its own epsilon for the localization phase (the
        // index only adds stitched walks for the residual the push would have left
        // unattributed), so its accuracy guarantee tightens rather than changes. The
        // method's own parameters are validated either way, so a malformed query is
        // rejected identically with or without an index.
        if let (Some(si), false) = (
            &self.index,
            matches!(method, PprMethod::PowerIteration { .. }),
        ) {
            validate_ppr_method(&method)?;
            let config = match method {
                PprMethod::ForwardPush { epsilon } => WalkIndexConfig {
                    frontier_epsilon: epsilon,
                    ..si.config
                },
                _ => si.config,
            };
            let sink = self.tracer.sink();
            let mut index_span =
                sink.span(span_meta!("index_ppr"), SpanKey::new(seq, 0, 0, LANE_INDEX));
            let served = indexed_ppr(self.graph, &si.index, &config, source, teleport_probability)?;
            record_index_counters(&mut index_span, &served.stats);
            drop(index_span);
            let detail = ResponseDetail::Ppr {
                pushes: served.stats.pushes,
                iterations: 0,
                residual: served.stats.residual_mass,
            };
            let algorithm = format!(
                "PPR walk-index src={source} eps={} walks/residual={}",
                config.frontier_epsilon, config.walks_per_unit_residual
            );
            return Ok(self.indexed_response(algorithm, served, k, detail, started));
        }
        ppr_response_over(
            self.graph,
            source,
            k,
            teleport_probability,
            method,
            self.stats.replication_factor,
            started,
        )
    }

    /// The walk index the session serves from, when one was built.
    pub fn walk_index(&self) -> Option<&WalkIndex> {
        self.index.as_ref().map(|si| &si.index)
    }

    /// The build report of the session's walk index, when one was built.
    pub fn walk_index_report(&self) -> Option<&WalkIndexBuildReport> {
        self.index.as_ref().map(|si| &si.report)
    }

    /// The graph this session serves.
    pub fn graph(&self) -> &'g DiGraph {
        self.graph
    }

    /// The partitioned layout built once at [`SessionBuilder::build`].
    pub fn partitioned_graph(&self) -> &PartitionedGraph {
        &self.pg
    }

    /// The simulated cluster description.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The ingress strategy the session was built with.
    pub fn partitioner(&self) -> PartitionerKind {
        self.partitioner
    }

    /// The [`ExecutionConfig`] engine-served queries run under.
    pub fn execution(&self) -> ExecutionConfig {
        self.execution
    }

    /// The worker-pool scheduling knobs engine-served queries run under.
    ///
    /// Thin wrapper over [`execution`](Session::execution), reporting only its
    /// `workers` and `batch_size` fields.
    #[deprecated(since = "0.6.0", note = "use `execution` instead")]
    pub fn scheduling(&self) -> Scheduling {
        Scheduling {
            workers: self.execution.workers,
            batch_size: self.execution.batch_size,
        }
    }

    /// Name of the partitioner that produced the layout (e.g. `"oblivious"`).
    pub fn partitioner_name(&self) -> &'static str {
        self.partitioner.name()
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.pg.num_vertices()
    }

    /// Number of simulated machines.
    pub fn num_machines(&self) -> usize {
        self.cluster.num_machines
    }

    /// Replication factor of the session's vertex-cut.
    pub fn replication_factor(&self) -> f64 {
        self.stats.replication_factor
    }

    /// Cumulative cost of everything served so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The session's [`Tracer`] — disabled unless [`SessionBuilder::tracing`]
    /// enabled it. Call [`Tracer::finish`] to drain everything recorded so far into
    /// a merged [`crate::obs::Timeline`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

/// Attaches the index-serving economics of one query to its trace span.
fn record_index_counters(span: &mut frogwild_obs::SpanGuard<'_>, stats: &IndexServeStats) {
    span.counter("pushes", stats.pushes as u64);
    span.counter("frontier", stats.frontier_vertices);
    span.counter("stitched_walks", stats.stitched_walks);
    span.counter("segment_hits", stats.segment_hits);
    span.counter("segment_misses", stats.segment_misses);
    // Every miss resamples exactly one fresh hop.
    span.counter("resamples", stats.segment_misses);
    span.counter("walk_hops", stats.walk_hops);
}

/// Answers a [`Query::Ppr`] directly over an unpartitioned graph.
///
/// PPR evaluation is serial and never touches a cluster layout, so it does not need a
/// [`Session`] (or the one-time partitioning a session pays for). One-shot callers —
/// e.g. the CLI's `ppr` subcommand — use this; [`Session::query`] delegates to the same
/// code, stamping the session's replication factor into the cost and accumulating the
/// session stats. The returned cost reports a replication factor of `1.0` (no layout).
///
/// # Errors
///
/// The same typed errors as [`Session::query`] on a `Query::Ppr`: [`Error::Query`] for
/// zero `k` or an out-of-range source, [`Error::InvalidConfig`] for a bad teleport
/// probability or method parameter.
pub fn serve_ppr(
    graph: &DiGraph,
    source: VertexId,
    k: usize,
    teleport_probability: f64,
    method: PprMethod,
) -> Result<Response> {
    if k == 0 {
        return Err(Error::query("k must be positive"));
    }
    ppr_response_over(
        graph,
        source,
        k,
        teleport_probability,
        method,
        1.0,
        Instant::now(), // lint:allow(timing, stamps the host started instant of this query)
    )
}

/// Validates the parameters of a [`PprMethod`], shared by the serial and the
/// index-served paths so a malformed query fails identically on both.
fn validate_ppr_method(method: &PprMethod) -> Result<()> {
    match *method {
        PprMethod::ForwardPush { epsilon } => {
            if !(epsilon > 0.0 && epsilon.is_finite()) {
                return Err(Error::config(
                    "PprMethod::ForwardPush",
                    format!("epsilon must be positive and finite, got {epsilon}"),
                ));
            }
        }
        PprMethod::PowerIteration {
            max_iterations,
            tolerance,
        } => {
            if max_iterations == 0 {
                return Err(Error::config(
                    "PprMethod::PowerIteration",
                    "max_iterations must be positive",
                ));
            }
            if !(tolerance >= 0.0 && tolerance.is_finite()) {
                return Err(Error::config(
                    "PprMethod::PowerIteration",
                    format!("tolerance must be non-negative and finite, got {tolerance}"),
                ));
            }
        }
        PprMethod::MonteCarlo {
            walkers, max_steps, ..
        } => {
            if walkers == 0 {
                return Err(Error::config(
                    "PprMethod::MonteCarlo",
                    "walkers must be positive",
                ));
            }
            if max_steps == 0 {
                return Err(Error::config(
                    "PprMethod::MonteCarlo",
                    "max_steps must be positive",
                ));
            }
        }
    }
    Ok(())
}

fn ppr_response_over(
    graph: &DiGraph,
    source: VertexId,
    k: usize,
    teleport_probability: f64,
    method: PprMethod,
    replication_factor: f64,
    started: Instant,
) -> Result<Response> {
    let n = graph.num_vertices();
    if source as usize >= n {
        return Err(Error::query(format!(
            "ppr source {source} out of range for a graph with {n} vertices"
        )));
    }
    if !in_open_unit_interval(teleport_probability) {
        return Err(Error::config(
            "Query::Ppr",
            format!("teleport_probability must be in (0, 1), got {teleport_probability}"),
        ));
    }
    validate_ppr_method(&method)?;
    let (algorithm, estimate, detail, push_ops, walk_hops) = match method {
        PprMethod::ForwardPush { epsilon } => {
            let push = forward_push_ppr(graph, source, teleport_probability, epsilon);
            let detail = ResponseDetail::Ppr {
                pushes: push.pushes,
                iterations: 0,
                residual: push.residual_mass(),
            };
            (
                format!("PPR forward-push src={source} eps={epsilon}"),
                push.estimate,
                detail,
                push.pushes as u64,
                0,
            )
        }
        PprMethod::PowerIteration {
            max_iterations,
            tolerance,
        } => {
            let restart = single_source_restart(n, source);
            let result = personalized_pagerank(
                graph,
                &restart,
                teleport_probability,
                max_iterations,
                tolerance,
            );
            let detail = ResponseDetail::Ppr {
                pushes: 0,
                iterations: result.iterations,
                residual: result.residual,
            };
            (
                format!("PPR power-iteration src={source}"),
                result.scores,
                detail,
                0,
                0,
            )
        }
        PprMethod::MonteCarlo {
            walkers,
            max_steps,
            seed,
        } => {
            let mut rng = frogwild_engine::rng::derived_rng(&[seed, source as u64, 0x9C_0111]);
            let (estimate, hops) = monte_carlo_ppr_counted(
                graph,
                source,
                walkers,
                max_steps,
                teleport_probability,
                &mut rng,
            );
            let detail = ResponseDetail::Ppr {
                pushes: 0,
                iterations: 0,
                residual: 0.0,
            };
            (
                format!("PPR monte-carlo src={source} walkers={walkers}"),
                estimate,
                detail,
                0,
                hops,
            )
        }
    };
    let ranking = crate::topk::top_k(&estimate, k)
        .into_iter()
        // lint:allow(indexing, vertex ids come from top_k over this same estimate vector)
        .map(|v| (v, estimate[v as usize]))
        .collect();
    Ok(Response {
        algorithm,
        ranking,
        estimate,
        cost: QueryCost {
            replication_factor,
            push_ops,
            walk_hops,
            host_seconds: started.elapsed().as_secs_f64(),
            ..QueryCost::default()
        },
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(901);
        rmat(n, RmatParams::default(), &mut rng)
    }

    fn fw_config() -> FrogWildConfig {
        FrogWildConfig {
            num_walkers: 20_000,
            iterations: 4,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        }
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let g = test_graph(300);
        let session = Session::builder(&g)
            .machines(4)
            .partitioner(PartitionerKind::Hdrf)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(session.num_machines(), 4);
        assert_eq!(session.partitioner(), PartitionerKind::Hdrf);
        assert_eq!(session.partitioner_name(), "hdrf");
        assert_eq!(session.cluster().seed, 7);
        assert_eq!(session.num_vertices(), g.num_vertices());
        assert_eq!(session.stats().queries_served, 0);
        assert!(session.replication_factor() >= 1.0);
    }

    #[test]
    fn builder_rejects_invalid_cluster_and_empty_graph() {
        let g = test_graph(100);
        assert!(matches!(
            Session::builder(&g).machines(0).build(),
            Err(Error::InvalidConfig {
                context: "SessionBuilder",
                ..
            })
        ));
        assert!(matches!(
            Session::builder(&g).machines(70_000).build(),
            Err(Error::InvalidConfig {
                context: "SessionBuilder",
                ..
            })
        ));
        let empty = DiGraph::empty(0);
        assert!(matches!(
            Session::builder(&empty).build(),
            Err(Error::Graph { .. })
        ));
    }

    #[test]
    fn session_serves_all_query_kinds_and_accumulates_stats() {
        let g = test_graph(400);
        let mut session = Session::builder(&g).machines(4).seed(3).build().unwrap();
        let queries = [
            Query::TopK {
                k: 10,
                config: fw_config(),
            },
            Query::Pagerank {
                k: 10,
                config: PageRankConfig::truncated(2),
            },
            Query::Ppr {
                source: 0,
                k: 10,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-5 },
            },
            Query::AutotunedTopK {
                config: AutoTuneConfig {
                    k: 10,
                    pilot_walkers: 1_000,
                    max_walkers: 20_000,
                    ..AutoTuneConfig::default()
                },
            },
        ];
        let mut bytes = 0u64;
        for q in &queries {
            let r = session.query(q).unwrap();
            assert_eq!(r.ranking.len(), 10);
            assert_eq!(r.estimate.len(), g.num_vertices());
            assert_eq!(r.cost.partition_seconds, 0.0);
            assert!(!r.cost.repartitioned);
            bytes += r.cost.network_bytes;
        }
        let stats = session.stats();
        assert_eq!(stats.queries_served, 4);
        assert_eq!(stats.total_network_bytes, bytes);
        assert!(stats.total_host_seconds > 0.0);
        assert!(stats.amortized_partition_seconds() <= stats.partition_seconds);
    }

    #[test]
    fn execution_worker_knobs_do_not_change_query_results() {
        let g = test_graph(300);
        let q = Query::TopK {
            k: 15,
            config: FrogWildConfig {
                parallel: true,
                ..fw_config()
            },
        };
        let mut baseline = Session::builder(&g).machines(4).seed(11).build().unwrap();
        let expected = baseline.query(&q).unwrap();
        for execution in [
            ExecutionConfig::new().workers(2),
            ExecutionConfig::new().workers(5).batch_size(9),
        ] {
            let mut session = Session::builder(&g)
                .machines(4)
                .seed(11)
                .execution(execution)
                .build()
                .unwrap();
            assert_eq!(session.execution(), execution);
            let got = session.query(&q).unwrap();
            assert_eq!(expected, got, "{execution:?}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_scheduling_wrapper_maps_onto_execution() {
        let g = test_graph(300);
        let q = Query::top_k_with(15, fw_config());
        let scheduling = Scheduling {
            workers: 3,
            batch_size: 17,
        };
        let mut via_wrapper = Session::builder(&g)
            .machines(4)
            .seed(11)
            .scheduling(scheduling)
            .build()
            .unwrap();
        assert_eq!(via_wrapper.scheduling(), scheduling);
        assert_eq!(via_wrapper.execution(), ExecutionConfig::from(scheduling));
        let mut via_execution = Session::builder(&g)
            .machines(4)
            .seed(11)
            .execution(ExecutionConfig::new().workers(3).batch_size(17))
            .build()
            .unwrap();
        assert_eq!(
            via_wrapper.query(&q).unwrap(),
            via_execution.query(&q).unwrap()
        );
    }

    #[test]
    fn stale_sessions_keep_serving_and_report_async_stats() {
        let g = test_graph(400);
        let q = Query::top_k_with(
            15,
            FrogWildConfig {
                iterations: 6,
                ..fw_config()
            },
        );
        let mut stale = Session::builder(&g)
            .machines(8)
            .seed(11)
            .execution(ExecutionConfig::new().staleness(2))
            .build()
            .unwrap();
        let first = stale.query(&q).unwrap();
        let second = stale.query(&q).unwrap();
        assert_eq!(first, second, "stale serving must stay deterministic");
        assert!((first.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(first.cost.staleness_lag > 0);
        assert!(first.cost.barrier_wait_avoided_seconds > 0.0);
        let stats = stale.stats();
        assert_eq!(stats.total_staleness_lag, 2 * first.cost.staleness_lag);
        assert_eq!(stats.max_inbox_depth, first.cost.max_inbox_depth);
        assert!(stats.total_barrier_wait_avoided_seconds > 0.0);
        assert!(stale.stats().to_string().contains("barrier wait avoided"));
        // An invalid execution config is rejected at build time.
        assert!(matches!(
            Session::builder(&g)
                .execution(ExecutionConfig::new().tolerance(-0.5))
                .build(),
            Err(Error::InvalidConfig {
                context: "ExecutionConfig",
                ..
            })
        ));
    }

    #[test]
    fn stats_display_surfaces_the_engine_frontier_counters() {
        let g = test_graph(300);
        let mut session = Session::builder(&g).machines(4).seed(3).build().unwrap();
        session
            .query(&Query::TopK {
                k: 10,
                config: fw_config(),
            })
            .unwrap();
        let stats = session.stats();
        assert!(stats.total_active_vertices > 0);
        assert!(stats.total_routed_messages > 0);
        let rendered = stats.to_string();
        assert!(rendered.contains("1 queries served"));
        assert!(rendered.contains("active vertices"));
        assert!(rendered.contains("scatters skipped by the delta gate"));
        assert!(rendered.contains("messages routed"));
        assert!(rendered.contains(&format!("{} messages", stats.total_routed_messages)));
    }

    #[test]
    fn repeated_queries_are_deterministic() {
        let g = test_graph(300);
        let mut session = Session::builder(&g).machines(4).seed(11).build().unwrap();
        let q = Query::TopK {
            k: 15,
            config: fw_config(),
        };
        let first = session.query(&q).unwrap();
        let second = session.query(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(session.stats().queries_served, 2);
    }

    #[test]
    fn query_rejects_zero_k_and_bad_source() {
        let g = test_graph(200);
        let mut session = Session::builder(&g).machines(2).build().unwrap();
        assert!(matches!(
            session.query(&Query::TopK {
                k: 0,
                config: fw_config()
            }),
            Err(Error::Query { .. })
        ));
        assert!(matches!(
            session.query(&Query::Ppr {
                source: g.num_vertices() as VertexId,
                k: 5,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-5 },
            }),
            Err(Error::Query { .. })
        ));
        // failed queries do not count towards the stream
        assert_eq!(session.stats().queries_served, 0);
    }

    #[test]
    fn invalid_configs_surface_as_typed_errors() {
        let g = test_graph(200);
        let mut session = Session::builder(&g).machines(2).build().unwrap();
        let bad_fw = FrogWildConfig {
            num_walkers: 0,
            ..fw_config()
        };
        assert!(matches!(
            session.query(&Query::TopK {
                k: 5,
                config: bad_fw
            }),
            Err(Error::InvalidConfig {
                context: "FrogWildConfig",
                ..
            })
        ));
        let bad_pr = PageRankConfig {
            max_iterations: 0,
            ..PageRankConfig::default()
        };
        assert!(matches!(
            session.query(&Query::Pagerank {
                k: 5,
                config: bad_pr
            }),
            Err(Error::InvalidConfig {
                context: "PageRankConfig",
                ..
            })
        ));
        assert!(matches!(
            session.query(&Query::Ppr {
                source: 0,
                k: 5,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 0.0 },
            }),
            Err(Error::InvalidConfig {
                context: "PprMethod::ForwardPush",
                ..
            })
        ));
    }

    #[test]
    fn serve_ppr_matches_session_ppr_without_a_layout() {
        let g = test_graph(300);
        let method = PprMethod::ForwardPush { epsilon: 1e-6 };
        let direct = serve_ppr(&g, 3, 8, 0.15, method).unwrap();
        let mut session = Session::builder(&g).machines(4).build().unwrap();
        let via_session = session
            .query(&Query::Ppr {
                source: 3,
                k: 8,
                teleport_probability: 0.15,
                method,
            })
            .unwrap();
        // Identical answer; only the stamped replication factor differs (no layout).
        assert_eq!(direct.estimate, via_session.estimate);
        assert_eq!(direct.ranking, via_session.ranking);
        assert_eq!(direct.detail, via_session.detail);
        assert_eq!(direct.cost.replication_factor, 1.0);
        // And the same typed validation applies.
        assert!(matches!(
            serve_ppr(&g, 3, 0, 0.15, method),
            Err(Error::Query { .. })
        ));
        assert!(matches!(
            serve_ppr(&g, g.num_vertices() as VertexId, 5, 0.15, method),
            Err(Error::Query { .. })
        ));
    }

    #[test]
    fn walk_index_sessions_serve_ppr_and_topk_from_the_index() {
        let g = test_graph(400);
        let cfg = WalkIndexConfig {
            segments_per_vertex: 8,
            segment_length: 8,
            ..WalkIndexConfig::default()
        };
        let mut session = Session::builder(&g)
            .machines(4)
            .seed(3)
            .walk_index(cfg)
            .build()
            .unwrap();
        assert!(session.walk_index().is_some());
        let report = *session.walk_index_report().unwrap();
        assert_eq!(report.effective_segments, 8);
        assert_eq!(report.machines, 4);
        assert!(session.stats().index_build_seconds > 0.0);

        let ppr = session
            .query(&Query::Ppr {
                source: 3,
                k: 10,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-5 },
            })
            .unwrap();
        assert!(ppr.cost.index_served);
        assert!(ppr.cost.index_hits > 0);
        assert!(ppr.cost.push_ops > 0);
        assert!(ppr.algorithm.contains("walk-index"));
        assert!((ppr.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        let topk = session
            .query(&Query::TopK {
                k: 10,
                config: fw_config(),
            })
            .unwrap();
        assert!(topk.cost.index_served);
        assert!(topk.algorithm.contains("walk-index"));
        assert_eq!(topk.cost.supersteps, 0);
        assert_eq!(topk.cost.network_bytes, 0);

        // The exact reference always bypasses the index.
        let exact = session
            .query(&Query::Ppr {
                source: 3,
                k: 10,
                teleport_probability: 0.15,
                method: PprMethod::PowerIteration {
                    max_iterations: 100,
                    tolerance: 1e-10,
                },
            })
            .unwrap();
        assert!(!exact.cost.index_served);

        let stats = session.stats();
        assert_eq!(stats.queries_served, 3);
        assert_eq!(stats.index_served_queries, 2);
        assert!(stats.total_index_hits > 0);
        assert!(stats.amortized_index_build_seconds() < stats.index_build_seconds);
        assert!(stats.index_hit_rate() > 0.0);
    }

    #[test]
    fn walk_index_queries_are_deterministic() {
        let g = test_graph(300);
        let mut session = Session::builder(&g)
            .machines(4)
            .walk_index(WalkIndexConfig::default())
            .build()
            .unwrap();
        let q = Query::Ppr {
            source: 5,
            k: 12,
            teleport_probability: 0.15,
            method: PprMethod::ForwardPush { epsilon: 1e-5 },
        };
        let first = session.query(&q).unwrap();
        let second = session.query(&q).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn walk_index_sessions_reject_malformed_methods_like_plain_ones() {
        let g = test_graph(200);
        let mut session = Session::builder(&g)
            .machines(2)
            .walk_index(WalkIndexConfig::default())
            .build()
            .unwrap();
        // The index would ignore the method parameters, but validation still applies.
        assert!(matches!(
            session.query(&Query::Ppr {
                source: 0,
                k: 5,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 0.0 },
            }),
            Err(Error::InvalidConfig {
                context: "PprMethod::ForwardPush",
                ..
            })
        ));
        assert!(matches!(
            session.query(&Query::Ppr {
                source: 0,
                k: 5,
                teleport_probability: 0.15,
                method: PprMethod::MonteCarlo {
                    walkers: 0,
                    max_steps: 10,
                    seed: 1
                },
            }),
            Err(Error::InvalidConfig {
                context: "PprMethod::MonteCarlo",
                ..
            })
        ));
        assert_eq!(session.stats().queries_served, 0);
    }

    #[test]
    fn builder_surfaces_walk_index_build_errors() {
        let g = test_graph(200);
        assert!(matches!(
            Session::builder(&g)
                .machines(2)
                .walk_index(WalkIndexConfig {
                    memory_budget_bytes: 8,
                    ..WalkIndexConfig::default()
                })
                .build(),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn monte_carlo_method_reports_walk_work() {
        let g = test_graph(300);
        let method = PprMethod::MonteCarlo {
            walkers: 5_000,
            max_steps: 30,
            seed: 7,
        };
        let response = serve_ppr(&g, 2, 10, 0.15, method).unwrap();
        assert!((response.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(response.cost.walk_hops > 0);
        assert!(!response.cost.index_served);
        assert!(response.algorithm.contains("monte-carlo"));
        // And the push method reports push work units.
        let push = serve_ppr(&g, 2, 10, 0.15, PprMethod::ForwardPush { epsilon: 1e-6 }).unwrap();
        assert!(push.cost.push_ops > 0);
        assert_eq!(push.cost.walk_hops, 0);
    }

    #[test]
    fn ppr_power_iteration_and_push_agree_on_the_head() {
        let g = test_graph(300);
        let mut session = Session::builder(&g).machines(2).build().unwrap();
        let push = session
            .query(&Query::Ppr {
                source: 1,
                k: 5,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-8 },
            })
            .unwrap();
        let exact = session
            .query(&Query::Ppr {
                source: 1,
                k: 5,
                teleport_probability: 0.15,
                method: PprMethod::PowerIteration {
                    max_iterations: 200,
                    tolerance: 1e-10,
                },
            })
            .unwrap();
        assert_eq!(push.top_vertices()[0], exact.top_vertices()[0]);
        assert!(matches!(push.detail, ResponseDetail::Ppr { pushes, .. } if pushes > 0));
        assert!(matches!(exact.detail, ResponseDetail::Ppr { iterations, .. } if iterations > 0));
    }
}
