//! Self-tuning top-k queries: pilot run → walker-budget plan → full run.
//!
//! Remark 6 sizes the walker budget in terms of `µ_k(π)` — the very quantity a user
//! does not know before running anything. This module packages the practical workflow:
//!
//! 1. a **pilot** FrogWild run with a deliberately small walker budget produces a rough
//!    estimate of the top-k mass (cheap: the pilot's network cost is proportional to its
//!    walker count, Figure 8);
//! 2. the pilot estimate feeds the Theorem 1 / Remark 6 planning rules
//!    ([`crate::confidence::plan_walkers`], [`crate::theory::recommended_iterations`]);
//! 3. the **planned** run executes with the derived budget.
//!
//! The [`AutoTuneReport`] keeps the pilot, the plan and the final run together so the
//! caller can audit what the tuner decided and how much the pilot cost.

use frogwild_engine::PartitionedGraph;
use serde::{Deserialize, Serialize};

use crate::confidence::{plan_walkers, WalkerPlan};
use crate::config::{in_half_open_unit_interval, in_open_unit_interval, FrogWildConfig};
use crate::driver::{run_frogwild_on, RunReport};
use crate::error::Error;
use crate::theory::recommended_iterations;

/// Tuning knobs for [`auto_topk_on`]. The defaults are deliberately conservative; every
/// field can be overridden with struct-update syntax.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutoTuneConfig {
    /// Number of vertices the caller ultimately wants ranked (the `k` of top-k).
    pub k: usize,
    /// Tolerated captured-mass loss of the final run (the ε budget of Theorem 1's
    /// sampling term).
    pub mass_loss_target: f64,
    /// Tolerated failure probability (the δ of Theorem 1).
    pub failure_probability: f64,
    /// Walkers used by the pilot run.
    pub pilot_walkers: u64,
    /// Supersteps used by the pilot run.
    pub pilot_iterations: usize,
    /// Mirror-synchronization probability used for both runs.
    pub sync_probability: f64,
    /// Hard cap on the planned walker budget (protects against a pilot that estimates a
    /// vanishing top-k mass, which would make Remark 6 ask for an astronomical budget).
    pub max_walkers: u64,
    /// Hard cap on the planned iteration count.
    pub max_iterations: usize,
    /// Seed for the pilot and the final run.
    pub seed: u64,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        AutoTuneConfig {
            k: 100,
            mass_loss_target: 0.05,
            failure_probability: 0.1,
            pilot_walkers: 10_000,
            pilot_iterations: 3,
            sync_probability: 0.7,
            max_walkers: 5_000_000,
            max_iterations: 8,
            seed: 0xA070,
        }
    }
}

impl AutoTuneConfig {
    /// Validates the configuration, returning the first problem found as a typed
    /// [`Error::InvalidConfig`].
    pub fn validate(&self) -> Result<(), Error> {
        const CTX: &str = "AutoTuneConfig";
        if self.k == 0 {
            return Err(Error::config(CTX, "k must be positive"));
        }
        if self.mass_loss_target <= 0.0 {
            return Err(Error::config(CTX, "mass_loss_target must be positive"));
        }
        if !in_open_unit_interval(self.failure_probability) {
            return Err(Error::config(CTX, "failure_probability must be in (0, 1)"));
        }
        if self.pilot_walkers == 0 || self.pilot_iterations == 0 {
            return Err(Error::config(
                CTX,
                "pilot must use at least one walker and one iteration",
            ));
        }
        if !in_half_open_unit_interval(self.sync_probability) {
            return Err(Error::config(CTX, "sync_probability must be in (0, 1]"));
        }
        if self.max_walkers < self.pilot_walkers {
            return Err(Error::config(
                CTX,
                "max_walkers must be at least pilot_walkers",
            ));
        }
        if self.max_iterations == 0 {
            return Err(Error::config(CTX, "max_iterations must be positive"));
        }
        Ok(())
    }
}

/// Everything the tuner did: the pilot run, the derived plan, and the final run.
#[derive(Clone, Debug)]
pub struct AutoTuneReport {
    /// The cheap pilot run.
    pub pilot: RunReport,
    /// The top-k mass the pilot estimated (input to the planning rules).
    pub estimated_topk_mass: f64,
    /// The walker-budget plan derived from the pilot.
    pub plan: WalkerPlan,
    /// The walker budget actually used (the plan's Theorem-1 term, clamped to
    /// `[pilot_walkers, max_walkers]`).
    pub planned_walkers: u64,
    /// The iteration count actually used.
    pub planned_iterations: usize,
    /// The final run.
    pub run: RunReport,
}

impl AutoTuneReport {
    /// Combined network bytes of the pilot and the final run — the full cost of the
    /// self-tuned query.
    pub fn total_network_bytes(&self) -> u64 {
        self.pilot.cost.network_bytes + self.run.cost.network_bytes
    }

    /// Fraction of the total traffic spent on the pilot. Small values mean the tuning
    /// overhead was negligible.
    pub fn pilot_overhead(&self) -> f64 {
        let total = self.total_network_bytes();
        if total == 0 {
            0.0
        } else {
            self.pilot.cost.network_bytes as f64 / total as f64
        }
    }
}

/// Runs the pilot → plan → run pipeline on an already partitioned graph.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the configuration fails
/// [`AutoTuneConfig::validate`].
pub fn auto_topk_on(
    pg: &PartitionedGraph,
    config: &AutoTuneConfig,
) -> Result<AutoTuneReport, Error> {
    config.validate()?;

    // ------------------------------------------------------------------ 1. pilot
    let pilot = run_frogwild_on(
        pg,
        &FrogWildConfig {
            num_walkers: config.pilot_walkers,
            iterations: config.pilot_iterations,
            sync_probability: config.sync_probability,
            seed: config.seed ^ 0x9107,
            ..FrogWildConfig::default()
        },
    )?;
    let pilot_top = pilot.top_k(config.k);
    let estimated_topk_mass: f64 = pilot_top
        .iter()
        // lint:allow(indexing, vertex ids come from the pilot response over this estimate)
        .map(|&v| pilot.estimate[v as usize])
        .sum::<f64>()
        // Guard against a degenerate pilot (e.g. every walker died on one vertex).
        .clamp(1e-6, 1.0);

    // ------------------------------------------------------------------ 2. plan
    let plan = plan_walkers(
        config.k,
        pg.num_vertices(),
        estimated_topk_mass,
        config.mass_loss_target,
        config.failure_probability,
    );
    let planned_walkers = plan
        .walkers_for_mass
        .clamp(config.pilot_walkers, config.max_walkers);
    let planned_iterations = recommended_iterations(0.15, estimated_topk_mass)
        .clamp(config.pilot_iterations, config.max_iterations);

    // ------------------------------------------------------------------ 3. run
    let run = run_frogwild_on(
        pg,
        &FrogWildConfig {
            num_walkers: planned_walkers,
            iterations: planned_iterations,
            sync_probability: config.sync_probability,
            seed: config.seed,
            ..FrogWildConfig::default()
        },
    )?;

    Ok(AutoTuneReport {
        pilot,
        estimated_topk_mass,
        plan,
        planned_walkers,
        planned_iterations,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::partition_graph;
    use crate::metrics::mass_captured;
    use crate::reference::exact_pagerank;
    use frogwild_engine::ClusterConfig;
    use frogwild_graph::generators::{rmat, RmatParams};
    use frogwild_graph::DiGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(99);
        rmat(n, RmatParams::default(), &mut rng)
    }

    #[test]
    fn defaults_are_valid() {
        assert!(AutoTuneConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = AutoTuneConfig::default();
        assert!(AutoTuneConfig { k: 0, ..base }.validate().is_err());
        assert!(AutoTuneConfig {
            mass_loss_target: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(AutoTuneConfig {
            failure_probability: 1.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(AutoTuneConfig {
            pilot_walkers: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(AutoTuneConfig {
            sync_probability: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(AutoTuneConfig {
            max_walkers: 10,
            pilot_walkers: 100,
            ..base
        }
        .validate()
        .is_err());
        assert!(AutoTuneConfig {
            max_iterations: 0,
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn auto_topk_improves_on_the_pilot_and_hits_the_target() {
        let graph = test_graph(600);
        let truth = exact_pagerank(&graph, 0.15, 200, 1e-12);
        let cluster = ClusterConfig::new(8, 3);
        let config = AutoTuneConfig {
            k: 30,
            pilot_walkers: 2_000,
            max_walkers: 300_000,
            mass_loss_target: 0.05,
            ..AutoTuneConfig::default()
        };
        let report = auto_topk_on(&partition_graph(&graph, &cluster), &config).unwrap();

        assert!(report.planned_walkers >= config.pilot_walkers);
        assert!(report.planned_walkers <= config.max_walkers);
        assert!(report.planned_iterations >= config.pilot_iterations);
        assert!(report.planned_iterations <= config.max_iterations);
        assert!(report.estimated_topk_mass > 0.0 && report.estimated_topk_mass <= 1.0);

        let pilot_mass =
            mass_captured(&report.pilot.estimate, &truth.scores, config.k).normalized();
        let final_mass = mass_captured(&report.run.estimate, &truth.scores, config.k).normalized();
        assert!(
            final_mass >= pilot_mass - 0.02,
            "final {final_mass} vs pilot {pilot_mass}"
        );
        assert!(final_mass > 0.9, "final mass {final_mass}");
        // The tuner spent more effort on the final run than on the pilot.
        assert!(report.run.cost.network_bytes >= report.pilot.cost.network_bytes);
        assert!(report.pilot_overhead() <= 0.5);
        assert_eq!(
            report.total_network_bytes(),
            report.pilot.cost.network_bytes + report.run.cost.network_bytes
        );
    }

    #[test]
    fn caps_are_respected_when_the_pilot_sees_tiny_mass() {
        // A near-uniform graph: the top-k mass is tiny, so the un-capped plan would ask
        // for far more walkers than max_walkers.
        let graph = frogwild_graph::generators::simple::cycle(2_000);
        let cluster = ClusterConfig::new(4, 1);
        let config = AutoTuneConfig {
            k: 20,
            pilot_walkers: 1_000,
            max_walkers: 50_000,
            max_iterations: 5,
            ..AutoTuneConfig::default()
        };
        let report = auto_topk_on(&partition_graph(&graph, &cluster), &config).unwrap();
        assert_eq!(report.planned_walkers, 50_000);
        assert!(report.planned_iterations <= 5);
    }
}
