//! Serial simulation of the Appendix-A edge-erasure models.
//!
//! The engine realises partial synchronization at the systems level (mirrors that are
//! not synchronized keep their out-edges idle for one superstep). The paper analyses
//! the same phenomenon abstractly as an *edge-erasure model*: at every step each
//! vertex's out-edges are erased independently with probability `1 - p_s`, all walkers
//! sitting on the vertex must choose among the surviving edges, and (in the
//! at-least-one variant) one edge is re-enabled if all were erased.
//!
//! This module simulates that abstract process directly, with the crucial property that
//! **walkers on the same vertex at the same step share the same erasures** — that shared
//! randomness is exactly the correlation Theorem 1 controls. It is used by tests and the
//! theory benchmark to verify two claims:
//!
//! 1. the *marginal* distribution of a single walker is unaffected by erasures
//!    (Definition 3 / the symmetry argument), and
//! 2. the captured-mass degradation as `p_s` decreases stays within the Theorem 1
//!    envelope.

// lint:allow-file(indexing, positions are drawn below the validated walk-storage bounds)

use frogwild_graph::{DiGraph, VertexId};
use rand::Rng;

use crate::dist;

/// Which erasure model to simulate (Examples 9 and 10 in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErasureModel {
    /// Every out-edge is erased independently with probability `1 - p_s`; a vertex may
    /// end up with no usable out-edges, in which case walkers on it stay put for the
    /// step (the paper notes this variant "can lose some walkers").
    Independent,
    /// Like [`ErasureModel::Independent`], but if all out-edges of a vertex are erased
    /// one of them (chosen uniformly) is re-enabled. This is the model used by the
    /// implementation and the experiments.
    AtLeastOneOutEdge,
}

/// Runs `num_walkers` simultaneous walkers for up to `max_steps` steps under the edge
/// erasure model and returns the empirical distribution of their final positions
/// (the FrogWild estimator computed without any engine in the way).
///
/// Each walker lives `min(Geometric(p_T), max_steps)` steps, exactly like the FrogWild
/// process. Walkers that share a vertex at a given step face the same surviving edge
/// set, which induces the trajectory correlations the paper analyses.
pub fn erasure_walk_pagerank<R: Rng + ?Sized>(
    graph: &DiGraph,
    num_walkers: u64,
    max_steps: usize,
    teleport_probability: f64,
    sync_probability: f64,
    model: ErasureModel,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        teleport_probability > 0.0 && teleport_probability <= 1.0,
        "teleport probability must be in (0, 1]"
    );
    assert!(
        sync_probability > 0.0 && sync_probability <= 1.0,
        "sync probability must be in (0, 1]"
    );
    let n = graph.num_vertices();
    if n == 0 || num_walkers == 0 {
        return vec![0.0; n];
    }

    // Walker state: current position and remaining lifespan; dead walkers are counted
    // immediately and removed.
    let mut counts = vec![0u64; n];
    let mut positions: Vec<VertexId> = Vec::new();
    let mut lifespans: Vec<u64> = Vec::new();
    positions.reserve(num_walkers as usize);
    lifespans.reserve(num_walkers as usize);
    for _ in 0..num_walkers {
        let start = rng.gen_range(0..n) as VertexId;
        let life = dist::geometric(teleport_probability, rng).min(max_steps as u64);
        if life == 0 {
            counts[start as usize] += 1;
        } else {
            positions.push(start);
            lifespans.push(life);
        }
    }

    let mut surviving_edges: Vec<Vec<VertexId>> = Vec::new();
    for _step in 0..max_steps {
        if positions.is_empty() {
            break;
        }
        // Sample this step's erasures lazily: only for vertices that currently host at
        // least one walker. All walkers on the vertex share the surviving set.
        let mut occupied: Vec<VertexId> = positions.clone();
        occupied.sort_unstable();
        occupied.dedup();
        surviving_edges.clear();
        surviving_edges.resize(occupied.len(), Vec::new());
        for (slot, &v) in occupied.iter().enumerate() {
            let all = graph.out_neighbors(v);
            let mut kept: Vec<VertexId> = all
                .iter()
                .copied()
                .filter(|_| rng.gen::<f64>() < sync_probability)
                .collect();
            if kept.is_empty() && model == ErasureModel::AtLeastOneOutEdge && !all.is_empty() {
                kept.push(all[rng.gen_range(0..all.len())]);
            }
            surviving_edges[slot] = kept;
        }

        // Move every live walker one step using the shared surviving sets, retiring the
        // ones whose lifespan ends.
        let mut write = 0usize;
        for read in 0..positions.len() {
            let v = positions[read];
            // lint:allow(panic, every drawn position was recorded in occupied above)
            let slot = occupied.binary_search(&v).expect("vertex was recorded");
            let kept = &surviving_edges[slot];
            let next = if kept.is_empty() {
                v // blocked: every out-edge erased (Independent model only)
            } else {
                kept[rng.gen_range(0..kept.len())]
            };
            let life = lifespans[read] - 1;
            if life == 0 {
                counts[next as usize] += 1;
            } else {
                positions[write] = next;
                lifespans[write] = life;
                write += 1;
            }
        }
        positions.truncate(write);
        lifespans.truncate(write);
    }
    // Walkers still alive after max_steps are sampled where they stand.
    for &v in &positions {
        counts[v as usize] += 1;
    }

    counts
        .into_iter()
        .map(|c| c as f64 / num_walkers as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{l1_distance, mass_captured};
    use crate::reference::{exact_pagerank, serial_random_walk_pagerank};
    use frogwild_graph::generators::simple::star;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn estimator_is_a_distribution() {
        let g = star(40);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = erasure_walk_pagerank(
            &g,
            5_000,
            6,
            0.15,
            0.5,
            ErasureModel::AtLeastOneOutEdge,
            &mut rng,
        );
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn full_sync_matches_plain_monte_carlo_closely() {
        // With p_s = 1 no edges are ever erased, so the process is exactly the plain
        // serial Monte-Carlo walk; with matched sample sizes the two estimates should
        // be statistically indistinguishable (small l1 distance).
        let mut rng = SmallRng::seed_from_u64(2);
        let g = rmat(300, RmatParams::default(), &mut rng);
        let a = erasure_walk_pagerank(
            &g,
            60_000,
            8,
            0.15,
            1.0,
            ErasureModel::AtLeastOneOutEdge,
            &mut rng,
        );
        let b = serial_random_walk_pagerank(&g, 60_000, 8, 0.15, &mut rng);
        assert!(l1_distance(&a, &b) < 0.15, "l1 {}", l1_distance(&a, &b));
    }

    #[test]
    fn single_walker_marginal_unchanged_by_erasures() {
        // Definition 3: with one walker there is no correlation, so the erasure process
        // must produce the same distribution as the unmodified walk. Compare captured
        // mass against exact PageRank for one-walker-at-a-time sampling.
        let mut rng = SmallRng::seed_from_u64(3);
        let g = rmat(300, RmatParams::default(), &mut rng);
        let exact = exact_pagerank(&g, 0.15, 100, 1e-10);
        // Simulate "one walker at a time" by calling the process 40k times with a
        // single walker; aggregate counts manually.
        let mut aggregate = vec![0.0; g.num_vertices()];
        let runs = 40_000;
        for _ in 0..runs {
            let est = erasure_walk_pagerank(
                &g,
                1,
                8,
                0.15,
                0.3,
                ErasureModel::AtLeastOneOutEdge,
                &mut rng,
            );
            for (a, e) in aggregate.iter_mut().zip(est) {
                *a += e / runs as f64;
            }
        }
        let m = mass_captured(&aggregate, &exact.scores, 20);
        assert!(
            m.normalized() > 0.85,
            "single-walker marginal should track PageRank, captured {}",
            m.normalized()
        );
    }

    #[test]
    fn correlated_walkers_still_capture_most_mass() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = rmat(500, RmatParams::default(), &mut rng);
        let exact = exact_pagerank(&g, 0.15, 100, 1e-10);
        let est = erasure_walk_pagerank(
            &g,
            80_000,
            8,
            0.15,
            0.1,
            ErasureModel::AtLeastOneOutEdge,
            &mut rng,
        );
        let m = mass_captured(&est, &exact.scores, 20);
        assert!(m.normalized() > 0.75, "captured {}", m.normalized());
    }

    #[test]
    fn independent_model_can_block_walkers_but_conserves_them() {
        let g = star(30);
        let mut rng = SmallRng::seed_from_u64(5);
        let est = erasure_walk_pagerank(
            &g,
            10_000,
            5,
            0.15,
            0.05,
            ErasureModel::Independent,
            &mut rng,
        );
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_walkers_gives_zero_vector() {
        let g = star(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let est = erasure_walk_pagerank(&g, 0, 5, 0.15, 0.5, ErasureModel::Independent, &mut rng);
        assert_eq!(est, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "sync probability")]
    fn rejects_zero_sync_probability() {
        let g = star(5);
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = erasure_walk_pagerank(&g, 10, 5, 0.15, 0.0, ErasureModel::Independent, &mut rng);
    }
}
