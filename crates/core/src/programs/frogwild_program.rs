//! The FrogWild! vertex program (Section 2.2 of the paper).
//!
//! Each vertex tracks two counters: `live`, the frogs that arrived in the current
//! superstep and survived teleportation, and `stopped`, the frogs that died here (their
//! final positions are the samples from π). During `apply` every incoming frog dies
//! with probability `p_T`; at the final superstep all arrivals are absorbed. During
//! `scatter` the surviving frogs are divided across the *participating* (synchronized)
//! replicas and spread over their locally-owned out-edges — either with the
//! deterministic split the paper's implementation uses, or with the idealized binomial
//! draw from the paper's algorithm box.

use frogwild_engine::{ApplyContext, ScatterContext, VertexProgram};
use frogwild_graph::VertexId;
use rand::Rng;

use crate::config::FrogWildConfig;
use crate::dist;

/// Per-vertex walker counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrogState {
    /// Frogs that arrived in the latest superstep and survived teleportation; they will
    /// be forwarded by the next scatter phase (`K(i)` in the paper).
    pub live: u64,
    /// Frogs that died (teleported or hit the step limit) on this vertex (`c(i)`); the
    /// estimator is `c(i) / N`.
    pub stopped: u64,
}

impl FrogState {
    /// Every frog currently attributable to this vertex.
    pub fn total(&self) -> u64 {
        self.live + self.stopped
    }
}

/// The FrogWild vertex program. Construct it from a [`FrogWildConfig`].
#[derive(Clone, Debug)]
pub struct FrogWildProgram {
    /// Walker death probability per step (`p_T`).
    teleport_probability: f64,
    /// Number of engine supersteps before every surviving walker is absorbed (`t`).
    iterations: usize,
    /// Use the idealized per-edge binomial scatter instead of the deterministic split.
    binomial_scatter: bool,
}

impl FrogWildProgram {
    /// Builds the program from an experiment configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`](crate::Error::InvalidConfig) when the
    /// configuration fails [`FrogWildConfig::validate`].
    pub fn new(config: &FrogWildConfig) -> Result<Self, crate::Error> {
        config.validate()?;
        Ok(FrogWildProgram {
            teleport_probability: config.teleport_probability,
            iterations: config.iterations,
            binomial_scatter: config.binomial_scatter,
        })
    }

    /// The configured number of supersteps.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl VertexProgram for FrogWildProgram {
    type State = FrogState;
    type Message = u64;
    type Accum = ();

    fn combine_messages(&self, a: u64, b: u64) -> u64 {
        a + b
    }

    fn combine_accums(&self, _a: (), _b: ()) {}

    fn apply(
        &self,
        ctx: &mut ApplyContext<'_>,
        _vertex: VertexId,
        state: &mut FrogState,
        _accum: Option<()>,
        message: Option<u64>,
    ) {
        let incoming = message.unwrap_or(0);
        if ctx.superstep + 1 >= self.iterations {
            // Final superstep: "If t steps have been performed, c(i) ← c(i) + K(i) and halt."
            state.stopped += incoming;
            state.live = 0;
            return;
        }
        // Each incoming frog dies (teleports away, i.e. is sampled here) with
        // probability p_T.
        let deaths = dist::binomial(incoming, self.teleport_probability, ctx.rng);
        state.stopped += deaths;
        state.live = incoming - deaths;
    }

    fn needs_scatter(&self, _vertex: VertexId, state: &FrogState) -> bool {
        state.live > 0
    }

    // The convergence magnitude is the live-walker count: at the engine's default
    // tolerance of 0 this gates exactly when `needs_scatter` declines (`live == 0`),
    // and a positive tolerance additionally parks near-empty vertices (their walkers
    // stay in `live` and still count toward the estimator).
    fn delta(&self, _old: &FrogState, new: &FrogState) -> f64 {
        new.live as f64
    }

    fn scatter_replica(
        &self,
        ctx: &mut ScatterContext<'_>,
        _vertex: VertexId,
        state: &FrogState,
        local_out_neighbors: &[VertexId],
        emit: &mut dyn FnMut(VertexId, u64),
    ) {
        if state.live == 0 || local_out_neighbors.is_empty() {
            return;
        }
        if self.binomial_scatter {
            // Paper's algorithm box: every out-edge incident to a synchronized replica
            // draws x ~ Bin(K(i), 1 / (d_out(i) · p_s)). Expectation over the random
            // synchronization equals K(i), matching a true random walk marginally.
            let p = 1.0
                / (ctx.global_out_degree.max(1) as f64
                    * ctx.sync_probability.max(f64::MIN_POSITIVE));
            let p = p.min(1.0);
            for &dst in local_out_neighbors {
                let x = dist::binomial(state.live, p, ctx.rng);
                if x > 0 {
                    emit(dst, x);
                }
            }
        } else {
            // Paper's implementation: divide K(i) evenly across the participating
            // replicas, then spread this replica's share uniformly over its local
            // out-edges, assigning the remainder to randomly chosen edges.
            let share = dist::even_split(state.live, ctx.num_participating, ctx.replica_rank);
            if share == 0 {
                return;
            }
            let degree = local_out_neighbors.len() as u64;
            let per_edge = share / degree;
            let remainder = (share % degree) as usize;
            let offset = if remainder > 0 {
                ctx.rng.gen_range(0..local_out_neighbors.len())
            } else {
                0
            };
            for (idx, &dst) in local_out_neighbors.iter().enumerate() {
                let mut amount = per_edge;
                // The `remainder` edges starting at the random offset get one extra frog.
                let rotated =
                    (idx + local_out_neighbors.len() - offset) % local_out_neighbors.len();
                if rotated < remainder {
                    amount += 1;
                }
                if amount > 0 {
                    emit(dst, amount);
                }
            }
        }
    }

    fn state_bytes(&self) -> usize {
        // live + stopped counters
        16
    }

    fn message_bytes(&self) -> usize {
        // one combined frog count
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frogwild_engine::MachineId;
    use frogwild_engine::{ApplyContext, ScatterContext};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config(iterations: usize) -> FrogWildConfig {
        FrogWildConfig {
            num_walkers: 1000,
            iterations,
            ..FrogWildConfig::default()
        }
    }

    fn apply_ctx<'a>(superstep: usize, rng: &'a mut SmallRng) -> ApplyContext<'a> {
        ApplyContext {
            superstep,
            num_vertices: 100,
            out_degree: 5,
            rng,
        }
    }

    #[test]
    fn apply_conserves_frogs() {
        let program = FrogWildProgram::new(&config(10)).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut state = FrogState::default();
        let mut ctx = apply_ctx(0, &mut rng);
        program.apply(&mut ctx, 0, &mut state, None, Some(10_000));
        assert_eq!(state.total(), 10_000);
        assert!(state.stopped > 0, "some frogs should die with p_T = 0.15");
        assert!(state.live > 0, "most frogs should survive");
    }

    #[test]
    fn death_rate_matches_teleport_probability() {
        let program = FrogWildProgram::new(&config(10)).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut total_dead = 0u64;
        let trials = 200u64;
        let per_trial = 1_000u64;
        for i in 0..trials {
            let mut state = FrogState::default();
            let mut ctx = apply_ctx((i % 5) as usize, &mut rng);
            program.apply(&mut ctx, 0, &mut state, None, Some(per_trial));
            total_dead += state.stopped;
        }
        let rate = total_dead as f64 / (trials * per_trial) as f64;
        assert!((rate - 0.15).abs() < 0.01, "death rate {rate}");
    }

    #[test]
    fn final_superstep_absorbs_everything() {
        let program = FrogWildProgram::new(&config(4)).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut state = FrogState {
            live: 0,
            stopped: 7,
        };
        let mut ctx = apply_ctx(3, &mut rng); // superstep 3 is the 4th and last
        program.apply(&mut ctx, 0, &mut state, None, Some(500));
        assert_eq!(state.live, 0);
        assert_eq!(state.stopped, 507);
        assert!(!program.needs_scatter(0, &state));
    }

    #[test]
    fn no_message_means_no_change_except_absorption() {
        let program = FrogWildProgram::new(&config(4)).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut state = FrogState {
            live: 3,
            stopped: 2,
        };
        let mut ctx = apply_ctx(1, &mut rng);
        program.apply(&mut ctx, 0, &mut state, None, None);
        // no arrivals: the previous live frogs have already been forwarded, so live resets
        assert_eq!(state.live, 0);
        assert_eq!(state.stopped, 2);
    }

    fn scatter_ctx<'a>(
        rank: usize,
        participating: usize,
        local_deg: usize,
        global_deg: u32,
        ps: f64,
        rng: &'a mut SmallRng,
    ) -> ScatterContext<'a> {
        ScatterContext {
            superstep: 1,
            machine: MachineId(0),
            replica_rank: rank,
            num_participating: participating,
            global_out_degree: global_deg,
            local_out_degree: local_deg,
            sync_probability: ps,
            rng,
        }
    }

    #[test]
    fn deterministic_scatter_conserves_share() {
        let program = FrogWildProgram::new(&config(10)).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let state = FrogState {
            live: 1_003,
            stopped: 0,
        };
        let neighbors: Vec<VertexId> = (10..17).collect();
        let mut total_sent = 0u64;
        for rank in 0..3 {
            let mut ctx = scatter_ctx(rank, 3, neighbors.len(), 21, 1.0, &mut rng);
            program.scatter_replica(&mut ctx, 0, &state, &neighbors, &mut |_dst, x| {
                total_sent += x;
            });
        }
        assert_eq!(total_sent, 1_003);
    }

    #[test]
    fn deterministic_scatter_spreads_over_local_edges() {
        let program = FrogWildProgram::new(&config(10)).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let state = FrogState {
            live: 700,
            stopped: 0,
        };
        let neighbors: Vec<VertexId> = (0..7).collect();
        let mut per_dst = vec![0u64; 7];
        let mut ctx = scatter_ctx(0, 1, 7, 7, 1.0, &mut rng);
        program.scatter_replica(&mut ctx, 0, &state, &neighbors, &mut |dst, x| {
            per_dst[dst as usize] += x;
        });
        assert_eq!(per_dst.iter().sum::<u64>(), 700);
        for &count in &per_dst {
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn binomial_scatter_preserves_expectation() {
        let cfg = FrogWildConfig {
            binomial_scatter: true,
            ..config(10)
        };
        let program = FrogWildProgram::new(&cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let state = FrogState {
            live: 1_000,
            stopped: 0,
        };
        // A vertex with 10 out-edges split over two replicas of 5 local edges each,
        // ps = 1: the expected total across both replicas is live (= 1000).
        let neighbors: Vec<VertexId> = (0..5).collect();
        let trials = 300;
        let mut grand_total = 0u64;
        for _ in 0..trials {
            for rank in 0..2 {
                let mut ctx = scatter_ctx(rank, 2, 5, 10, 1.0, &mut rng);
                program.scatter_replica(&mut ctx, 0, &state, &neighbors, &mut |_d, x| {
                    grand_total += x;
                });
            }
        }
        let mean = grand_total as f64 / trials as f64;
        assert!(
            (mean - 1_000.0).abs() < 20.0,
            "expected ~1000 frogs forwarded on average, got {mean}"
        );
    }

    #[test]
    fn scatter_with_no_live_frogs_emits_nothing() {
        let program = FrogWildProgram::new(&config(4)).unwrap();
        let mut rng = SmallRng::seed_from_u64(10);
        let state = FrogState::default();
        let neighbors: Vec<VertexId> = vec![1, 2];
        let mut called = false;
        let mut ctx = scatter_ctx(0, 1, 2, 2, 1.0, &mut rng);
        program.scatter_replica(&mut ctx, 0, &state, &neighbors, &mut |_d, _x| {
            called = true;
        });
        assert!(!called);
    }

    #[test]
    fn delta_is_the_live_count_and_agrees_with_needs_scatter_at_zero() {
        let program = FrogWildProgram::new(&config(4)).unwrap();
        let old = FrogState::default();
        let quiet = FrogState {
            live: 0,
            stopped: 9,
        };
        let busy = FrogState {
            live: 12,
            stopped: 1,
        };
        // `delta <= 0` exactly when `needs_scatter` is false.
        assert!(program.delta(&old, &quiet) <= 0.0);
        assert!(!program.needs_scatter(0, &quiet));
        assert!(program.delta(&old, &busy) > 0.0);
        assert!(program.needs_scatter(0, &busy));
        assert_eq!(program.delta(&old, &busy), 12.0);
    }

    #[test]
    fn message_and_state_sizes() {
        let program = FrogWildProgram::new(&config(4)).unwrap();
        assert_eq!(program.state_bytes(), 16);
        assert_eq!(program.message_bytes(), 8);
        assert_eq!(program.iterations(), 4);
    }
}
