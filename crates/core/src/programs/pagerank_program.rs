//! The GraphLab-toolkit PageRank vertex program the paper uses as its baseline.
//!
//! This follows GraphLab's `pagerank.cpp` conventions so that the 1- and 2-iteration
//! truncated baselines behave exactly as the paper describes (a single iteration
//! "actually estimates only the in-degree of a node"):
//!
//! * ranks are initialised to 1.0 and left unnormalised (the exact fixed point is
//!   `n · π`); the driver normalises before computing accuracy metrics;
//! * gather pulls `rank / out_degree` over in-edges;
//! * apply sets `rank = p_T + (1 - p_T) · Σ`;
//! * the program reports each apply's rank change through `delta`, and the executor
//!   signals out-neighbours only while that change exceeds its configured tolerance
//!   (GraphLab's dynamic scheduling, now enforced by the delta-gated frontier).
//!
//! Every iteration the updated rank must be pushed to all mirrors (the gather of a
//! neighbouring vertex reads the local cached copy), which is the per-iteration network
//! cost the paper's Figure 1(c) reports and FrogWild avoids.

use frogwild_engine::{ApplyContext, EdgeDirection, ScatterContext, VertexProgram};
use frogwild_graph::VertexId;

use crate::config::PageRankConfig;

/// Per-vertex PageRank state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankState {
    /// Current (unnormalised) rank. GraphLab convention: starts at 1.0, converges to
    /// `n · π(v)`.
    pub rank: f64,
    /// Absolute change of the rank in the last apply; drives dynamic scheduling.
    pub delta: f64,
}

impl Default for RankState {
    fn default() -> Self {
        RankState {
            rank: 1.0,
            delta: f64::INFINITY,
        }
    }
}

/// The baseline PageRank vertex program. The convergence tolerance itself lives in
/// the executor ([`EngineConfig::tolerance`](frogwild_engine::EngineConfig)); the
/// program only reports each vertex's rank change through
/// [`VertexProgram::delta`].
#[derive(Clone, Debug)]
pub struct PageRankProgram {
    teleport_probability: f64,
}

impl PageRankProgram {
    /// Builds the program from a [`PageRankConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`](crate::Error::InvalidConfig) when the
    /// configuration fails [`PageRankConfig::validate`].
    pub fn new(config: &PageRankConfig) -> Result<Self, crate::Error> {
        config.validate()?;
        Ok(PageRankProgram {
            teleport_probability: config.teleport_probability,
        })
    }
}

impl VertexProgram for PageRankProgram {
    type State = RankState;
    /// Scheduling signal; carries no payload (GraphLab signals are empty messages).
    type Message = ();
    /// Partial sum of `rank / out_degree` over locally-owned in-edges.
    type Accum = f64;

    fn combine_messages(&self, _a: (), _b: ()) {}

    fn combine_accums(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn gather_direction(&self) -> EdgeDirection {
        EdgeDirection::In
    }

    fn gather_edge(
        &self,
        _src: VertexId,
        _dst: VertexId,
        src_state: &RankState,
        _dst_state: &RankState,
        src_out_degree: u32,
    ) -> Option<f64> {
        Some(src_state.rank / src_out_degree.max(1) as f64)
    }

    fn apply(
        &self,
        _ctx: &mut ApplyContext<'_>,
        _vertex: VertexId,
        state: &mut RankState,
        accum: Option<f64>,
        _message: Option<()>,
    ) {
        let gathered = accum.unwrap_or(0.0);
        let new_rank = self.teleport_probability + (1.0 - self.teleport_probability) * gathered;
        state.delta = (new_rank - state.rank).abs();
        state.rank = new_rank;
    }

    fn delta(&self, old: &RankState, new: &RankState) -> f64 {
        (new.rank - old.rank).abs()
    }

    fn scatter_replica(
        &self,
        _ctx: &mut ScatterContext<'_>,
        _vertex: VertexId,
        _state: &RankState,
        local_out_neighbors: &[VertexId],
        emit: &mut dyn FnMut(VertexId, ()),
    ) {
        for &dst in local_out_neighbors {
            emit(dst, ());
        }
    }

    fn state_bytes(&self) -> usize {
        // the rank value is what travels to mirrors
        8
    }

    fn message_bytes(&self) -> usize {
        // an empty scheduling signal still costs its header; no payload
        0
    }

    fn accum_bytes(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn program() -> PageRankProgram {
        PageRankProgram::new(&PageRankConfig::default()).unwrap()
    }

    #[test]
    fn default_state_matches_graphlab_convention() {
        let s = RankState::default();
        assert_eq!(s.rank, 1.0);
        assert!(s.delta.is_infinite());
    }

    #[test]
    fn gather_divides_by_out_degree() {
        let p = program();
        let src = RankState {
            rank: 2.0,
            delta: 0.0,
        };
        let dst = RankState::default();
        assert_eq!(p.gather_edge(0, 1, &src, &dst, 4), Some(0.5));
        // degree 0 is clamped to avoid division by zero (cannot occur on fixed graphs)
        assert_eq!(p.gather_edge(0, 1, &src, &dst, 0), Some(2.0));
    }

    #[test]
    fn apply_computes_graphlab_update() {
        let p = program();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut state = RankState::default();
        let mut ctx = ApplyContext {
            superstep: 0,
            num_vertices: 10,
            out_degree: 2,
            rng: &mut rng,
        };
        p.apply(&mut ctx, 0, &mut state, Some(2.0), None);
        let expected = 0.15 + 0.85 * 2.0;
        assert!((state.rank - expected).abs() < 1e-12);
        assert!((state.delta - (expected - 1.0).abs()).abs() < 1e-12);
    }

    #[test]
    fn apply_without_gather_gives_teleport_floor() {
        let p = program();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut state = RankState::default();
        let mut ctx = ApplyContext {
            superstep: 0,
            num_vertices: 10,
            out_degree: 2,
            rng: &mut rng,
        };
        p.apply(&mut ctx, 0, &mut state, None, None);
        assert!((state.rank - 0.15).abs() < 1e-12);
    }

    #[test]
    fn delta_reports_absolute_rank_change_for_the_executor_gate() {
        let p = program();
        let old = RankState {
            rank: 0.5,
            delta: 1e-2,
        };
        let new = RankState {
            rank: 0.4997,
            delta: 3e-4,
        };
        let d = p.delta(&old, &new);
        assert!((d - 3e-4).abs() < 1e-12);
        // The executor gates with `delta <= tolerance`, mirroring the old
        // `needs_scatter = delta > tolerance` exactly.
        assert!(d <= 1e-3);
        assert!(p.delta(&new, &old) > 1e-4);
        // `needs_scatter` is structural only; PageRank never declines it.
        assert!(p.needs_scatter(0, &old));
    }

    #[test]
    fn accum_combination_is_addition() {
        let p = program();
        assert_eq!(p.combine_accums(0.25, 0.5), 0.75);
    }

    #[test]
    fn sizes_for_network_accounting() {
        let p = program();
        assert_eq!(p.state_bytes(), 8);
        assert_eq!(p.message_bytes(), 0);
        assert_eq!(p.accum_bytes(), 8);
        assert_eq!(p.gather_direction(), EdgeDirection::In);
    }
}
