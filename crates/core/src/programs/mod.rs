//! Vertex programs executed on the simulated engine.
//!
//! * [`FrogWildProgram`] — the paper's algorithm: discrete random walkers with
//!   geometric lifespans, counted where they die, scattered only from synchronized
//!   replicas.
//! * [`PageRankProgram`] — the GraphLab-toolkit PageRank the paper compares against:
//!   pull-style gather over in-edges, dynamic scheduling by tolerance, full mirror
//!   synchronization every iteration.

mod frogwild_program;
mod pagerank_program;

pub use frogwild_program::{FrogState, FrogWildProgram};
pub use pagerank_program::{PageRankProgram, RankState};
