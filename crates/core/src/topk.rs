//! Top-k selection utilities.

use frogwild_graph::VertexId;

/// Returns the `k` vertices with the largest scores, sorted by descending score.
/// Ties are broken by ascending vertex id so results are deterministic.
///
/// Runs in `O(n log k)` using a bounded selection, which matters when extracting a
/// handful of vertices from multi-million-entry score vectors.
pub fn top_k(scores: &[f64], k: usize) -> Vec<VertexId> {
    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    let k = k.min(scores.len());
    // (score, vertex) min-heap of size k implemented over a Vec with sift operations via
    // sort for simplicity at small k; for large k fall back to full sort.
    if k >= scores.len() / 2 {
        let mut order: Vec<VertexId> = (0..scores.len() as VertexId).collect();
        order.sort_unstable_by(|&a, &b| compare(scores, a, b));
        order.truncate(k);
        return order;
    }
    let mut heap: Vec<VertexId> = Vec::with_capacity(k + 1);
    for v in 0..scores.len() as VertexId {
        if heap.len() < k {
            heap.push(v);
            if heap.len() == k {
                heap.sort_unstable_by(|&a, &b| compare(scores, a, b));
            }
            continue;
        }
        // heap is sorted descending; the last element is the current threshold
        // (non-empty: k >= 1 past the early return).
        let Some(&worst) = heap.last() else { continue };
        if compare(scores, v, worst) == std::cmp::Ordering::Less {
            // v beats the current worst: insert in sorted position, drop the worst
            let pos = heap
                .binary_search_by(|&x| compare(scores, x, v))
                .unwrap_or_else(|p| p);
            heap.insert(pos, v);
            heap.pop();
        }
    }
    heap
}

/// Descending-score, ascending-id comparison.
fn compare(scores: &[f64], a: VertexId, b: VertexId) -> std::cmp::Ordering {
    // lint:allow(indexing, compare is only called with vertex ids of the scores slice)
    scores[b as usize]
        // lint:allow(indexing, compare is only called with vertex ids of the scores slice)
        .partial_cmp(&scores[a as usize])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.cmp(&b))
}

/// The total score mass of a set of vertices under `scores`.
pub fn set_mass(scores: &[f64], set: &[VertexId]) -> f64 {
    // lint:allow(indexing, callers pass vertex ids of the scores slice)
    set.iter().map(|&v| scores[v as usize]).sum()
}

/// Normalizes a non-negative score vector so it sums to one (a probability
/// distribution). Vectors with zero total mass are returned unchanged.
pub fn normalize(scores: &mut [f64]) {
    let total: f64 = scores.iter().sum();
    if total > 0.0 {
        for s in scores.iter_mut() {
            *s /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_selects_largest() {
        let scores = vec![0.1, 0.5, 0.3, 0.05, 0.05];
        assert_eq!(top_k(&scores, 2), vec![1, 2]);
        assert_eq!(top_k(&scores, 3), vec![1, 2, 0]);
    }

    #[test]
    fn top_k_ties_break_by_id() {
        let scores = vec![0.25, 0.25, 0.25, 0.25];
        assert_eq!(top_k(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_k_larger_than_n() {
        let scores = vec![0.3, 0.7];
        assert_eq!(top_k(&scores, 10), vec![1, 0]);
    }

    #[test]
    fn top_k_zero_and_empty() {
        assert!(top_k(&[0.5, 0.5], 0).is_empty());
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn heap_path_matches_sort_path() {
        // Construct enough elements that k < n/2 triggers the bounded-heap path, and
        // compare against the straightforward full sort.
        let scores: Vec<f64> = (0..500)
            .map(|i| ((i * 7919) % 1000) as f64 / 1000.0)
            .collect();
        let k = 25;
        let fast = top_k(&scores, k);
        let mut order: Vec<VertexId> = (0..scores.len() as VertexId).collect();
        order.sort_unstable_by(|&a, &b| compare(&scores, a, b));
        order.truncate(k);
        assert_eq!(fast, order);
    }

    #[test]
    fn set_mass_sums_scores() {
        let scores = vec![0.1, 0.2, 0.3, 0.4];
        assert!((set_mass(&scores, &[1, 3]) - 0.6).abs() < 1e-12);
        assert_eq!(set_mass(&scores, &[]), 0.0);
    }

    #[test]
    fn normalize_makes_distribution() {
        let mut scores = vec![2.0, 3.0, 5.0];
        normalize(&mut scores);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((scores[2] - 0.5).abs() < 1e-12);
        // zero vector unchanged
        let mut zeros = vec![0.0, 0.0];
        normalize(&mut zeros);
        assert_eq!(zeros, vec![0.0, 0.0]);
    }
}
