//! # frogwild
//!
//! A reproduction of **FrogWild! – Fast PageRank Approximations on Graph Engines**
//! (Mitliagkas, Borokhovich, Dimakis, Caramanis — VLDB 2015) as a Rust library.
//!
//! FrogWild estimates the **top-k PageRank vertices** of a directed graph by releasing a
//! small number of random walkers ("frogs") inside a PowerGraph-style distributed graph
//! engine, and — crucially — by *partially synchronizing* vertex mirrors: each mirror of
//! an updated vertex receives the new state only with probability `p_s`, cutting the
//! engine's network traffic roughly proportionally while provably (Theorem 1) keeping
//! the captured PageRank mass close to optimal.
//!
//! ## Quick start: the `Session` query service
//!
//! The primary API is [`session::Session`]: build it once (the graph is partitioned
//! across the simulated cluster exactly once, at `build()`), then serve any number of
//! typed [`session::Query`] values — global top-k, the PageRank baseline, personalized
//! PageRank, or the self-tuning pilot→plan→run pipeline — through one
//! [`session::Response`] surface. Failures are typed ([`Error`]), never panics.
//!
//! ```
//! use frogwild::prelude::*;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // A small synthetic social graph.
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = frogwild_graph::generators::livejournal_like(2_000, &mut rng);
//!
//! // Partition once over a simulated 8-machine cluster.
//! let mut session = Session::builder(&graph)
//!     .machines(8)
//!     .partitioner(PartitionerKind::Oblivious)
//!     .seed(42)
//!     .build()?;
//!
//! // Serve queries: every call reuses the vertex-cut built above.
//! let config = FrogWildConfig {
//!     num_walkers: 20_000,
//!     iterations: 4,
//!     sync_probability: 0.7,
//!     ..FrogWildConfig::default()
//! };
//! let response = session.query(&Query::TopK { k: 20, config })?;
//! assert_eq!(response.ranking.len(), 20);
//! assert_eq!(response.cost.partition_seconds, 0.0); // amortized at build()
//!
//! // Compare the estimate against exact PageRank.
//! let exact = exact_pagerank(&graph, 0.15, 100, 1e-12);
//! let accuracy = mass_captured(&response.estimate, &exact.scores, 20);
//! assert!(accuracy.normalized() > 0.6);
//!
//! // The session tracks the cumulative, amortized economics of the stream.
//! assert_eq!(session.stats().queries_served, 1);
//! # Ok::<(), frogwild::Error>(())
//! ```
//!
//! The crate is organised as follows:
//!
//! * [`session`] — the persistent, queryable PageRank service (the API above).
//! * [`error`] — the crate-wide typed [`Error`] every fallible path returns.
//! * [`config`] — experiment configuration ([`FrogWildConfig`], [`PageRankConfig`]).
//! * [`programs`] — the two vertex programs run on the simulated engine: the FrogWild
//!   walker program and the standard GraphLab-style PageRank.
//! * [`reference`](mod@crate::reference) — serial reference implementations (exact
//!   power iteration, serial Monte-Carlo walkers) used as ground truth in tests and
//!   accuracy metrics.
//! * [`metrics`] — the paper's two accuracy metrics, *mass captured* and *exact
//!   identification*, plus generic top-k utilities ([`topk`]).
//! * [`theory`] — the paper's analytical bounds (Theorem 1, Theorem 2, Proposition 7)
//!   as executable functions, so the benchmarks can overlay bound vs measurement.
//! * [`erasure`] — the Appendix-A edge-erasure models simulated serially, used to
//!   validate the engine's partial-synchronization behaviour against the theory.
//! * [`sparsify`] — the uniform-sparsification + PageRank baseline of Figure 5.
//! * [`montecarlo`] — the complete-path Monte-Carlo estimators of Avrachenkov et al.,
//!   the prior-work baseline Section 2.4 positions FrogWild against.
//! * [`ppr`] — personalized PageRank (power iteration, forward push, Monte-Carlo), the
//!   other prior-work line discussed in Section 2.4.
//! * [`confidence`] — per-vertex confidence intervals and walker-budget planning on top
//!   of the Theorem 1 / Remark 6 machinery.
//! * [`autotune`] — the pilot → plan → run pipeline that turns the planning rules into
//!   a self-tuning top-k query (served as `Query::AutotunedTopK`).
//! * [`rank_metrics`] — order-sensitive ranking metrics (Kendall τ, footrule, NDCG)
//!   complementing the paper's two set-level metrics.
//! * [`walkindex`] — the precomputed walk-index subsystem: build an arena of per-vertex
//!   walk segments once (in parallel across the simulated machines), then serve PPR and
//!   top-k queries by stitching cached segments instead of fresh Monte-Carlo walks.
//!   Plugged into the session via `SessionBuilder::walk_index`.
//! * [`serve`] — the concurrent serving front-end: a fixed worker pool drains a bounded
//!   admission queue over a shared session, with per-kind latency histograms
//!   (p50/p95/p99) and deterministic per-query seeding so any worker count returns
//!   bit-identical responses. Entered via `Session::serve`.
//! * [`driver`] — the low-level experiment drivers underneath the session; they return
//!   a [`driver::RunReport`] with raw engine metrics for the benchmark harness.
//! * [`report`] — tiny CSV/markdown writers for the figure harness.
//! * [`obs`] — structured tracing (re-exported `frogwild_obs`): span guards with
//!   static callsite metadata recorded into one deterministic timeline, exportable as
//!   Chrome trace-event JSON or CSV. Wired through `SessionBuilder::tracing`; a
//!   disabled tracer (the default) costs nothing.
//!
//! ## Migrating from the 0.1 free functions
//!
//! The 0.1-era one-shot functions (`run_frogwild`, `run_graphlab_pr`, `auto_topk`)
//! partitioned the graph on every call and panicked on invalid configurations. They
//! were deprecated in 0.2 and are now removed. Replace them with a session:
//!
//! ```text
//! // before (removed):
//! let report = run_frogwild(&graph, &ClusterConfig::new(8, 42), &config);
//! // after:
//! let mut session = Session::builder(&graph).machines(8).seed(42).build()?;
//! let response = session.query(&Query::TopK { k, config })?;
//! ```
//!
//! `run_graphlab_pr` maps to `Query::Pagerank`, `auto_topk` to `Query::AutotunedTopK`,
//! and the `frogwild::ppr` helpers are served as `Query::Ppr`. For parameter sweeps
//! that need raw [`driver::RunReport`] metrics, the fallible `driver::*_on` functions
//! (over an explicit [`driver::partition_graph`] layout) remain the supported
//! low-level layer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotune;
pub mod confidence;
pub mod config;
pub mod dist;
pub mod driver;
pub mod erasure;
pub mod error;
pub mod metrics;
pub mod montecarlo;
pub mod ppr;
pub mod programs;
pub mod rank_metrics;
pub mod reference;
pub mod report;
pub mod serve;
pub mod session;
pub mod sparsify;
pub mod theory;
pub mod topk;
pub mod walkindex;

/// Structured tracing for every layer of the stack — the re-exported
/// [`frogwild_obs`] crate. See [`session::SessionBuilder::tracing`] for the usual
/// entry point and `frogwild_obs`'s crate docs for the span API.
pub use frogwild_obs as obs;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::autotune::{auto_topk_on, AutoTuneConfig, AutoTuneReport};
    pub use crate::confidence::{plan_walkers, wilson_interval, WalkerPlan};
    pub use crate::config::{ExecutionConfig, FrogWildConfig, PageRankConfig, Scheduling};
    pub use crate::driver::{
        partition_graph, run_frogwild_on, run_frogwild_scheduled, run_frogwild_traced,
        run_frogwild_with, run_graphlab_pr_on, run_graphlab_pr_scheduled, run_graphlab_pr_traced,
        run_graphlab_pr_with, run_sparsified_pr, RunReport,
    };
    pub use crate::error::{Error, Result};
    pub use crate::metrics::{exact_identification, mass_captured, MassCaptured};
    pub use crate::obs::{TraceConfig, TraceReport, Tracer};
    pub use crate::ppr::{forward_push_ppr, personalized_pagerank, single_source_restart};
    pub use crate::rank_metrics::{kendall_tau_top_k, ndcg_at_k};
    pub use crate::reference::{exact_pagerank, serial_random_walk_pagerank, PageRankResult};
    pub use crate::serve::{
        Admission, LatencyHistogram, LatencyStats, QueryKind, QueryOutcome, ServeConfig,
        ServeHandle, ServeReport, WorkerStats,
    };
    pub use crate::session::{
        serve_ppr, PprMethod, Query, QueryCost, Response, ResponseDetail, Session, SessionBuilder,
        SessionStats,
    };
    pub use crate::theory::{intersection_probability_bound, theorem1_epsilon};
    pub use crate::topk::top_k;
    pub use crate::walkindex::{WalkIndex, WalkIndexBuildReport, WalkIndexConfig};
    pub use frogwild_engine::{ClusterConfig, PartitionerKind, SyncPolicy};
    pub use frogwild_graph::{DiGraph, GraphBuilder, VertexId};
}

pub use config::{ExecutionConfig, FrogWildConfig, PageRankConfig, Scheduling};
pub use error::{Error, Result};
pub use metrics::{exact_identification, mass_captured, MassCaptured};
pub use reference::{exact_pagerank, serial_random_walk_pagerank, PageRankResult};
pub use serve::{Admission, ServeConfig, ServeHandle, ServeReport};
pub use session::{Query, Response, Session};
pub use topk::top_k;

pub use driver::{run_sparsified_pr, RunReport};
pub use walkindex::{WalkIndex, WalkIndexConfig};
