//! # frogwild
//!
//! A reproduction of **FrogWild! – Fast PageRank Approximations on Graph Engines**
//! (Mitliagkas, Borokhovich, Dimakis, Caramanis — VLDB 2015) as a Rust library.
//!
//! FrogWild estimates the **top-k PageRank vertices** of a directed graph by releasing a
//! small number of random walkers ("frogs") inside a PowerGraph-style distributed graph
//! engine, and — crucially — by *partially synchronizing* vertex mirrors: each mirror of
//! an updated vertex receives the new state only with probability `p_s`, cutting the
//! engine's network traffic roughly proportionally while provably (Theorem 1) keeping
//! the captured PageRank mass close to optimal.
//!
//! The crate is organised as follows:
//!
//! * [`config`] — experiment configuration ([`FrogWildConfig`], [`PageRankConfig`]).
//! * [`programs`] — the two vertex programs run on the simulated engine: the FrogWild
//!   walker program and the standard GraphLab-style PageRank.
//! * [`reference`] — serial reference implementations (exact power iteration, serial
//!   Monte-Carlo walkers) used as ground truth in tests and accuracy metrics.
//! * [`metrics`] — the paper's two accuracy metrics, *mass captured* and *exact
//!   identification*, plus generic top-k utilities ([`topk`]).
//! * [`theory`] — the paper's analytical bounds (Theorem 1, Theorem 2, Proposition 7)
//!   as executable functions, so the benchmarks can overlay bound vs measurement.
//! * [`erasure`] — the Appendix-A edge-erasure models simulated serially, used to
//!   validate the engine's partial-synchronization behaviour against the theory.
//! * [`sparsify`] — the uniform-sparsification + PageRank baseline of Figure 5.
//! * [`montecarlo`] — the complete-path Monte-Carlo estimators of Avrachenkov et al.,
//!   the prior-work baseline Section 2.4 positions FrogWild against.
//! * [`ppr`] — personalized PageRank (power iteration, forward push, Monte-Carlo), the
//!   other prior-work line discussed in Section 2.4.
//! * [`confidence`] — per-vertex confidence intervals and walker-budget planning on top
//!   of the Theorem 1 / Remark 6 machinery.
//! * [`autotune`] — the pilot → plan → run pipeline that turns the planning rules into
//!   a self-tuning top-k query.
//! * [`rank_metrics`] — order-sensitive ranking metrics (Kendall τ, footrule, NDCG)
//!   complementing the paper's two set-level metrics.
//! * [`driver`] — one-call experiment drivers returning a [`driver::RunReport`] with
//!   both accuracy and cost metrics; these are what the examples and the benchmark
//!   harness use.
//! * [`report`] — tiny CSV/markdown writers for the figure harness.
//!
//! ## Quick start
//!
//! ```
//! use frogwild::prelude::*;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // A small synthetic social graph.
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = frogwild_graph::generators::livejournal_like(2_000, &mut rng);
//!
//! // Run FrogWild on a simulated 8-machine cluster.
//! let config = FrogWildConfig {
//!     num_walkers: 20_000,
//!     iterations: 4,
//!     sync_probability: 0.7,
//!     ..FrogWildConfig::default()
//! };
//! let report = run_frogwild(&graph, &ClusterConfig::new(8, 42), &config);
//!
//! // Compare the estimated top-20 against exact PageRank.
//! let exact = exact_pagerank(&graph, 0.15, 100, 1e-12);
//! let accuracy = mass_captured(&report.estimate, &exact.scores, 20);
//! assert!(accuracy.normalized() > 0.6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotune;
pub mod config;
pub mod confidence;
pub mod dist;
pub mod driver;
pub mod erasure;
pub mod metrics;
pub mod montecarlo;
pub mod ppr;
pub mod programs;
pub mod rank_metrics;
pub mod reference;
pub mod report;
pub mod sparsify;
pub mod theory;
pub mod topk;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::autotune::{auto_topk, AutoTuneConfig, AutoTuneReport};
    pub use crate::config::{FrogWildConfig, PageRankConfig};
    pub use crate::confidence::{plan_walkers, wilson_interval, WalkerPlan};
    pub use crate::driver::{run_frogwild, run_graphlab_pr, run_sparsified_pr, RunReport};
    pub use crate::metrics::{exact_identification, mass_captured, MassCaptured};
    pub use crate::ppr::{forward_push_ppr, personalized_pagerank, single_source_restart};
    pub use crate::rank_metrics::{kendall_tau_top_k, ndcg_at_k};
    pub use crate::reference::{exact_pagerank, serial_random_walk_pagerank, PageRankResult};
    pub use crate::theory::{intersection_probability_bound, theorem1_epsilon};
    pub use crate::topk::top_k;
    pub use frogwild_engine::{ClusterConfig, SyncPolicy};
    pub use frogwild_graph::{DiGraph, GraphBuilder, VertexId};
}

pub use config::{FrogWildConfig, PageRankConfig};
pub use driver::{run_frogwild, run_graphlab_pr, run_sparsified_pr, RunReport};
pub use metrics::{exact_identification, mass_captured, MassCaptured};
pub use reference::{exact_pagerank, serial_random_walk_pagerank, PageRankResult};
pub use topk::top_k;
