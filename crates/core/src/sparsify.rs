//! The uniform-sparsification baseline of Figure 5.
//!
//! Section 2.4 discusses a natural alternative to FrogWild: independently delete every
//! edge with probability `r = 1 - q` and run a couple of standard PageRank iterations
//! on the thinner graph. The actual sparsifier lives in
//! [`frogwild_graph::sparsify::uniform_sparsify`]; this module contributes the sweep
//! configuration used by the figure harness and an analytical helper describing how the
//! expected work shrinks with `q`.

use serde::{Deserialize, Serialize};

use crate::config::PageRankConfig;

/// One point of the Figure 5 sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparsifiedBaselineConfig {
    /// Probability of keeping each edge (`q = 1 - r` in the paper; the figure uses
    /// q ∈ {0.4, 0.7, 1}).
    pub keep_probability: f64,
    /// PageRank iterations run on the sparsified graph (the paper uses 2: a single
    /// iteration would only measure in-degree, which is already known at load time).
    pub iterations: usize,
}

impl Default for SparsifiedBaselineConfig {
    fn default() -> Self {
        SparsifiedBaselineConfig {
            keep_probability: 0.7,
            iterations: 2,
        }
    }
}

impl SparsifiedBaselineConfig {
    /// The PageRank configuration to run on the sparsified graph.
    pub fn pagerank_config(&self, seed: u64) -> PageRankConfig {
        PageRankConfig {
            max_iterations: self.iterations,
            tolerance: 0.0,
            seed,
            ..PageRankConfig::default()
        }
    }

    /// The q values Figure 5 sweeps.
    pub fn paper_sweep() -> Vec<SparsifiedBaselineConfig> {
        [0.4, 0.7, 1.0]
            .into_iter()
            .map(|q| SparsifiedBaselineConfig {
                keep_probability: q,
                iterations: 2,
            })
            .collect()
    }

    /// Expected fraction of the full graph's per-iteration edge work that survives
    /// sparsification (exactly `q`, since each edge is kept independently).
    pub fn expected_work_fraction(&self) -> f64 {
        self.keep_probability
    }

    /// Validates the configuration, returning the first problem found as a typed
    /// [`Error::InvalidConfig`](crate::Error::InvalidConfig).
    pub fn validate(&self) -> Result<(), crate::Error> {
        if !(0.0..=1.0).contains(&self.keep_probability) {
            return Err(crate::Error::config(
                "SparsifiedBaselineConfig",
                format!(
                    "keep_probability must be in [0, 1], got {}",
                    self.keep_probability
                ),
            ));
        }
        if self.iterations == 0 {
            return Err(crate::Error::config(
                "SparsifiedBaselineConfig",
                "iterations must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setting() {
        let c = SparsifiedBaselineConfig::default();
        assert_eq!(c.iterations, 2);
        assert!(c.validate().is_ok());
        assert_eq!(c.expected_work_fraction(), 0.7);
    }

    #[test]
    fn paper_sweep_values() {
        let sweep = SparsifiedBaselineConfig::paper_sweep();
        let qs: Vec<f64> = sweep.iter().map(|c| c.keep_probability).collect();
        assert_eq!(qs, vec![0.4, 0.7, 1.0]);
        assert!(sweep.iter().all(|c| c.iterations == 2));
        assert!(sweep.iter().all(|c| c.validate().is_ok()));
    }

    #[test]
    fn pagerank_config_mapping() {
        let c = SparsifiedBaselineConfig {
            keep_probability: 0.4,
            iterations: 3,
        };
        let pr = c.pagerank_config(99);
        assert_eq!(pr.max_iterations, 3);
        assert_eq!(pr.tolerance, 0.0);
        assert_eq!(pr.seed, 99);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SparsifiedBaselineConfig {
            keep_probability: 1.5,
            iterations: 2
        }
        .validate()
        .is_err());
        assert!(SparsifiedBaselineConfig {
            keep_probability: 0.5,
            iterations: 0
        }
        .validate()
        .is_err());
    }
}
