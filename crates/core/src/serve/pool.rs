//! The worker pool: a fixed set of threads draining the bounded submission queue.
//!
//! The shape mirrors the PR 6 executor: work is cut into contiguous batches, workers
//! pull whole batches (amortizing queue synchronization over `batch` queries), and
//! nothing mutable is shared — workers read the [`Session`] through a shared
//! reference and report results over a channel, so there is no lock on the serving
//! hot path. Determinism falls out of the seeding discipline: every query's
//! randomness is derived from `(session seed, query sequence id)` *before* it is
//! enqueued, so the answers are a pure function of the submitted stream no matter
//! how many workers race over it — only completion order varies.

use std::sync::mpsc;
use std::time::Instant;

use crate::error::Result;
use crate::session::{Query, Response, Session};

use super::latency::LatencyStats;
use super::queue::{AdmitError, Bounded};
use super::{reseeded, seed_for, Admission, QueryOutcome, ServeConfig, ServeReport, WorkerStats};

/// One unit of queue traffic: a contiguous run of `(position, sequence id, query)`
/// triples, stamped with its submission instant so queue wait is measurable.
struct Batch {
    submitted: Instant,
    items: Vec<(usize, u64, Query)>,
}

/// Runs `queries` through a fixed worker pool over `session` and collects every
/// outcome in submission order.
///
/// The calling thread plays the admission controller: it cuts the stream into
/// batches and submits them against the bounded queue under the configured
/// [`Admission`] policy. Batches that the policy turns away are marked
/// [`QueryOutcome::Rejected`] without ever reaching a worker — that is the explicit
/// overload path; nothing is silently dropped and nothing is buffered beyond
/// `queue_depth` batches.
pub(super) fn run_stream(
    session: &Session<'_>,
    config: &ServeConfig,
    start_seq: u64,
    queries: &[Query],
) -> ServeReport {
    let session_seed = session.cluster().seed;
    let workers = config.effective_workers();
    let queue: Bounded<Batch> = Bounded::new(config.queue_depth);
    let (result_tx, result_rx) = mpsc::channel::<(usize, Result<Response>)>();
    let mut outcomes: Vec<Option<QueryOutcome>> = Vec::with_capacity(queries.len());
    outcomes.resize_with(queries.len(), || None);

    let started = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let queue = &queue;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let tx = result_tx.clone();
                scope.spawn(move || {
                    let mut stats = WorkerStats {
                        worker,
                        ..WorkerStats::default()
                    };
                    while let Some(batch) = queue.pop() {
                        stats.queue_wait_seconds += batch.submitted.elapsed().as_secs_f64();
                        stats.batches = stats.batches.saturating_add(1);
                        for (position, seq, query) in batch.items {
                            let seeded = reseeded(&query, seed_for(session_seed, seq));
                            let busy = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
                            let result = session.execute(&seeded);
                            stats.busy_seconds += busy.elapsed().as_secs_f64();
                            match &result {
                                Ok(_) => stats.served = stats.served.saturating_add(1),
                                Err(_) => stats.failed = stats.failed.saturating_add(1),
                            }
                            // The receiver outlives every worker; a send can only
                            // fail if the collector already gave up, in which case
                            // dropping the result is the right thing.
                            let _ = tx.send((position, result));
                        }
                    }
                    stats
                })
            })
            .collect();
        drop(result_tx);

        // Admission control on the calling thread: batch, then submit under the
        // configured policy. `push` can only fail here via `Closed`, which cannot
        // happen before the close below — treat it like a rejection regardless.
        for (batch_index, chunk) in queries.chunks(config.batch.max(1)).enumerate() {
            let base = batch_index * config.batch.max(1);
            let items: Vec<(usize, u64, Query)> = chunk
                .iter()
                .enumerate()
                .map(|(offset, query)| {
                    let position = base + offset;
                    (position, start_seq + position as u64, query.clone())
                })
                .collect();
            let batch = Batch {
                submitted: Instant::now(), // lint:allow(timing, queue-wait telemetry only)
                items,
            };
            let verdict = match config.admission {
                Admission::Block => queue.push(batch),
                Admission::Reject => queue.try_push(batch),
                Admission::Timeout(limit) => queue.push_timeout(batch, limit),
            };
            if let Err(AdmitError::Full(batch) | AdmitError::Closed(batch)) = verdict {
                for (position, _, _) in batch.items {
                    outcomes[position] = Some(QueryOutcome::Rejected); // lint:allow(indexing, position < queries.len() by construction)
                }
            }
        }
        queue.close();

        // Collect results while workers finish draining; the channel ends once the
        // last worker drops its sender.
        for (position, result) in result_rx {
            // lint:allow(indexing, position < queries.len() by construction)
            outcomes[position] = Some(match result {
                Ok(response) => QueryOutcome::from(response),
                Err(error) => QueryOutcome::Failed(error),
            });
        }
        handles
            .into_iter()
            // lint:allow(panic, re-raises a worker thread panic)
            .map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let outcomes: Vec<QueryOutcome> = outcomes
        .into_iter()
        .map(|slot| slot.expect("every submitted query has an outcome")) // lint:allow(panic, every position is filled by the collector or rejection path)
        .collect();
    finish_report(outcomes, worker_stats, wall_seconds)
}

/// Serves `queries` on the calling thread, in submission order, under the *same*
/// `(session seed, sequence id)` seeding as the pool — the serial reference path the
/// concurrent results are pinned against.
pub(super) fn run_serial(session: &Session<'_>, start_seq: u64, queries: &[Query]) -> ServeReport {
    let session_seed = session.cluster().seed;
    let started = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
    let mut stats = WorkerStats::default();
    let outcomes: Vec<QueryOutcome> = queries
        .iter()
        .enumerate()
        .map(|(position, query)| {
            let seeded = reseeded(query, seed_for(session_seed, start_seq + position as u64));
            let busy = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
            let result = session.execute(&seeded);
            stats.busy_seconds += busy.elapsed().as_secs_f64();
            match result {
                Ok(response) => {
                    stats.served = stats.served.saturating_add(1);
                    QueryOutcome::from(response)
                }
                Err(error) => {
                    stats.failed = stats.failed.saturating_add(1);
                    QueryOutcome::Failed(error)
                }
            }
        })
        .collect();
    stats.batches = queries.len() as u64;
    let wall_seconds = started.elapsed().as_secs_f64();
    finish_report(outcomes, vec![stats], wall_seconds)
}

/// Folds per-query outcomes and per-worker counters into a [`ServeReport`].
fn finish_report(
    outcomes: Vec<QueryOutcome>,
    workers: Vec<WorkerStats>,
    wall_seconds: f64,
) -> ServeReport {
    let mut latency = LatencyStats::default();
    let (mut served, mut rejected, mut failed) = (0u64, 0u64, 0u64);
    let mut query_seconds = 0.0;
    for outcome in &outcomes {
        match outcome {
            QueryOutcome::Served(response) => {
                served = served.saturating_add(1);
                query_seconds += response.cost.host_seconds;
                latency.record(response.kind(), response.cost.host_seconds);
            }
            QueryOutcome::Rejected => rejected = rejected.saturating_add(1),
            QueryOutcome::Failed(_) => failed = failed.saturating_add(1),
        }
    }
    ServeReport {
        outcomes,
        served,
        rejected,
        failed,
        wall_seconds,
        query_seconds,
        latency,
        workers,
    }
}
