//! The worker pool: a fixed set of threads draining the bounded submission queue.
//!
//! The shape mirrors the PR 6 executor: work is cut into contiguous batches, workers
//! pull whole batches (amortizing queue synchronization over `batch` queries), and
//! nothing mutable is shared — workers read the [`Session`] through a shared
//! reference and report results over a channel, so there is no lock on the serving
//! hot path. Determinism falls out of the seeding discipline: every query's
//! randomness is derived from `(session seed, query sequence id)` *before* it is
//! enqueued, so the answers are a pure function of the submitted stream no matter
//! how many workers race over it — only completion order varies.

use std::sync::mpsc;
use std::time::Instant;

use frogwild_obs::{span_meta, SpanKey, SpanMeta};

use crate::error::Result;
use crate::session::{Query, Response, Session};

use super::latency::{LatencyStats, QueryKind};
use super::queue::{AdmitError, Bounded};
use super::{reseeded, seed_for, Admission, QueryOutcome, ServeConfig, ServeReport, WorkerStats};

/// [`SpanKey::lane`] of the admission thread's enqueue/reject events. Serve-layer
/// keys are `(sequence id, 0, 0, lane)`; lanes 8+ are reserved for the serve layer
/// (8 is the session's index-serving span).
const LANE_ADMIT: u16 = 9;
/// [`SpanKey::lane`] of a worker's dequeue event and execute span for one query.
const LANE_EXECUTE: u16 = 10;

/// The execute span's static metadata, one per [`QueryKind`] so the phase
/// breakdown of a trace splits service time per kind.
fn execute_meta(kind: QueryKind) -> &'static SpanMeta {
    match kind {
        QueryKind::TopK => span_meta!("execute_topk"),
        QueryKind::Pagerank => span_meta!("execute_pagerank"),
        QueryKind::Ppr => span_meta!("execute_ppr"),
        QueryKind::AutotunedTopK => span_meta!("execute_autotuned"),
    }
}

/// Seconds → whole microseconds, the unit trace counters carry.
fn as_micros(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e6) as u64
}

/// One unit of queue traffic: a contiguous run of `(position, sequence id, query)`
/// triples, stamped with its submission instant so queue wait is measurable.
struct Batch {
    submitted: Instant,
    items: Vec<(usize, u64, Query)>,
}

/// Runs `queries` through a fixed worker pool over `session` and collects every
/// outcome in submission order.
///
/// The calling thread plays the admission controller: it cuts the stream into
/// batches and submits them against the bounded queue under the configured
/// [`Admission`] policy. Batches that the policy turns away are marked
/// [`QueryOutcome::Rejected`] without ever reaching a worker — that is the explicit
/// overload path; nothing is silently dropped and nothing is buffered beyond
/// `queue_depth` batches.
pub(super) fn run_stream(
    session: &Session<'_>,
    config: &ServeConfig,
    start_seq: u64,
    queries: &[Query],
) -> ServeReport {
    let session_seed = session.cluster().seed;
    let workers = config.effective_workers();
    let tracer = session.tracer();
    let queue: Bounded<Batch> = Bounded::new(config.queue_depth);
    let (result_tx, result_rx) = mpsc::channel::<(usize, f64, Result<Response>)>();
    let mut outcomes: Vec<Option<QueryOutcome>> = Vec::with_capacity(queries.len());
    outcomes.resize_with(queries.len(), || None);
    let mut waits = vec![0.0f64; queries.len()];

    let started = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
    let worker_stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let queue = &queue;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let tx = result_tx.clone();
                scope.spawn(move || {
                    let mut stats = WorkerStats {
                        worker,
                        ..WorkerStats::default()
                    };
                    while let Some(batch) = queue.pop() {
                        stats.batches = stats.batches.saturating_add(1);
                        for (position, seq, query) in batch.items {
                            let seeded = reseeded(&query, seed_for(session_seed, seq));
                            // Queue wait runs from submission to the start of this
                            // query's execution, so time spent behind earlier
                            // queries of the same batch counts as waiting too.
                            let wait = batch.submitted.elapsed().as_secs_f64(); // lint:allow(timing, queue-wait telemetry only)
                            stats.queue_wait_seconds += wait;
                            // One sink per query keeps record ordinals a function
                            // of the query alone, not of worker scheduling.
                            let sink = tracer.sink();
                            let key = SpanKey::new(seq, 0, 0, LANE_EXECUTE);
                            sink.event_with(
                                span_meta!("dequeue"),
                                key,
                                &[("queue_wait_us", as_micros(wait))],
                            );
                            let mut exec_span = sink.span(execute_meta(seeded.kind()), key);
                            exec_span.counter("queue_wait_us", as_micros(wait));
                            let busy = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
                            let result = session.execute_at(seq, &seeded);
                            stats.busy_seconds += busy.elapsed().as_secs_f64();
                            drop(exec_span);
                            match &result {
                                Ok(_) => stats.served = stats.served.saturating_add(1),
                                Err(_) => stats.failed = stats.failed.saturating_add(1),
                            }
                            // The receiver outlives every worker; a send can only
                            // fail if the collector already gave up, in which case
                            // dropping the result is the right thing.
                            let _ = tx.send((position, wait, result));
                        }
                    }
                    stats
                })
            })
            .collect();
        drop(result_tx);
        let admit_sink = tracer.sink();

        // Admission control on the calling thread: batch, then submit under the
        // configured policy. `push` can only fail here via `Closed`, which cannot
        // happen before the close below — treat it like a rejection regardless.
        for (batch_index, chunk) in queries.chunks(config.batch.max(1)).enumerate() {
            let base = batch_index * config.batch.max(1);
            let items: Vec<(usize, u64, Query)> = chunk
                .iter()
                .enumerate()
                .map(|(offset, query)| {
                    let position = base + offset;
                    (position, start_seq + position as u64, query.clone())
                })
                .collect();
            for &(_, seq, _) in &items {
                admit_sink.event(span_meta!("enqueue"), SpanKey::new(seq, 0, 0, LANE_ADMIT));
            }
            let batch = Batch {
                submitted: Instant::now(), // lint:allow(timing, queue-wait telemetry only)
                items,
            };
            let verdict = match config.admission {
                Admission::Block => queue.push(batch),
                Admission::Reject => queue.try_push(batch),
                Admission::Timeout(limit) => queue.push_timeout(batch, limit),
            };
            if let Err(AdmitError::Full(batch) | AdmitError::Closed(batch)) = verdict {
                for (position, seq, _) in batch.items {
                    admit_sink.event(span_meta!("rejected"), SpanKey::new(seq, 0, 0, LANE_ADMIT));
                    outcomes[position] = Some(QueryOutcome::Rejected); // lint:allow(indexing, position < queries.len() by construction)
                }
            }
        }
        queue.close();

        // Collect results while workers finish draining; the channel ends once the
        // last worker drops its sender.
        for (position, wait, result) in result_rx {
            // lint:allow(indexing, position < queries.len() by construction)
            waits[position] = wait;
            // lint:allow(indexing, position < queries.len() by construction)
            outcomes[position] = Some(match result {
                Ok(response) => QueryOutcome::from(response),
                Err(error) => QueryOutcome::Failed(error),
            });
        }
        handles
            .into_iter()
            // lint:allow(panic, re-raises a worker thread panic)
            .map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let outcomes: Vec<QueryOutcome> = outcomes
        .into_iter()
        .map(|slot| slot.expect("every submitted query has an outcome")) // lint:allow(panic, every position is filled by the collector or rejection path)
        .collect();
    finish_report(outcomes, waits, worker_stats, wall_seconds)
}

/// Serves `queries` on the calling thread, in submission order, under the *same*
/// `(session seed, sequence id)` seeding as the pool — the serial reference path the
/// concurrent results are pinned against.
pub(super) fn run_serial(session: &Session<'_>, start_seq: u64, queries: &[Query]) -> ServeReport {
    let session_seed = session.cluster().seed;
    let tracer = session.tracer();
    let started = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
    let mut stats = WorkerStats::default();
    let outcomes: Vec<QueryOutcome> = queries
        .iter()
        .enumerate()
        .map(|(position, query)| {
            let seq = start_seq + position as u64;
            let seeded = reseeded(query, seed_for(session_seed, seq));
            let sink = tracer.sink();
            let key = SpanKey::new(seq, 0, 0, LANE_EXECUTE);
            let mut exec_span = sink.span(execute_meta(seeded.kind()), key);
            // The serial path has no queue, so its queue wait is identically zero.
            exec_span.counter("queue_wait_us", 0);
            let busy = Instant::now(); // lint:allow(timing, host wall-clock telemetry; results never read it)
            let result = session.execute_at(seq, &seeded);
            stats.busy_seconds += busy.elapsed().as_secs_f64();
            drop(exec_span);
            match result {
                Ok(response) => {
                    stats.served = stats.served.saturating_add(1);
                    QueryOutcome::from(response)
                }
                Err(error) => {
                    stats.failed = stats.failed.saturating_add(1);
                    QueryOutcome::Failed(error)
                }
            }
        })
        .collect();
    stats.batches = queries.len() as u64;
    let wall_seconds = started.elapsed().as_secs_f64();
    let waits = vec![0.0; outcomes.len()];
    finish_report(outcomes, waits, vec![stats], wall_seconds)
}

/// Folds per-query outcomes, queue waits and per-worker counters into a
/// [`ServeReport`]. `waits[i]` is query `i`'s submission-to-execution wait; only
/// served queries feed the queue-wait histograms (mirroring service latency).
fn finish_report(
    outcomes: Vec<QueryOutcome>,
    waits: Vec<f64>,
    workers: Vec<WorkerStats>,
    wall_seconds: f64,
) -> ServeReport {
    let mut latency = LatencyStats::default();
    let mut queue_wait = LatencyStats::default();
    let (mut served, mut rejected, mut failed) = (0u64, 0u64, 0u64);
    let mut query_seconds = 0.0;
    for (outcome, &wait) in outcomes.iter().zip(&waits) {
        match outcome {
            QueryOutcome::Served(response) => {
                served = served.saturating_add(1);
                query_seconds += response.cost.host_seconds;
                latency.record(response.kind(), response.cost.host_seconds);
                queue_wait.record(response.kind(), wait);
            }
            QueryOutcome::Rejected => rejected = rejected.saturating_add(1),
            QueryOutcome::Failed(_) => failed = failed.saturating_add(1),
        }
    }
    ServeReport {
        outcomes,
        served,
        rejected,
        failed,
        wall_seconds,
        query_seconds,
        latency,
        queue_wait,
        workers,
    }
}
