//! Fixed-bucket latency histograms and per-query-kind percentile telemetry.
//!
//! Serving systems report latency as *percentiles over a histogram*, not as means:
//! a mean hides the tail that overloaded queues produce. The histogram here is the
//! standard fixed-layout exponential design (HdrHistogram's coarse cousin): bucket
//! `i` covers latencies in `[2^(i-1), 2^i)` microseconds, so 32 buckets span 1 µs to
//! ~35 minutes with ≤2x relative error per bucket. A fixed layout keeps the type
//! `Copy`, makes merging two histograms a bucket-wise add, and costs O(1) per
//! recording — cheap enough to sit on every query path.

/// Number of exponential buckets; bucket `i` covers `[2^(i-1), 2^i)` microseconds.
pub const LATENCY_BUCKETS: usize = 32;

/// A fixed-bucket exponential latency histogram.
///
/// Recording is O(1); quantile extraction walks the 32 buckets and reports the
/// *upper edge* of the bucket holding the requested rank, so a reported percentile
/// is a conservative (never optimistic) bound within 2x of the true value.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_seconds: f64,
    max_seconds: f64,
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, seconds: f64) {
        let micros = (seconds.max(0.0) * 1e6) as u64;
        let index = (u64::BITS - micros.leading_zeros()) as usize;
        // lint:allow(indexing, index is clamped to the fixed bucket count)
        let bucket = &mut self.buckets[index.min(LATENCY_BUCKETS - 1)];
        *bucket = bucket.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_seconds += seconds.max(0.0);
        self.max_seconds = self.max_seconds.max(seconds);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_seconds
    }

    /// Largest latency recorded, in seconds (zero when empty).
    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// Mean latency in seconds (zero when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }

    /// The latency at quantile `q` ∈ [0, 1], in seconds: the upper edge of the bucket
    /// containing the `ceil(q · count)`-th observation. Zero when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                if index == LATENCY_BUCKETS - 1 {
                    // The top bucket is open-ended; the recorded max is its only
                    // honest upper bound.
                    return self.max_seconds;
                }
                // Upper edge of bucket i is 2^i microseconds. The true maximum is a
                // tighter bound when every observation sits below the edge.
                let edge = (1u64 << index) as f64 * 1e-6;
                return edge.min(self.max_seconds);
            }
        }
        self.max_seconds
    }

    /// Median latency (upper-edge bound), in seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (upper-edge bound), in seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency (upper-edge bound), in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (bucket-wise; counts saturate).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_seconds += other.sum_seconds;
        self.max_seconds = self.max_seconds.max(other.max_seconds);
    }
}

/// The kind of a [`Query`](crate::session::Query), used to key per-kind telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A `Query::TopK`.
    TopK,
    /// A `Query::Pagerank`.
    Pagerank,
    /// A `Query::Ppr`.
    Ppr,
    /// A `Query::AutotunedTopK`.
    AutotunedTopK,
}

/// All query kinds, in the order [`LatencyStats`] stores them.
pub const QUERY_KINDS: [QueryKind; 4] = [
    QueryKind::TopK,
    QueryKind::Pagerank,
    QueryKind::Ppr,
    QueryKind::AutotunedTopK,
];

impl QueryKind {
    /// Short human-readable label (`"topk"`, `"pagerank"`, `"ppr"`, `"autotuned"`).
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::TopK => "topk",
            QueryKind::Pagerank => "pagerank",
            QueryKind::Ppr => "ppr",
            QueryKind::AutotunedTopK => "autotuned",
        }
    }

    fn index(&self) -> usize {
        match self {
            QueryKind::TopK => 0,
            QueryKind::Pagerank => 1,
            QueryKind::Ppr => 2,
            QueryKind::AutotunedTopK => 3,
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One [`LatencyHistogram`] per query kind — the latency telemetry a
/// [`Session`](crate::session::Session) accumulates over everything it serves.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    per_kind: [LatencyHistogram; 4],
}

impl LatencyStats {
    /// Records one served query's latency under its kind.
    pub fn record(&mut self, kind: QueryKind, seconds: f64) {
        // lint:allow(indexing, QueryKind::index is 0..4 by definition)
        self.per_kind[kind.index()].record(seconds);
    }

    /// The histogram for one query kind.
    pub fn histogram(&self, kind: QueryKind) -> &LatencyHistogram {
        // lint:allow(indexing, QueryKind::index is 0..4 by definition)
        &self.per_kind[kind.index()]
    }

    /// All kinds merged into one histogram.
    pub fn overall(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::default();
        for h in &self.per_kind {
            merged.merge(h);
        }
        merged
    }

    /// Total observations across all kinds.
    pub fn count(&self) -> u64 {
        self.per_kind.iter().map(|h| h.count()).sum()
    }

    /// Merges another set of per-kind histograms into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        for (h, o) in self.per_kind.iter_mut().zip(&other.per_kind) {
            h.merge(o);
        }
    }
}

impl std::fmt::Display for LatencyStats {
    /// One line per non-empty kind: count, mean, and the p50/p95/p99 bounds.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut any = false;
        for kind in QUERY_KINDS {
            let h = self.histogram(kind);
            if h.count() == 0 {
                continue;
            }
            if any {
                writeln!(f)?;
            }
            any = true;
            write!(
                f,
                "{}: {} served, mean {:.3}ms, p50 {:.3}ms, p95 {:.3}ms, p99 {:.3}ms",
                kind.label(),
                h.count(),
                h.mean_seconds() * 1e3,
                h.p50() * 1e3,
                h.p95() * 1e3,
                h.p99() * 1e3,
            )?;
        }
        if !any {
            write!(f, "no queries recorded")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean_seconds(), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
    }

    #[test]
    fn quantiles_bound_the_observations_within_a_bucket() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1e-3); // 1ms
        }
        h.record(1.0); // one 1s outlier
        assert_eq!(h.count(), 100);
        // p50 must bound 1ms from above within one bucket (2x).
        assert!(h.p50() >= 1e-3 && h.p50() <= 2.1e-3, "p50={}", h.p50());
        // p99 lands on the last 1ms observation; p100 catches the outlier.
        assert!(h.quantile(1.0) >= 1.0);
        assert!((h.mean_seconds() - (0.099 + 1.0) / 100.0).abs() < 1e-9);
        assert_eq!(h.max_seconds(), 1.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(i as f64 * 1e-5);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(h.quantile(w[0]) <= h.quantile(w[1]), "{w:?}");
        }
    }

    #[test]
    fn extreme_latencies_clamp_into_the_edge_buckets() {
        let mut h = LatencyHistogram::default();
        h.record(0.0); // below 1µs → bucket 0
        h.record(-1.0); // negative treated as zero, not a panic
        h.record(1e9); // far beyond the top bucket edge
        assert_eq!(h.count(), 3);
        // The top observation is bounded by the recorded max, not the bucket edge.
        assert_eq!(h.quantile(1.0), 1e9);
    }

    #[test]
    fn merge_adds_counts_and_keeps_the_max() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(1e-3);
        b.record(2.0);
        b.record(3e-3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_seconds(), 2.0);
        assert!((a.sum_seconds() - (1e-3 + 2.0 + 3e-3)).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_keys_by_kind_and_displays_percentiles() {
        let mut stats = LatencyStats::default();
        stats.record(QueryKind::TopK, 2e-3);
        stats.record(QueryKind::TopK, 4e-3);
        stats.record(QueryKind::Ppr, 1e-4);
        assert_eq!(stats.histogram(QueryKind::TopK).count(), 2);
        assert_eq!(stats.histogram(QueryKind::Ppr).count(), 1);
        assert_eq!(stats.histogram(QueryKind::Pagerank).count(), 0);
        assert_eq!(stats.count(), 3);
        assert_eq!(stats.overall().count(), 3);
        let rendered = stats.to_string();
        assert!(rendered.contains("topk: 2 served"));
        assert!(rendered.contains("ppr: 1 served"));
        assert!(rendered.contains("p99"));
        assert!(!rendered.contains("pagerank"));
        let empty = LatencyStats::default();
        assert!(empty.to_string().contains("no queries recorded"));
    }

    #[test]
    fn query_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = QUERY_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), QUERY_KINDS.len());
        assert_eq!(QueryKind::TopK.to_string(), "topk");
    }
}
