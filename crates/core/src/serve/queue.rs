//! A bounded MPMC queue — the admission-controlled submission path of the serving
//! front-end.
//!
//! The bound is the point: an unbounded queue turns overload into unbounded memory
//! growth and unbounded tail latency, while a bounded queue surfaces overload at the
//! *submission* edge, where the caller can choose between blocking (backpressure),
//! rejecting (load shedding), or waiting a bounded time. Built on `Mutex` + `Condvar`
//! only — the workspace takes no external concurrency dependencies.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why an admission attempt did not enqueue its item. The item is handed back so the
/// caller can account for it (e.g. mark the queries rejected).
#[derive(Debug)]
pub enum AdmitError<T> {
    /// The queue was at capacity (and stayed there for the allowed wait, if any).
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

// Lock poisoning is recovered rather than propagated: the queue's invariants are a
// `VecDeque` plus a flag, both valid at every wait point, so a panicking peer cannot
// leave the state half-updated. `into_inner` keeps the other workers alive.
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO queue.
///
/// Producers admit items via [`push`](Bounded::push) (block until space),
/// [`try_push`](Bounded::try_push) (fail fast when full) or
/// [`push_timeout`](Bounded::push_timeout) (bounded wait); consumers drain via
/// [`pop`](Bounded::pop), which blocks until an item arrives or the queue is closed
/// *and* empty. [`close`](Bounded::close) wakes everyone.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items at once (`capacity` ≥ 1 is
    /// clamped up from zero).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The capacity the queue admits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there is space, then enqueues. Fails only when the queue is
    /// closed while waiting.
    pub fn push(&self, item: T) -> Result<(), AdmitError<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.closed {
            return Err(AdmitError::Closed(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues if there is space right now; otherwise hands the item straight back.
    pub fn try_push(&self, item: T) -> Result<(), AdmitError<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(AdmitError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(AdmitError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for space, then enqueues; hands the item back as
    /// [`AdmitError::Full`] when the queue stayed at capacity the whole time.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), AdmitError<T>> {
        // lint:allow(timing, the admission timeout is wall-clock by definition)
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.items.len() >= self.capacity && !state.closed {
            let now = std::time::Instant::now(); // lint:allow(timing, admission-timeout bookkeeping only)
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(AdmitError::Full(item));
            };
            let (guard, _timed_out) = self
                .not_full
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if state.closed {
            return Err(AdmitError::Closed(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it; `None` once the queue is
    /// closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending and future pushes fail, consumers drain what is
    /// left and then observe end-of-stream.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = Bounded::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        q.close();
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_rejects_when_full_and_hands_the_item_back() {
        let q = Bounded::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(AdmitError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        q.pop();
        q.try_push("c").unwrap();
    }

    #[test]
    fn push_timeout_gives_up_after_the_deadline() {
        let q = Bounded::new(1);
        q.push(1).unwrap();
        let started = std::time::Instant::now();
        match q.push_timeout(2, Duration::from_millis(20)) {
            Err(AdmitError::Full(item)) => assert_eq!(item, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn close_rejects_producers_and_releases_consumers() {
        let q = Bounded::new(1);
        q.close();
        assert!(matches!(q.push(7), Err(AdmitError::Closed(7))));
        assert!(matches!(q.try_push(7), Err(AdmitError::Closed(7))));
        assert!(matches!(
            q.push_timeout(7, Duration::from_millis(5)),
            Err(AdmitError::Closed(7))
        ));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(AdmitError::Full(2))));
    }

    #[test]
    fn producers_block_until_consumers_drain() {
        let q = Bounded::new(1);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while let Some(_item) = q.pop() {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
            });
            for i in 0..50 {
                q.push(i).unwrap(); // blocks whenever the consumer lags
            }
            q.close();
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn many_producers_many_consumers_conserve_items() {
        let q = Bounded::new(3);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            scope.spawn(|| {
                for producer in 0..4 {
                    for i in 0..25 {
                        q.push(producer * 100 + i).unwrap();
                    }
                }
                q.close();
            });
        });
        assert_eq!(consumed.load(Ordering::SeqCst), 100);
    }
}
