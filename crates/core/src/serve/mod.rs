//! The concurrent serving front-end: a multi-threaded query engine with admission
//! control and latency-percentile telemetry.
//!
//! A [`Session`] answers queries one at a time on the
//! caller's thread. That leaves the throughput of the walk-index serving path on the
//! table: per-query cursors are query-local and the index arena is read-only after
//! build, so the data layer is already concurrency-ready — only the front-end was
//! missing. This module supplies it:
//!
//! * [`ServeHandle`] — obtained from [`Session::serve`](crate::session::Session::serve),
//!   it shares the session's read-only state (graph, partitioned layout, walk-index
//!   arena) across a **fixed worker pool**;
//! * a **bounded submission queue** ([`queue::Bounded`]) between the submitting
//!   thread and the workers: under overload the queue fills up and the configured
//!   [`Admission`] policy decides between backpressure ([`Admission::Block`]),
//!   load shedding ([`Admission::Reject`] → [`QueryOutcome::Rejected`]) and a
//!   bounded wait ([`Admission::Timeout`]) — memory stays bounded either way;
//! * [latency-percentile telemetry](latency) — a fixed-bucket histogram per query
//!   kind feeding p50/p95/p99 into the [`ServeReport`] and the session's cumulative
//!   [`SessionStats`](crate::session::SessionStats).
//!
//! ## Determinism
//!
//! Every submitted query is independently re-seeded from `(session seed, query
//! sequence id)` via [`seed_for`] before it reaches the queue, and all remaining
//! per-query state is query-local. The responses are therefore **bit-identical for
//! every worker count** — only completion order varies — and equal to the serial
//! reference path ([`ServeHandle::serve_serial`]) on the same stream.
//!
//! ```
//! use frogwild::serve::ServeConfig;
//! use frogwild::session::{PprMethod, Query, Session};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = frogwild_graph::generators::livejournal_like(1_000, &mut rng);
//! let mut session = Session::builder(&graph).machines(4).seed(9).build()?;
//!
//! let queries: Vec<Query> = (0..8)
//!     .map(|source| Query::Ppr {
//!         source,
//!         k: 10,
//!         teleport_probability: 0.15,
//!         method: PprMethod::ForwardPush { epsilon: 1e-5 },
//!     })
//!     .collect();
//!
//! let report = session
//!     .serve_with(ServeConfig { workers: 2, ..ServeConfig::default() })?
//!     .serve(&queries);
//! assert_eq!(report.served, 8);
//! assert_eq!(report.rejected, 0);
//! assert!(report.latency.histogram(frogwild::serve::QueryKind::Ppr).count() == 8);
//! # Ok::<(), frogwild::Error>(())
//! ```

pub mod latency;
mod pool;
pub mod queue;

use std::time::Duration;

use crate::error::{Error, Result};
use crate::session::{PprMethod, Query, Response, Session};

pub use latency::{LatencyHistogram, LatencyStats, QueryKind, LATENCY_BUCKETS, QUERY_KINDS};

/// What the admission controller does when the bounded submission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitter until a worker frees queue space — backpressure; nothing
    /// is ever rejected.
    Block,
    /// Turn the batch away immediately — load shedding; the affected queries come
    /// back as [`QueryOutcome::Rejected`].
    Reject,
    /// Wait up to the given duration for space, then reject.
    Timeout(Duration),
}

/// Configuration of the serving front-end: pool size, queue bound, batch size and
/// the overload policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Worker threads in the fixed pool (`0` = the host's available parallelism).
    pub workers: usize,
    /// Capacity of the bounded submission queue, in batches. This is the total
    /// buffering between submitter and workers — the memory bound under overload.
    pub queue_depth: usize,
    /// Queries per batch: workers pull whole batches, amortizing queue
    /// synchronization across `batch` queries (the PR 6 key-range idiom).
    pub batch: usize,
    /// What happens when the queue is full at submission time.
    pub admission: Admission,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            batch: 4,
            admission: Admission::Block,
        }
    }
}

impl ServeConfig {
    /// A config with an explicit worker count and the other knobs at their defaults.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    /// Validates the configuration as a typed [`Error::InvalidConfig`].
    pub fn validate(&self) -> Result<()> {
        if self.queue_depth == 0 {
            return Err(Error::config(
                "ServeConfig",
                "queue_depth must be at least 1",
            ));
        }
        if self.batch == 0 {
            return Err(Error::config("ServeConfig", "batch must be at least 1"));
        }
        if let Admission::Timeout(limit) = self.admission {
            if limit.is_zero() {
                return Err(Error::config(
                    "ServeConfig",
                    "admission timeout must be positive (use Admission::Reject for zero wait)",
                ));
            }
        }
        Ok(())
    }

    /// The worker count actually used: `workers`, or the host's available
    /// parallelism when it is `0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// The fate of one submitted query.
///
/// The enum is `#[non_exhaustive]`: future outcomes (e.g. a deadline-expired
/// variant) may be added without a breaking change, so foreign matches need a
/// wildcard arm. Prefer [`QueryOutcome::response`] / [`QueryOutcome::is_rejected`]
/// over exhaustive matching.
#[derive(Debug)]
#[non_exhaustive]
pub enum QueryOutcome {
    /// Answered; the deterministic [`Response`] (boxed — responses are large
    /// relative to the other variants).
    Served(Box<Response>),
    /// Turned away by admission control before reaching a worker.
    Rejected,
    /// Reached a worker but failed validation or execution.
    Failed(Error),
}

impl QueryOutcome {
    /// The response, when the query was served.
    pub fn response(&self) -> Option<&Response> {
        match self {
            QueryOutcome::Served(response) => Some(response),
            _ => None,
        }
    }

    /// `true` for [`QueryOutcome::Rejected`].
    pub fn is_rejected(&self) -> bool {
        matches!(self, QueryOutcome::Rejected)
    }
}

impl From<Response> for QueryOutcome {
    /// A served outcome; the canonical way to build one outside this module.
    fn from(response: Response) -> Self {
        QueryOutcome::Served(Box::new(response))
    }
}

/// Per-worker counters for one served stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Index of the worker in the pool (`0` for the serial path).
    pub worker: usize,
    /// Queries this worker answered.
    pub served: u64,
    /// Queries this worker saw fail.
    pub failed: u64,
    /// Batches this worker pulled off the queue.
    pub batches: u64,
    /// Seconds this worker spent executing queries.
    pub busy_seconds: f64,
    /// Seconds the queries this worker executed had waited between submission and
    /// the start of their execution (summed per query, so in-batch serialization
    /// behind earlier queries counts as queue wait too).
    pub queue_wait_seconds: f64,
}

/// Everything one [`ServeHandle::serve`] call produced: per-query outcomes in
/// submission order, aggregate counts, wall-clock and latency telemetry, and the
/// per-worker counters.
#[derive(Debug)]
pub struct ServeReport {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Queries answered.
    pub served: u64,
    /// Queries turned away by admission control.
    pub rejected: u64,
    /// Queries that reached a worker and failed.
    pub failed: u64,
    /// Real elapsed seconds from first submission to last completion. Under
    /// concurrency this is **less** than [`query_seconds`](ServeReport::query_seconds)
    /// whenever the pool overlaps work — the two are recorded separately on purpose.
    pub wall_seconds: f64,
    /// Sum of the served queries' individual service times (their
    /// `QueryCost::host_seconds`).
    pub query_seconds: f64,
    /// Latency histograms (service time) per query kind, with p50/p95/p99.
    pub latency: LatencyStats,
    /// Queue-wait histograms per query kind: how long each served query sat
    /// between submission and the start of its execution. Together with
    /// [`latency`](ServeReport::latency) this splits end-to-end sojourn time into
    /// its wait and service components; always zero on the serial path (no queue).
    pub queue_wait: LatencyStats,
    /// Per-worker counters, one entry per pool worker.
    pub workers: Vec<WorkerStats>,
}

impl ServeReport {
    /// Sustained throughput of the stream: served queries per wall-clock second.
    pub fn qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.served as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The served responses in submission order (rejected/failed slots skipped).
    pub fn responses(&self) -> impl Iterator<Item = &Response> {
        self.outcomes.iter().filter_map(|o| o.response())
    }
}

impl std::fmt::Display for ServeReport {
    /// A compact serving summary: counts, throughput, and overall percentiles of
    /// both components of sojourn time — queue wait and service.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let service = self.latency.overall();
        let wait = self.queue_wait.overall();
        write!(
            f,
            "served {} / rejected {} / failed {} in {:.3}s ({:.1} qps, {} workers); \
             service p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms; \
             queue wait p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms",
            self.served,
            self.rejected,
            self.failed,
            self.wall_seconds,
            self.qps(),
            self.workers.len(),
            service.p50() * 1e3,
            service.p95() * 1e3,
            service.p99() * 1e3,
            wait.p50() * 1e3,
            wait.p95() * 1e3,
            wait.p99() * 1e3,
        )
    }
}

/// Derives the seed for the query with sequence id `seq` in a session seeded with
/// `session_seed` — the serving front-end's determinism root. Exposed so the serial
/// reference path of a test or benchmark can reproduce the pool's seeding exactly.
pub fn seed_for(session_seed: u64, seq: u64) -> u64 {
    frogwild_engine::rng::mix(&[session_seed, seq, 0x5E4E_F207])
}

/// Returns `query` with its randomness re-rooted at `seed`.
///
/// Only the fields that seed randomness change: deterministic methods (forward push,
/// power iteration) pass through untouched, so a re-seeded deterministic query still
/// equals the original.
pub fn reseeded(query: &Query, seed: u64) -> Query {
    let mut query = query.clone();
    match &mut query {
        Query::TopK { config, .. } => config.seed = seed,
        Query::Pagerank { config, .. } => config.seed = seed,
        Query::Ppr { method, .. } => {
            if let PprMethod::MonteCarlo { seed: s, .. } = method {
                *s = seed;
            }
        }
        Query::AutotunedTopK { config } => config.seed = seed,
    }
    query
}

/// A multi-threaded serving front-end over one [`Session`].
///
/// Obtained via [`Session::serve`] (the builder-configured [`ServeConfig`]) or
/// [`Session::serve_with`] (an explicit one). The handle holds the session
/// exclusively; each [`serve`](ServeHandle::serve) call runs one fixed worker pool
/// over the submitted stream, folds the served costs into the session's cumulative
/// [`SessionStats`](crate::session::SessionStats) (including the latency
/// histograms), and returns the stream's [`ServeReport`].
///
/// Sequence ids — and with them the per-query seeds — continue across calls on the
/// same handle, so a stream split over several `serve` calls answers exactly like
/// the same stream served in one call.
#[derive(Debug)]
pub struct ServeHandle<'s, 'g> {
    session: &'s mut Session<'g>,
    config: ServeConfig,
    next_seq: u64,
}

impl<'s, 'g> ServeHandle<'s, 'g> {
    pub(crate) fn new(session: &'s mut Session<'g>, config: ServeConfig) -> Self {
        ServeHandle {
            session,
            config,
            next_seq: 0,
        }
    }

    /// The serving configuration this handle runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The session being served.
    pub fn session(&self) -> &Session<'g> {
        self.session
    }

    /// Serves `queries` through the worker pool and returns every outcome in
    /// submission order.
    pub fn serve(&mut self, queries: &[Query]) -> ServeReport {
        let start_seq = self.advance(queries.len());
        let report = pool::run_stream(self.session, &self.config, start_seq, queries);
        self.session.absorb_serve(&report);
        report
    }

    /// Serves `queries` serially on the calling thread under the same sequence-id
    /// seeding — the reference path pool results are bit-identical to.
    pub fn serve_serial(&mut self, queries: &[Query]) -> ServeReport {
        let start_seq = self.advance(queries.len());
        let report = pool::run_serial(self.session, start_seq, queries);
        self.session.absorb_serve(&report);
        report
    }

    fn advance(&mut self, count: usize) -> u64 {
        let start = self.next_seq;
        self.next_seq = self.next_seq.saturating_add(count as u64);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrogWildConfig;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize) -> frogwild_graph::DiGraph {
        let mut rng = SmallRng::seed_from_u64(77);
        rmat(n, RmatParams::default(), &mut rng)
    }

    fn mixed_stream(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Query::TopK {
                        k: 10,
                        config: FrogWildConfig {
                            num_walkers: 4_000,
                            iterations: 3,
                            sync_probability: 0.7,
                            ..FrogWildConfig::default()
                        },
                    }
                } else {
                    Query::Ppr {
                        source: (i % 50) as u32,
                        k: 10,
                        teleport_probability: 0.15,
                        method: PprMethod::MonteCarlo {
                            walkers: 2_000,
                            max_steps: 32,
                            seed: 1,
                        },
                    }
                }
            })
            .collect()
    }

    #[test]
    fn serve_config_validation() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            batch: 0,
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            admission: Admission::Timeout(Duration::ZERO),
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig::with_workers(3).validate().is_ok());
        assert_eq!(ServeConfig::with_workers(3).workers, 3);
        assert_eq!(ServeConfig::with_workers(3).effective_workers(), 3);
        assert!(ServeConfig::with_workers(0).effective_workers() >= 1);
    }

    #[test]
    fn reseeding_touches_only_randomness_fields() {
        let q = Query::TopK {
            k: 7,
            config: FrogWildConfig::default(),
        };
        let r = reseeded(&q, 99);
        match (&q, &r) {
            (Query::TopK { k: k0, config: c0 }, Query::TopK { k: k1, config: c1 }) => {
                assert_eq!(k0, k1);
                assert_eq!(c1.seed, 99);
                assert_eq!(c0.num_walkers, c1.num_walkers);
            }
            _ => unreachable!(),
        }
        // Deterministic PPR methods pass through unchanged.
        let push = Query::Ppr {
            source: 3,
            k: 5,
            teleport_probability: 0.15,
            method: PprMethod::ForwardPush { epsilon: 1e-5 },
        };
        assert_eq!(reseeded(&push, 123), push);
        // Seeds are distinct per sequence id.
        assert_ne!(seed_for(1, 0), seed_for(1, 1));
        assert_ne!(seed_for(1, 0), seed_for(2, 0));
    }

    #[test]
    fn pool_and_serial_paths_answer_bit_identically() {
        let g = test_graph(250);
        let queries = mixed_stream(8);

        let mut serial_session = Session::builder(&g).machines(4).seed(5).build().unwrap();
        let serial = serial_session
            .serve_with(ServeConfig::with_workers(1))
            .unwrap()
            .serve_serial(&queries);

        let mut pool_session = Session::builder(&g).machines(4).seed(5).build().unwrap();
        let pooled = pool_session
            .serve_with(ServeConfig {
                workers: 3,
                batch: 2,
                ..ServeConfig::default()
            })
            .unwrap()
            .serve(&queries);

        assert_eq!(serial.served, 8);
        assert_eq!(pooled.served, 8);
        assert_eq!(pooled.rejected, 0);
        for (a, b) in serial.responses().zip(pooled.responses()) {
            assert_eq!(a, b);
        }
        // Both sessions saw the same stream and accumulated the same totals.
        assert_eq!(
            serial_session.stats().total_walk_hops,
            pool_session.stats().total_walk_hops
        );
        assert_eq!(pool_session.stats().queries_served, 8);
        assert_eq!(pool_session.stats().latency.count(), 8);
    }

    #[test]
    fn sequence_ids_continue_across_serve_calls() {
        let g = test_graph(200);
        let queries = mixed_stream(6);

        let mut one_call = Session::builder(&g).machines(2).seed(8).build().unwrap();
        let whole = one_call
            .serve_with(ServeConfig::with_workers(2))
            .unwrap()
            .serve(&queries);

        let mut two_calls = Session::builder(&g).machines(2).seed(8).build().unwrap();
        let mut handle = two_calls.serve_with(ServeConfig::with_workers(2)).unwrap();
        let first = handle.serve(&queries[..3]);
        let second = handle.serve(&queries[3..]);

        let split: Vec<&Response> = first.responses().chain(second.responses()).collect();
        for (a, b) in whole.responses().zip(split) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejection_surfaces_in_order_and_in_counts() {
        let g = test_graph(200);
        let queries = mixed_stream(12);
        let mut session = Session::builder(&g).machines(2).seed(4).build().unwrap();
        let report = session
            .serve_with(ServeConfig {
                workers: 1,
                queue_depth: 1,
                batch: 1,
                admission: Admission::Reject,
            })
            .unwrap()
            .serve(&queries);
        assert_eq!(report.outcomes.len(), 12);
        assert_eq!(report.served + report.rejected + report.failed, 12);
        assert_eq!(
            report.outcomes.iter().filter(|o| o.is_rejected()).count() as u64,
            report.rejected
        );
        assert_eq!(session.stats().queries_rejected, report.rejected);
        assert_eq!(session.stats().queries_served, report.served);
        let rendered = report.to_string();
        assert!(rendered.contains("qps"));
        assert!(rendered.contains("p99"));
    }
}
