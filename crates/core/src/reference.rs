//! Serial reference implementations used as ground truth.
//!
//! * [`exact_pagerank`] — dense power iteration on the PageRank matrix `Q` of
//!   Definition 1, run to a tight tolerance. This is the π every accuracy metric in the
//!   experiments compares against.
//! * [`serial_random_walk_pagerank`] — Process 15 of the paper: independent walkers with
//!   truncated-geometric lifespans simulated on one machine with no engine effects.
//!   Used in tests to separate "Monte-Carlo error" from "partial-synchronization error".

// lint:allow-file(indexing, dense per-vertex tables sized from the graph being scored)

use frogwild_graph::{DiGraph, VertexId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist;

/// Result of a serial PageRank computation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PageRankResult {
    /// PageRank score of every vertex; sums to 1.
    pub scores: Vec<f64>,
    /// Number of power-iteration steps performed.
    pub iterations: usize,
    /// Final l1 change between consecutive iterates.
    pub residual: f64,
}

/// Exact PageRank by power iteration.
///
/// Computes the principal eigenvector of `Q = (1 - p_T) P + (p_T / n) 11ᵀ` where
/// `P_ij = A_ij / d_out(j)`. Vertices with out-degree zero ("dangling") have their mass
/// redistributed uniformly, the standard correction (the workspace's graph builders
/// normally eliminate them with self-loops, so this is a safety net for `Keep` graphs).
///
/// Iteration stops when the l1 change drops below `tolerance` or after
/// `max_iterations`, whichever comes first.
pub fn exact_pagerank(
    graph: &DiGraph,
    teleport_probability: f64,
    max_iterations: usize,
    tolerance: f64,
) -> PageRankResult {
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    let n = graph.num_vertices();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            residual: 0.0,
        };
    }
    let uniform = 1.0 / n as f64;
    let mut current = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    for _ in 0..max_iterations {
        iterations += 1;
        // Teleport component plus dangling-mass redistribution.
        let dangling_mass: f64 = graph
            .vertices()
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| current[v as usize])
            .sum();
        let base =
            teleport_probability * uniform + (1.0 - teleport_probability) * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        // Push each vertex's mass along its out-edges.
        for v in graph.vertices() {
            let deg = graph.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = (1.0 - teleport_probability) * current[v as usize] / deg as f64;
            for &dst in graph.out_neighbors(v) {
                next[dst as usize] += share;
            }
        }
        residual = current
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut current, &mut next);
        if residual < tolerance {
            break;
        }
    }

    PageRankResult {
        scores: current,
        iterations,
        residual,
    }
}

/// Serial Monte-Carlo PageRank (the paper's Process 15): `num_walkers` independent
/// walkers start at uniformly random vertices and take a `Geometric(p_T)` number of
/// steps, truncated at `max_steps`; the empirical distribution of their final positions
/// estimates π.
///
/// Walkers stranded on a dangling vertex stay put for the remainder of their lifespan
/// (equivalent to the self-loop fix the builders apply).
pub fn serial_random_walk_pagerank<R: Rng + ?Sized>(
    graph: &DiGraph,
    num_walkers: u64,
    max_steps: usize,
    teleport_probability: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        teleport_probability > 0.0 && teleport_probability <= 1.0,
        "teleport probability must be in (0, 1]"
    );
    let n = graph.num_vertices();
    let mut counts = vec![0u64; n];
    if n == 0 || num_walkers == 0 {
        return vec![0.0; n];
    }
    for _ in 0..num_walkers {
        let mut position = rng.gen_range(0..n) as VertexId;
        let lifespan = dist::geometric(teleport_probability, rng).min(max_steps as u64);
        for _ in 0..lifespan {
            let neighbors = graph.out_neighbors(position);
            if neighbors.is_empty() {
                break;
            }
            position = neighbors[rng.gen_range(0..neighbors.len())];
        }
        counts[position as usize] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / num_walkers as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{l1_distance, mass_captured};
    use frogwild_graph::generators::simple::{complete, cycle, star};
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pagerank_sums_to_one() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = rmat(500, RmatParams::default(), &mut rng);
        let pr = exact_pagerank(&g, 0.15, 100, 1e-12);
        let total: f64 = pr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(pr.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn pagerank_of_complete_graph_is_uniform() {
        let g = complete(10);
        let pr = exact_pagerank(&g, 0.15, 100, 1e-14);
        for &s in &pr.scores {
            assert!((s - 0.1).abs() < 1e-10, "score {s}");
        }
    }

    #[test]
    fn pagerank_of_cycle_is_uniform() {
        let g = cycle(8);
        let pr = exact_pagerank(&g, 0.15, 200, 1e-14);
        for &s in &pr.scores {
            assert!((s - 0.125).abs() < 1e-10);
        }
    }

    #[test]
    fn star_hub_dominates() {
        let g = star(50);
        let pr = exact_pagerank(&g, 0.15, 200, 1e-14);
        let hub = pr.scores[0];
        for &s in &pr.scores[1..] {
            assert!(hub > 5.0 * s, "hub {hub} vs leaf {s}");
        }
    }

    #[test]
    fn pagerank_satisfies_fixed_point() {
        // π = Qπ: recompute one explicit matrix-vector product and compare.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = rmat(200, RmatParams::default(), &mut rng);
        let pt = 0.15;
        let pr = exact_pagerank(&g, pt, 300, 1e-14);
        let n = g.num_vertices();
        let mut applied = vec![pt / n as f64; n];
        for v in g.vertices() {
            let deg = g.out_degree(v);
            let share = (1.0 - pt) * pr.scores[v as usize] / deg as f64;
            for &dst in g.out_neighbors(v) {
                applied[dst as usize] += share;
            }
        }
        assert!(l1_distance(&pr.scores, &applied) < 1e-8);
    }

    #[test]
    fn dangling_vertices_handled() {
        // vertex 2 has no out-edges; mass must still sum to 1
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let pr = exact_pagerank(&g, 0.15, 200, 1e-14);
        let total: f64 = pr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // the sink accumulates the most mass
        assert!(pr.scores[2] > pr.scores[0]);
    }

    #[test]
    fn truncated_iterations_respected() {
        let g = star(100);
        let pr = exact_pagerank(&g, 0.15, 2, 0.0);
        assert_eq!(pr.iterations, 2);
        assert!(pr.residual > 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(0);
        let pr = exact_pagerank(&g, 0.15, 10, 1e-9);
        assert!(pr.scores.is_empty());
    }

    #[test]
    fn monte_carlo_estimate_is_a_distribution() {
        let g = star(30);
        let mut rng = SmallRng::seed_from_u64(7);
        let est = serial_random_walk_pagerank(&g, 10_000, 20, 0.15, &mut rng);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_identifies_heavy_vertices() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = rmat(400, RmatParams::default(), &mut rng);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let est = serial_random_walk_pagerank(&g, 80_000, 12, 0.15, &mut rng);
        let m = mass_captured(&est, &exact.scores, 20);
        assert!(
            m.normalized() > 0.85,
            "captured only {} of optimal mass",
            m.normalized()
        );
    }

    #[test]
    fn monte_carlo_zero_walkers_gives_zero_vector() {
        let g = star(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = serial_random_walk_pagerank(&g, 0, 5, 0.15, &mut rng);
        assert_eq!(est, vec![0.0; 5]);
    }
}
