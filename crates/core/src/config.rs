//! Experiment configuration types.

use frogwild_engine::SyncPolicy;
use serde::{Deserialize, Serialize};

use crate::error::Error;

/// `true` when `p` lies in the open interval `(0, 1)`.
pub(crate) fn in_open_unit_interval(p: f64) -> bool {
    p > 0.0 && p < 1.0
}

/// `true` when `p` lies in the half-open interval `(0, 1]`.
pub(crate) fn in_half_open_unit_interval(p: f64) -> bool {
    p > 0.0 && p <= 1.0
}

/// The teleportation probability the paper (and the original PageRank paper) uses.
pub const DEFAULT_TELEPORT: f64 = 0.15;

/// Configuration of a FrogWild run.
///
/// The defaults reproduce the paper's headline setting: 800 000 initial walkers, four
/// iterations, `p_T = 0.15`. `sync_probability` is the paper's `p_s` ∈ {1, 0.7, 0.4, 0.1}
/// sweep parameter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrogWildConfig {
    /// Number of initial random walkers (`N` in the paper). The paper uses 800K for
    /// both the Twitter and LiveJournal graphs.
    pub num_walkers: u64,
    /// Number of engine supersteps the walkers are allowed (`t` in the paper, called
    /// "iterations" in the evaluation; 3–5 in the experiments, 4 by default).
    pub iterations: usize,
    /// Teleportation probability `p_T`; each walker dies with this probability at every
    /// step, reproducing the uniform jump of the PageRank chain.
    pub teleport_probability: f64,
    /// Mirror synchronization probability `p_s` (1.0 = unmodified engine).
    pub sync_probability: f64,
    /// Use the binomial per-edge scatter described in the paper's vertex program
    /// (`x ~ Bin(K(i), 1/(d_out(i) p_s))`). When `false` (the default, matching the
    /// paper's actual implementation) the surviving walkers are split deterministically
    /// across the participating replicas and spread uniformly over their local
    /// out-edges.
    pub binomial_scatter: bool,
    /// Seed for walker placement and all engine randomness.
    pub seed: u64,
    /// Serve the engine's work batches from a multi-threaded worker pool.
    pub parallel: bool,
    /// Delta-gating threshold: a vertex whose live-walker count after apply is at or
    /// below this value skips synchronization and scatter and drops out of the
    /// frontier (its walkers park in place and still count toward the estimator).
    /// `0.0` (the default) disables gating and reproduces the ungated engine
    /// bit-for-bit.
    pub tolerance: f64,
}

impl Default for FrogWildConfig {
    fn default() -> Self {
        FrogWildConfig {
            num_walkers: 800_000,
            iterations: 4,
            teleport_probability: DEFAULT_TELEPORT,
            sync_probability: 1.0,
            binomial_scatter: false,
            seed: 0xF209,
            parallel: false,
            tolerance: 0.0,
        }
    }
}

impl FrogWildConfig {
    /// The [`SyncPolicy`] this configuration implies (the paper's implementation uses
    /// the at-least-one-out-edge erasure model).
    pub fn sync_policy(&self) -> SyncPolicy {
        SyncPolicy::frogwild(self.sync_probability)
    }

    /// Validates the configuration, returning the first problem found as a typed
    /// [`Error::InvalidConfig`].
    pub fn validate(&self) -> Result<(), Error> {
        if self.num_walkers == 0 {
            return Err(Error::config(
                "FrogWildConfig",
                "num_walkers must be positive",
            ));
        }
        if self.iterations == 0 {
            return Err(Error::config(
                "FrogWildConfig",
                "iterations must be positive",
            ));
        }
        if !in_open_unit_interval(self.teleport_probability) {
            return Err(Error::config(
                "FrogWildConfig",
                format!(
                    "teleport_probability must be in (0, 1), got {}",
                    self.teleport_probability
                ),
            ));
        }
        if !in_half_open_unit_interval(self.sync_probability) {
            return Err(Error::config(
                "FrogWildConfig",
                format!(
                    "sync_probability must be in (0, 1], got {}",
                    self.sync_probability
                ),
            ));
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(Error::config(
                "FrogWildConfig",
                format!(
                    "tolerance must be finite and non-negative, got {}",
                    self.tolerance
                ),
            ));
        }
        Ok(())
    }
}

/// Worker-pool scheduling knobs for the delta-gated executor, threaded through the
/// drivers and [`SessionBuilder`](crate::session::SessionBuilder) into
/// [`EngineConfig`](frogwild_engine::EngineConfig). The defaults (`0`, `0`) let the
/// engine size everything automatically; none of the values change results, only how
/// the work is spread over host threads.
///
/// Superseded by [`ExecutionConfig`], which carries the same two knobs plus the
/// execution-semantics knobs (`tolerance`, `staleness`) behind one builder; every
/// `Scheduling` converts losslessly via `ExecutionConfig::from`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheduling {
    /// Worker threads serving phase work batches when parallel execution is on
    /// (`0` = derive from the host's available parallelism).
    pub workers: usize,
    /// Tasks per work batch — one contiguous key range of one simulated machine's
    /// task list (`0` = built-in default).
    pub batch_size: usize,
}

impl Scheduling {
    /// Scheduling with an explicit worker count and the default batch size.
    pub fn with_workers(workers: usize) -> Self {
        Scheduling {
            workers,
            batch_size: 0,
        }
    }
}

/// Unified execution configuration for the engine: worker-pool scheduling
/// (`workers`, `batch_size`), the executor's delta-gating `tolerance` override, and
/// the bounded-`staleness` asynchrony knob — one builder threaded through
/// [`SessionBuilder::execution`](crate::session::SessionBuilder::execution) and the
/// `*_with` drivers ([`run_frogwild_with`](crate::driver::run_frogwild_with),
/// [`run_graphlab_pr_with`](crate::driver::run_graphlab_pr_with)).
///
/// # Determinism contract
///
/// `workers` and `batch_size` never change results — only how the work spreads over
/// host threads. `staleness` *does* change results (messages arrive late), but
/// deterministically: for a fixed staleness bound the output is bit-identical across
/// every worker count and batch size, and `staleness = 0` (the default) reproduces
/// the synchronous executor bit-for-bit. `tolerance` overrides the algorithm
/// config's delta-gating threshold when set; leaving it unset (`None`) defers to
/// [`FrogWildConfig::tolerance`] / [`PageRankConfig::tolerance`].
///
/// # Migrating from [`Scheduling`]
///
/// `Scheduling { workers, batch_size }` maps to
/// `ExecutionConfig::new().workers(workers).batch_size(batch_size)`; a plain
/// `ExecutionConfig::from(scheduling)` performs the same conversion. Code that used
/// `SessionBuilder::scheduling(s)` should move to
/// `SessionBuilder::execution(ExecutionConfig::from(s))` — the deprecated wrapper
/// remains for one release.
///
/// ```
/// use frogwild::config::ExecutionConfig;
///
/// let exec = ExecutionConfig::new().workers(4).batch_size(256).staleness(1);
/// assert_eq!(exec.workers, 4);
/// assert_eq!(exec.staleness, 1);
/// assert!(exec.validate().is_ok());
/// ```
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Worker threads serving phase work batches when parallel execution is on
    /// (`0` = derive from the host's available parallelism).
    pub workers: usize,
    /// Tasks per work batch — one contiguous key range of one simulated machine's
    /// task list (`0` = built-in default).
    pub batch_size: usize,
    /// Session-level override of the executor's delta-gating threshold. `None` (the
    /// default) defers to the per-algorithm config's tolerance.
    pub tolerance: Option<f64>,
    /// Bounded staleness for inter-machine messages, in supersteps. `0` (the
    /// default) is fully synchronous BSP; `s > 0` lets machines overlap supersteps
    /// up to `s` deep with deterministically delayed message delivery. See
    /// [`EngineConfig::staleness`](frogwild_engine::EngineConfig::staleness).
    pub staleness: usize,
}

impl ExecutionConfig {
    /// The default configuration: auto-sized workers and batches, no tolerance
    /// override, synchronous execution.
    pub fn new() -> Self {
        ExecutionConfig::default()
    }

    /// Sets the worker-pool size (`0` = derive from the host).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the work-batch size (`0` = built-in default).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the executor's delta-gating tolerance for every query run under
    /// this configuration.
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = Some(tolerance);
        self
    }

    /// Sets the bounded-staleness asynchrony level, in supersteps.
    #[must_use]
    pub fn staleness(mut self, staleness: usize) -> Self {
        self.staleness = staleness;
        self
    }

    /// The delta-gating tolerance to hand the engine, given the algorithm config's
    /// own `default` threshold.
    pub fn effective_tolerance(&self, default: f64) -> f64 {
        self.tolerance.unwrap_or(default)
    }

    /// Validates the configuration, returning the first problem found as a typed
    /// [`Error::InvalidConfig`].
    pub fn validate(&self) -> Result<(), Error> {
        if let Some(t) = self.tolerance {
            if !t.is_finite() || t < 0.0 {
                return Err(Error::config(
                    "ExecutionConfig",
                    format!("tolerance must be finite and non-negative, got {t}"),
                ));
            }
        }
        Ok(())
    }
}

impl From<Scheduling> for ExecutionConfig {
    fn from(scheduling: Scheduling) -> Self {
        ExecutionConfig::new()
            .workers(scheduling.workers)
            .batch_size(scheduling.batch_size)
    }
}

/// Configuration of the baseline GraphLab-style PageRank run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PageRankConfig {
    /// Maximum number of iterations. The paper compares against "exact" (run to
    /// convergence), 2-iteration and 1-iteration variants.
    pub max_iterations: usize,
    /// Per-vertex convergence tolerance: a vertex stops signalling its neighbours once
    /// its rank changes by less than this amount (GraphLab's `TOLERANCE` option).
    pub tolerance: f64,
    /// Teleportation probability `p_T` (0.15 everywhere in the paper).
    pub teleport_probability: f64,
    /// Seed for engine randomness (partitioning-related only; PageRank itself is
    /// deterministic).
    pub seed: u64,
    /// Run the per-machine engine phases on one thread per simulated machine.
    pub parallel: bool,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            max_iterations: 100,
            tolerance: 1e-3,
            teleport_probability: DEFAULT_TELEPORT,
            seed: 0xF209,
            parallel: false,
        }
    }
}

impl PageRankConfig {
    /// The "exact" configuration used as the paper's accuracy reference: run until
    /// every vertex's rank is stable to within a tight tolerance.
    pub fn exact() -> Self {
        PageRankConfig {
            max_iterations: 100,
            tolerance: 1e-9,
            ..PageRankConfig::default()
        }
    }

    /// The truncated variant the paper uses as its fast baseline (`iterations` is 1 or
    /// 2 in the figures).
    pub fn truncated(iterations: usize) -> Self {
        PageRankConfig {
            max_iterations: iterations,
            tolerance: 0.0,
            ..PageRankConfig::default()
        }
    }

    /// Validates the configuration, returning the first problem found as a typed
    /// [`Error::InvalidConfig`].
    pub fn validate(&self) -> Result<(), Error> {
        if self.max_iterations == 0 {
            return Err(Error::config(
                "PageRankConfig",
                "max_iterations must be positive",
            ));
        }
        if !in_open_unit_interval(self.teleport_probability) {
            return Err(Error::config(
                "PageRankConfig",
                format!(
                    "teleport_probability must be in (0, 1), got {}",
                    self.teleport_probability
                ),
            ));
        }
        if self.tolerance < 0.0 {
            return Err(Error::config(
                "PageRankConfig",
                "tolerance must be non-negative",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frogwild_engine::SyncPolicy;

    #[test]
    fn defaults_match_paper_headline_setting() {
        let c = FrogWildConfig::default();
        assert_eq!(c.num_walkers, 800_000);
        assert_eq!(c.iterations, 4);
        assert_eq!(c.teleport_probability, 0.15);
        assert_eq!(c.sync_probability, 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sync_policy_mapping() {
        let full = FrogWildConfig::default();
        assert_eq!(full.sync_policy(), SyncPolicy::Full);
        let partial = FrogWildConfig {
            sync_probability: 0.4,
            ..FrogWildConfig::default()
        };
        assert_eq!(
            partial.sync_policy(),
            SyncPolicy::AtLeastOneOutEdge { ps: 0.4 }
        );
    }

    #[test]
    fn frogwild_validation_rejects_bad_values() {
        let mut c = FrogWildConfig {
            num_walkers: 0,
            ..FrogWildConfig::default()
        };
        assert!(c.validate().is_err());
        c.num_walkers = 1;
        c.iterations = 0;
        assert!(c.validate().is_err());
        c.iterations = 1;
        c.teleport_probability = 0.0;
        assert!(c.validate().is_err());
        c.teleport_probability = 1.0;
        assert!(c.validate().is_err());
        c.teleport_probability = 0.15;
        c.sync_probability = 0.0;
        assert!(c.validate().is_err());
        c.sync_probability = 1.1;
        assert!(c.validate().is_err());
        c.sync_probability = 0.7;
        c.tolerance = -1.0;
        assert!(c.validate().is_err());
        c.tolerance = f64::NAN;
        assert!(c.validate().is_err());
        c.tolerance = 2.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scheduling_defaults_to_auto() {
        let s = Scheduling::default();
        assert_eq!(s.workers, 0);
        assert_eq!(s.batch_size, 0);
        assert_eq!(Scheduling::with_workers(4).workers, 4);
        assert_eq!(Scheduling::with_workers(4).batch_size, 0);
    }

    #[test]
    fn execution_config_builder_and_conversion() {
        let exec = ExecutionConfig::new()
            .workers(3)
            .batch_size(128)
            .tolerance(1e-3)
            .staleness(2);
        assert_eq!(exec.workers, 3);
        assert_eq!(exec.batch_size, 128);
        assert_eq!(exec.tolerance, Some(1e-3));
        assert_eq!(exec.staleness, 2);
        assert!(exec.validate().is_ok());
        assert_eq!(exec.effective_tolerance(0.5), 1e-3);
        assert_eq!(ExecutionConfig::new().effective_tolerance(0.5), 0.5);

        let from = ExecutionConfig::from(Scheduling {
            workers: 7,
            batch_size: 19,
        });
        assert_eq!(from.workers, 7);
        assert_eq!(from.batch_size, 19);
        assert_eq!(from.tolerance, None);
        assert_eq!(from.staleness, 0);

        assert!(ExecutionConfig::new().tolerance(-1.0).validate().is_err());
        assert!(ExecutionConfig::new()
            .tolerance(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn pagerank_presets() {
        let exact = PageRankConfig::exact();
        assert!(exact.tolerance < 1e-6);
        assert!(exact.validate().is_ok());
        let two = PageRankConfig::truncated(2);
        assert_eq!(two.max_iterations, 2);
        assert_eq!(two.tolerance, 0.0);
        assert!(two.validate().is_ok());
    }

    #[test]
    fn pagerank_validation() {
        let mut c = PageRankConfig::default();
        assert!(c.validate().is_ok());
        c.max_iterations = 0;
        assert!(c.validate().is_err());
        c.max_iterations = 5;
        c.tolerance = -1.0;
        assert!(c.validate().is_err());
        c.tolerance = 0.0;
        c.teleport_probability = 1.5;
        assert!(c.validate().is_err());
    }
}
