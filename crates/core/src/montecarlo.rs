//! Monte-Carlo PageRank baselines from the prior-work the paper compares against.
//!
//! Section 2.4 discusses Avrachenkov et al., *"Monte Carlo methods in PageRank
//! computation: When one iteration is sufficient"* (SIAM J. Numer. Anal. 2007), which
//! proposes two estimators the FrogWild estimator should be read against:
//!
//! * **End-point sampling** — count only each walker's final position. This is what
//!   FrogWild computes (and what [`crate::reference::serial_random_walk_pagerank`]
//!   implements serially).
//! * **Complete-path sampling** — credit *every* vertex a walker visits, weighted by the
//!   teleport probability. Each visit is an unbiased sample of the numerator of π, so
//!   the estimator extracts roughly `1/p_T ≈ 6.7` samples per walker instead of one,
//!   at the cost of having to observe the whole trajectory (which is exactly what the
//!   distributed engine cannot do cheaply — the visits happen on different machines).
//!
//! The module provides the complete-path estimator with both starting rules studied in
//! that paper (uniform starts, and the "one walker per node" rule), so the benchmark
//! ablation can quantify the variance advantage FrogWild gives up by only shipping
//! end-point counts across the network.

use frogwild_graph::{DiGraph, VertexId};
use rand::Rng;

use crate::dist;

/// Complete-path Monte-Carlo PageRank with uniform walker starts.
///
/// `num_walkers` walkers start at uniformly random vertices; each performs a
/// `Geometric(p_T)` number of steps truncated at `max_steps` and credits every vertex it
/// visits (including its start). The estimate for a vertex is its visit count divided by
/// the total number of visits, which converges to π because the expected number of
/// visits to `j` per walk is `π(j) / p_T` (the renewal argument of Avrachenkov et al.).
///
/// Walkers stranded on a dangling vertex stay put, mirroring the self-loop fix the graph
/// builders apply.
pub fn complete_path_pagerank<R: Rng + ?Sized>(
    graph: &DiGraph,
    num_walkers: u64,
    max_steps: usize,
    teleport_probability: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        teleport_probability > 0.0 && teleport_probability <= 1.0,
        "teleport probability must be in (0, 1]"
    );
    let n = graph.num_vertices();
    let mut visits = vec![0u64; n];
    if n == 0 || num_walkers == 0 {
        return vec![0.0; n];
    }
    for _ in 0..num_walkers {
        let start = rng.gen_range(0..n) as VertexId;
        walk_and_count(
            graph,
            start,
            max_steps,
            teleport_probability,
            rng,
            &mut visits,
        );
    }
    normalize_counts(&visits)
}

/// Complete-path Monte-Carlo PageRank with the "one walker per node" starting rule
/// (Avrachenkov et al., Algorithm 4): `walks_per_vertex` walkers are released from
/// *every* vertex, which removes the start-position sampling noise entirely and is the
/// variant that paper shows needs only a single pass to rank the top nodes well.
///
/// The cost is `Θ(n · walks_per_vertex)` walks — the linear-in-`n` budget FrogWild
/// explicitly avoids (its walker count is sublinear); the estimator ablation uses this
/// function to show the accuracy difference that budget buys.
pub fn walkers_per_vertex_pagerank<R: Rng + ?Sized>(
    graph: &DiGraph,
    walks_per_vertex: u32,
    max_steps: usize,
    teleport_probability: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        teleport_probability > 0.0 && teleport_probability <= 1.0,
        "teleport probability must be in (0, 1]"
    );
    let n = graph.num_vertices();
    let mut visits = vec![0u64; n];
    if n == 0 || walks_per_vertex == 0 {
        return vec![0.0; n];
    }
    for start in graph.vertices() {
        for _ in 0..walks_per_vertex {
            walk_and_count(
                graph,
                start,
                max_steps,
                teleport_probability,
                rng,
                &mut visits,
            );
        }
    }
    normalize_counts(&visits)
}

/// Runs one truncated-geometric walk from `start` and increments the visit tally of
/// every vertex on the trajectory (including the start).
fn walk_and_count<R: Rng + ?Sized>(
    graph: &DiGraph,
    start: VertexId,
    max_steps: usize,
    teleport_probability: f64,
    rng: &mut R,
    visits: &mut [u64],
) {
    let mut position = start;
    // lint:allow(indexing, position is a valid vertex id of this graph)
    visits[position as usize] += 1;
    let lifespan = dist::geometric(teleport_probability, rng).min(max_steps as u64);
    for _ in 0..lifespan {
        let neighbors = graph.out_neighbors(position);
        if neighbors.is_empty() {
            break;
        }
        // lint:allow(indexing, gen_range is bounded by the neighbor count)
        position = neighbors[rng.gen_range(0..neighbors.len())];
        // lint:allow(indexing, position is a valid vertex id of this graph)
        visits[position as usize] += 1;
    }
}

/// Converts raw visit counts into a probability distribution.
fn normalize_counts(visits: &[u64]) -> Vec<f64> {
    let total: u64 = visits.iter().sum();
    if total == 0 {
        return vec![0.0; visits.len()];
    }
    visits.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mass_captured;
    use crate::reference::{exact_pagerank, serial_random_walk_pagerank};
    use frogwild_graph::generators::simple::star;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        rmat(n, RmatParams::default(), &mut rng)
    }

    #[test]
    fn complete_path_estimate_is_a_distribution() {
        let g = star(50);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = complete_path_pagerank(&g, 5_000, 30, 0.15, &mut rng);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(est.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn complete_path_identifies_heavy_vertices() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = test_graph(400, 11);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let est = complete_path_pagerank(&g, 40_000, 20, 0.15, &mut rng);
        let m = mass_captured(&est, &exact.scores, 20);
        assert!(m.normalized() > 0.9, "captured {}", m.normalized());
    }

    #[test]
    fn complete_path_beats_endpoint_sampling_at_equal_walker_count() {
        // The variance advantage: with a *small* walker budget the complete-path
        // estimator should capture at least as much top-k mass as end-point sampling,
        // averaged over several seeds.
        let g = test_graph(500, 21);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let walkers = 3_000u64;
        let mut complete_total = 0.0;
        let mut endpoint_total = 0.0;
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let complete = complete_path_pagerank(&g, walkers, 20, 0.15, &mut rng);
            complete_total += mass_captured(&complete, &exact.scores, 20).normalized();
            let mut rng = SmallRng::seed_from_u64(200 + seed);
            let endpoint = serial_random_walk_pagerank(&g, walkers, 20, 0.15, &mut rng);
            endpoint_total += mass_captured(&endpoint, &exact.scores, 20).normalized();
        }
        assert!(
            complete_total >= endpoint_total - 0.05,
            "complete-path {complete_total} vs end-point {endpoint_total} (5-seed totals)"
        );
    }

    #[test]
    fn walkers_per_vertex_estimate_is_accurate() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = test_graph(300, 31);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let est = walkers_per_vertex_pagerank(&g, 20, 20, 0.15, &mut rng);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let m = mass_captured(&est, &exact.scores, 20);
        assert!(m.normalized() > 0.93, "captured {}", m.normalized());
    }

    #[test]
    fn zero_walkers_give_zero_vectors() {
        let g = star(10);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(
            complete_path_pagerank(&g, 0, 10, 0.15, &mut rng),
            vec![0.0; 10]
        );
        assert_eq!(
            walkers_per_vertex_pagerank(&g, 0, 10, 0.15, &mut rng),
            vec![0.0; 10]
        );
    }

    #[test]
    fn dangling_vertices_do_not_lose_walkers() {
        // Vertex 2 is a sink; walks terminate there but still count their visits.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut rng = SmallRng::seed_from_u64(9);
        let est = complete_path_pagerank(&g, 5_000, 10, 0.15, &mut rng);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(est[2] > 0.0);
    }

    #[test]
    #[should_panic(expected = "teleport probability")]
    fn rejects_zero_teleport() {
        let g = star(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = complete_path_pagerank(&g, 10, 10, 0.0, &mut rng);
    }
}
