//! Confidence intervals and sample-size planning for the walker estimator.
//!
//! Theorem 1 bounds the *captured-mass loss* of the FrogWild estimator; this module
//! provides the complementary per-vertex machinery a practitioner needs when reading the
//! output of a run:
//!
//! * [`hoeffding_epsilon`] / [`required_walkers`] — uniform additive error of the
//!   empirical frequencies as a function of the walker count (and vice versa), via the
//!   Hoeffding/Chernoff argument the paper sketches for independent frogs;
//! * [`wilson_interval`] — a per-vertex confidence interval on the estimated PageRank
//!   value, tighter than Hoeffding for the small frequencies typical of PageRank;
//! * [`separation_probability`] — the probability that two vertices with the given
//!   empirical counts are ordered correctly, used to decide whether the tail of a top-k
//!   list can be trusted or more walkers are needed;
//! * [`plan_walkers`] — the Remark 6 planning rule combined with the Hoeffding bound,
//!   returning a walker budget for a target `k`, captured-mass target and failure
//!   probability.

// lint:allow-file(indexing, dense per-vertex tables indexed by validated vertex ids of the same graph)

use serde::{Deserialize, Serialize};

/// A two-sided confidence interval on a proportion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower end of the interval (clamped to 0).
    pub low: f64,
    /// Upper end of the interval (clamped to 1).
    pub high: f64,
}

impl Interval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.high - self.low
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low && value <= self.high
    }
}

/// The uniform additive error `ε` such that every empirical frequency computed from
/// `num_walkers` independent walkers is within `ε` of its expectation simultaneously
/// over `num_vertices` vertices with probability at least `1 - failure_probability`
/// (Hoeffding plus a union bound).
///
/// # Panics
///
/// Panics if `num_walkers` is zero or `failure_probability` is outside `(0, 1)`.
pub fn hoeffding_epsilon(num_walkers: u64, num_vertices: usize, failure_probability: f64) -> f64 {
    assert!(num_walkers > 0, "need at least one walker");
    assert!(
        failure_probability > 0.0 && failure_probability < 1.0,
        "failure probability must be in (0, 1)"
    );
    let union_terms = (2.0 * num_vertices.max(1) as f64 / failure_probability).ln();
    (union_terms / (2.0 * num_walkers as f64)).sqrt()
}

/// Number of walkers needed so that every empirical frequency is within `epsilon` of its
/// expectation with probability at least `1 - failure_probability` (the inverse of
/// [`hoeffding_epsilon`]).
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)` or `failure_probability` is outside `(0, 1)`.
pub fn required_walkers(epsilon: f64, num_vertices: usize, failure_probability: f64) -> u64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(
        failure_probability > 0.0 && failure_probability < 1.0,
        "failure probability must be in (0, 1)"
    );
    let union_terms = (2.0 * num_vertices.max(1) as f64 / failure_probability).ln();
    (union_terms / (2.0 * epsilon * epsilon)).ceil() as u64
}

/// Wilson score interval for a vertex that received `count` of `num_walkers` walkers,
/// at confidence `1 - failure_probability` (two-sided, normal critical value).
///
/// The Wilson interval stays informative for the tiny proportions PageRank produces
/// (where the naive Wald interval collapses to `[p̂, p̂]` or dips below zero).
///
/// # Panics
///
/// Panics if `count > num_walkers`, `num_walkers == 0`, or `failure_probability` is
/// outside `(0, 1)`.
pub fn wilson_interval(count: u64, num_walkers: u64, failure_probability: f64) -> Interval {
    assert!(num_walkers > 0, "need at least one walker");
    assert!(
        count <= num_walkers,
        "count cannot exceed the number of walkers"
    );
    assert!(
        failure_probability > 0.0 && failure_probability < 1.0,
        "failure probability must be in (0, 1)"
    );
    let z = normal_quantile(1.0 - failure_probability / 2.0);
    let n = num_walkers as f64;
    let p = count as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Interval {
        low: (centre - half).max(0.0),
        high: (centre + half).min(1.0),
    }
}

/// Probability that vertex `a` truly outranks vertex `b` given their empirical walker
/// counts, under a normal approximation to the difference of the two proportions.
/// Returns 0.5 when the counts are equal and approaches 1 as the gap grows relative to
/// the sampling noise.
///
/// # Panics
///
/// Panics if `num_walkers == 0` or either count exceeds it.
pub fn separation_probability(count_a: u64, count_b: u64, num_walkers: u64) -> f64 {
    assert!(num_walkers > 0, "need at least one walker");
    assert!(
        count_a <= num_walkers && count_b <= num_walkers,
        "counts cannot exceed the number of walkers"
    );
    if count_a == count_b {
        return 0.5;
    }
    let n = num_walkers as f64;
    let pa = count_a as f64 / n;
    let pb = count_b as f64 / n;
    let variance = (pa * (1.0 - pa) + pb * (1.0 - pb)) / n;
    if variance <= 0.0 {
        return if pa > pb {
            1.0
        } else if pa < pb {
            0.0
        } else {
            0.5
        };
    }
    let z = (pa - pb) / variance.sqrt();
    normal_cdf(z)
}

/// A walker-budget plan combining the paper's Remark 6 scaling with the Hoeffding union
/// bound: enough walkers that (a) the sampling term of Theorem 1 is below
/// `mass_loss_target` and (b) every individual frequency is within the implied
/// per-vertex resolution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalkerPlan {
    /// Walkers required by the Remark 6 / Theorem 1 sampling term.
    pub walkers_for_mass: u64,
    /// Walkers required by the per-vertex Hoeffding bound.
    pub walkers_for_frequency: u64,
    /// The recommended budget (the maximum of the two).
    pub recommended: u64,
}

/// Plans a walker budget for a top-`k` query on a graph with `num_vertices` vertices,
/// where the true top-k set is expected to hold `optimal_mass` of the PageRank mass, the
/// tolerated captured-mass loss is `mass_loss_target` and the tolerated failure
/// probability is `failure_probability`.
///
/// # Panics
///
/// Panics if `k == 0`, any probability argument is outside its valid range, or
/// `optimal_mass` is not in `(0, 1]`.
pub fn plan_walkers(
    k: usize,
    num_vertices: usize,
    optimal_mass: f64,
    mass_loss_target: f64,
    failure_probability: f64,
) -> WalkerPlan {
    assert!(k > 0, "k must be positive");
    assert!(
        optimal_mass > 0.0 && optimal_mass <= 1.0,
        "optimal mass must be in (0, 1]"
    );
    assert!(mass_loss_target > 0.0, "mass loss target must be positive");
    assert!(
        failure_probability > 0.0 && failure_probability < 1.0,
        "failure probability must be in (0, 1)"
    );
    // Theorem 1 sampling term (with p_s = 1 and negligible intersection probability):
    // ε ≥ sqrt(k / (δ N)), so N ≥ k / (δ ε²).
    let walkers_for_mass =
        (k as f64 / (failure_probability * mass_loss_target * mass_loss_target)).ceil() as u64;
    // Per-vertex resolution: the k-th heaviest vertex holds at least optimal_mass / k;
    // we want frequencies resolved to a quarter of that value.
    let per_vertex_resolution = (optimal_mass / k as f64) / 4.0;
    let walkers_for_frequency = required_walkers(
        per_vertex_resolution.min(0.5),
        num_vertices,
        failure_probability,
    );
    WalkerPlan {
        walkers_for_mass,
        walkers_for_frequency,
        recommended: walkers_for_mass.max(walkers_for_frequency),
    }
}

/// Standard normal cumulative distribution function, via the complementary error
/// function approximation (Abramowitz & Stegun 7.1.26, accurate to ~1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile function (inverse CDF) via the Acklam rational
/// approximation, accurate to ~1e-9 over `(0, 1)`.
///
/// # Panics
///
/// Panics unless `p` is strictly between 0 and 1.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0, 1)");
    // Coefficients of the Acklam approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hoeffding_epsilon_shrinks_with_more_walkers() {
        let small = hoeffding_epsilon(10_000, 1_000, 0.05);
        let large = hoeffding_epsilon(1_000_000, 1_000, 0.05);
        assert!(large < small);
        // quadrupling the walkers halves epsilon
        let quadruple = hoeffding_epsilon(40_000, 1_000, 0.05);
        assert!((small / quadruple - 2.0).abs() < 1e-9);
    }

    #[test]
    fn required_walkers_inverts_epsilon() {
        let eps = 0.001;
        let n = required_walkers(eps, 10_000, 0.05);
        let achieved = hoeffding_epsilon(n, 10_000, 0.05);
        assert!(achieved <= eps);
        // and not wastefully more than needed
        let achieved_minus = hoeffding_epsilon(n.saturating_sub(2), 10_000, 0.05);
        assert!(achieved_minus > eps * 0.999);
    }

    #[test]
    fn normal_quantile_and_cdf_are_inverse() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-4, "p {p}, z {z}");
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-3);
        assert!(normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn wilson_interval_basic_properties() {
        let i = wilson_interval(50, 1_000, 0.05);
        assert!(i.contains(0.05));
        assert!(i.low > 0.0 && i.high < 1.0);
        assert!(i.width() < 0.04);
        // zero counts still give a sensible upper bound
        let zero = wilson_interval(0, 1_000, 0.05);
        assert!(zero.low < 1e-12);
        assert!(zero.high > 0.0 && zero.high < 0.01);
        // full counts mirror that
        let full = wilson_interval(1_000, 1_000, 0.05);
        assert!(full.high > 1.0 - 1e-12);
        assert!(full.low > 0.99);
    }

    #[test]
    fn wilson_interval_narrows_with_more_samples() {
        let small = wilson_interval(10, 100, 0.05);
        let large = wilson_interval(1_000, 10_000, 0.05);
        assert!(large.width() < small.width());
    }

    #[test]
    fn wilson_interval_covers_the_truth_at_the_nominal_rate() {
        // Empirical coverage check: simulate binomial draws and count how often the
        // interval misses the true proportion. With 1 - δ = 0.95 the miss rate over
        // 2 000 trials should stay well below 10%.
        let p_true = 0.03;
        let n = 2_000u64;
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 2_000;
        let mut misses = 0;
        for _ in 0..trials {
            let count = (0..n).filter(|_| rng.gen::<f64>() < p_true).count() as u64;
            if !wilson_interval(count, n, 0.05).contains(p_true) {
                misses += 1;
            }
        }
        let miss_rate = misses as f64 / trials as f64;
        assert!(miss_rate < 0.1, "miss rate {miss_rate}");
    }

    #[test]
    fn separation_probability_behaviour() {
        assert_eq!(separation_probability(10, 10, 1_000), 0.5);
        let clear = separation_probability(200, 50, 1_000);
        assert!(clear > 0.999, "clear separation gives {clear}");
        let reversed = separation_probability(50, 200, 1_000);
        assert!(reversed < 0.001);
        let murky = separation_probability(52, 50, 1_000);
        assert!(murky > 0.5 && murky < 0.7, "murky separation gives {murky}");
    }

    #[test]
    fn plan_walkers_scales_like_remark6() {
        let base = plan_walkers(100, 1_000_000, 0.3, 0.05, 0.1);
        assert_eq!(
            base.recommended,
            base.walkers_for_mass.max(base.walkers_for_frequency)
        );
        // Quadrupling k quadruples the mass term.
        let more_k = plan_walkers(400, 1_000_000, 0.3, 0.05, 0.1);
        assert_eq!(more_k.walkers_for_mass, 4 * base.walkers_for_mass);
        // Halving the tolerated loss quadruples the mass term.
        let tighter = plan_walkers(100, 1_000_000, 0.3, 0.025, 0.1);
        assert_eq!(tighter.walkers_for_mass, 4 * base.walkers_for_mass);
    }

    #[test]
    fn plan_walkers_mass_term_matches_paper_order_of_magnitude() {
        // The paper uses 800K walkers for k=100-ish queries on graphs where the top-100
        // hold a few percent of the mass; the Theorem 1 sampling term should land in the
        // same order of magnitude (hundreds of thousands to a few million). The
        // per-vertex frequency term is far more conservative (it union-bounds over all
        // 40M vertices) and is reported separately for exactly that reason.
        let plan = plan_walkers(100, 40_000_000, 0.05, 0.02, 0.1);
        assert!(
            plan.walkers_for_mass > 100_000 && plan.walkers_for_mass < 20_000_000,
            "mass term {}",
            plan.walkers_for_mass
        );
        assert!(plan.recommended >= plan.walkers_for_mass);
        assert!(plan.recommended >= plan.walkers_for_frequency);
    }

    #[test]
    #[should_panic(expected = "need at least one walker")]
    fn hoeffding_rejects_zero_walkers() {
        let _ = hoeffding_epsilon(0, 10, 0.05);
    }

    #[test]
    #[should_panic(expected = "count cannot exceed")]
    fn wilson_rejects_impossible_count() {
        let _ = wilson_interval(11, 10, 0.05);
    }

    #[test]
    #[should_panic(expected = "quantile argument")]
    fn quantile_rejects_boundary() {
        let _ = normal_quantile(1.0);
    }
}
