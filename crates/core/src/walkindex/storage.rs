//! Flat arena storage of precomputed walk segments.
//!
//! A [`WalkIndex`] stores `R` walk segments for each of `n` vertices in two contiguous
//! arrays, CSR-style: `offsets` has `n · R + 1` entries delimiting the segments, and
//! `hops` concatenates every hop of every segment in `(vertex, segment)`-major order.
//! Segment `j` of vertex `v` is the slice `hops[offsets[v·R + j] .. offsets[v·R + j + 1]]`
//! — one bounds check and two loads away from any query, with no per-vertex allocation
//! anywhere. Segments are at most `L` hops long and shorter only when the walk reached a
//! dangling vertex (a sink) early.

// lint:allow-file(indexing, segment offsets are validated on construction)

use frogwild_graph::VertexId;

/// A precomputed, immutable arena of random-walk segments over one graph.
///
/// Built by [`build_walk_index`](super::build_walk_index) (or
/// [`SessionBuilder::walk_index`](crate::session::SessionBuilder::walk_index)); served
/// from by [`indexed_ppr`](super::indexed_ppr) and
/// [`indexed_pagerank`](super::indexed_pagerank). The index is independent of the
/// teleport probability: segments are pure walk hops, and walk *length* is decided at
/// query time.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkIndex {
    num_vertices: usize,
    num_edges: usize,
    segments_per_vertex: usize,
    segment_length: usize,
    seed: u64,
    /// `num_vertices * segments_per_vertex + 1` delimiters into `hops`.
    offsets: Vec<usize>,
    /// Every hop of every segment, concatenated.
    hops: Vec<VertexId>,
}

impl WalkIndex {
    /// Assembles an index from its raw parts. `offsets` must have
    /// `num_vertices * segments_per_vertex + 1` monotone entries ending at
    /// `hops.len()`; the builder is the only intended caller.
    pub(crate) fn from_parts(
        num_vertices: usize,
        num_edges: usize,
        segments_per_vertex: usize,
        segment_length: usize,
        seed: u64,
        offsets: Vec<usize>,
        hops: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), num_vertices * segments_per_vertex + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), hops.len());
        WalkIndex {
            num_vertices,
            num_edges,
            segments_per_vertex,
            segment_length,
            seed,
            offsets,
            hops,
        }
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges of the graph the index was built from — checked at serve time
    /// so an index cannot silently answer for a different graph of the same size.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Segments stored per vertex (`R`, *after* any memory-budget shrink).
    pub fn segments_per_vertex(&self) -> usize {
        self.segments_per_vertex
    }

    /// Maximum hops per segment (`L`).
    pub fn segment_length(&self) -> usize {
        self.segment_length
    }

    /// The seed the segments were generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Segment `j` (`0 <= j < R`) of vertex `v`, as the slice of vertices the walk
    /// visits after leaving `v`. Empty when `v` is dangling; shorter than
    /// [`segment_length`](Self::segment_length) when the walk hit a sink early.
    ///
    /// # Panics
    ///
    /// Panics when `v` or `j` is out of range.
    #[inline]
    pub fn segment(&self, v: VertexId, j: usize) -> &[VertexId] {
        assert!(
            j < self.segments_per_vertex,
            "segment index {j} out of range"
        );
        let slot = v as usize * self.segments_per_vertex + j;
        &self.hops[self.offsets[slot]..self.offsets[slot + 1]]
    }

    /// Total hops stored across all segments.
    pub fn total_hops(&self) -> usize {
        self.hops.len()
    }

    /// Number of segments that stopped short of the full length (they reached a sink).
    pub fn truncated_segments(&self) -> usize {
        self.offsets
            .windows(2)
            .filter(|w| w[1] - w[0] < self.segment_length)
            .count()
    }

    /// Bytes held by the arena (offset table plus hop array).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.hops.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_index() -> WalkIndex {
        // 2 vertices, 2 segments each, L = 3.
        // v0: [1, 0, 1], [1]  (second segment hit a sink early — synthetic)
        // v1: [], [0, 1, 0]
        let offsets = vec![0, 3, 4, 4, 7];
        let hops = vec![1, 0, 1, 1, 0, 1, 0];
        WalkIndex::from_parts(2, 4, 2, 3, 9, offsets, hops)
    }

    #[test]
    fn segment_slices_follow_the_offsets() {
        let idx = tiny_index();
        assert_eq!(idx.segment(0, 0), &[1, 0, 1]);
        assert_eq!(idx.segment(0, 1), &[1]);
        assert_eq!(idx.segment(1, 0), &[] as &[VertexId]);
        assert_eq!(idx.segment(1, 1), &[0, 1, 0]);
        assert_eq!(idx.total_hops(), 7);
        assert_eq!(idx.num_vertices(), 2);
        assert_eq!(idx.num_edges(), 4);
        assert_eq!(idx.segments_per_vertex(), 2);
        assert_eq!(idx.segment_length(), 3);
        assert_eq!(idx.seed(), 9);
    }

    #[test]
    fn truncated_segments_counts_short_ones() {
        assert_eq!(tiny_index().truncated_segments(), 2);
    }

    #[test]
    fn memory_bytes_covers_both_arrays() {
        let idx = tiny_index();
        let expected = 5 * std::mem::size_of::<usize>() + 7 * std::mem::size_of::<VertexId>();
        assert_eq!(idx.memory_bytes(), expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_index_is_range_checked() {
        let _ = tiny_index().segment(0, 2);
    }
}
