//! Precomputed walk-index subsystem: amortize Monte-Carlo cost into an index build.
//!
//! FrogWild answers every query with *fresh* random walks, so a query stream re-pays
//! the full Monte-Carlo cost on every request even though the graph never changes
//! between requests. The PowerWalk / FAST-PPR line of work shows the fix: precompute a
//! handful of random-walk *segments* per vertex once, then serve queries by **stitching
//! cached segments** instead of walking the graph hop by hop. This module is that
//! subsystem:
//!
//! * [`WalkIndexConfig`] — the build/serve knobs: `R` segments of `L` hops per vertex,
//!   a memory budget that bounds the arena regardless of graph size, and the serving
//!   accuracy dials (`frontier_epsilon`, `walks_per_unit_residual`).
//! * [`WalkIndex`] — the immutable flat arena (CSR-style offsets + one contiguous hop
//!   array). Segments carry no teleportation, so one index serves any teleport
//!   probability.
//! * [`build_walk_index`] — the parallel build: each simulated machine of a
//!   [`PartitionedGraph`](frogwild_engine::PartitionedGraph) generates the segments of
//!   the vertices it masters (see [`frogwild_engine::walkgen`]), and the batches are
//!   flattened into the arena. Deterministic for a fixed seed across machine counts,
//!   partitioners, and threading.
//! * [`indexed_ppr`] / [`indexed_pagerank`] — PowerWalk-style serving: forward-push to
//!   a residual frontier, then stitched walks that consume whole cached segments in
//!   O(1) each, resampling fresh hops only on segment exhaustion.
//!
//! The subsystem plugs into the query service via
//! [`SessionBuilder::walk_index`](crate::session::SessionBuilder::walk_index):
//! `Query::Ppr` and `Query::TopK` are then served from the index transparently, and
//! [`QueryCost`](crate::session::QueryCost) / [`SessionStats`](crate::session::SessionStats)
//! report segment hits/misses and the amortized build cost.
//!
//! ```
//! use frogwild::walkindex::{build_walk_index_standalone, indexed_ppr, WalkIndexConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let graph = frogwild_graph::generators::livejournal_like(2_000, &mut rng);
//!
//! let cfg = WalkIndexConfig::default();
//! let (index, report) = build_walk_index_standalone(&graph, 4, &cfg)?;
//! assert!(report.arena_bytes <= cfg.memory_budget_bytes);
//!
//! let served = indexed_ppr(&graph, &index, &cfg, 7, 0.15)?;
//! assert!((served.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! # Ok::<(), frogwild::Error>(())
//! ```

mod build;
mod config;
mod serve;
mod storage;

pub use build::{
    build_walk_index, build_walk_index_standalone, build_walk_index_traced, WalkIndexBuildReport,
};
pub use config::WalkIndexConfig;
pub use serve::{indexed_pagerank, indexed_ppr, IndexServeStats, IndexedEstimate, TAIL_FLOOR};
pub use storage::WalkIndex;
