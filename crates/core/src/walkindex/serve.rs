//! Serving PPR and global-PageRank queries from a [`WalkIndex`].
//!
//! Index serving follows the PowerWalk recipe. A personalized query is answered in two
//! phases:
//!
//! 1. **Localize** — [`forward_push_ppr`] runs down to the (deliberately coarse)
//!    `frontier_epsilon` of the [`WalkIndexConfig`], converting the easy head of the
//!    PPR vector into settled estimates and leaving a *residual frontier*: the exact
//!    decomposition `π_s = p + Σ_u r(u) · π_u` says the missing mass is a
//!    residual-weighted mixture of the frontier vertices' own PPR vectors.
//! 2. **Stitch** — that mixture is sampled with random walks whose hops come from the
//!    index: a walk at vertex `v` consumes one of `v`'s precomputed segments and
//!    stitches the next segment at the exit vertex, so the only randomness left per
//!    walk is the start vertex. A fresh hop is sampled only when a walk lands on a
//!    vertex whose segments were all consumed earlier in the same query (a *segment
//!    miss*); the walk then re-enters the index at the sampled neighbour. Distinct
//!    walks never share a segment, so the walks of one query stay mutually
//!    independent.
//!
//! Walks are scored with the **complete-path estimator** (Avrachenkov et al.): instead
//! of sampling a geometric lifespan and counting only the endpoint, every visited
//! vertex receives the expected teleport-death mass `α(1-α)^t` of hop `t`, with the
//! geometric tail deposited wherever the walk stops (the hop cap, or the point where
//! the remaining tail drops below [`TAIL_FLOOR`] of the walk's share); walks stranded
//! on a dangling vertex recycle to their start, the same convention as
//! [`monte_carlo_ppr`](crate::ppr::monte_carlo_ppr). This is the
//! Rao-Blackwellization of endpoint counting — same expectation, far lower variance
//! per walk — which is what lets an index-served query match fresh-Monte-Carlo
//! accuracy with an order of magnitude fewer walks. Mass is conserved exactly: each
//! walk deposits precisely its share, so a served estimate sums to 1.
//!
//! Global top-k uses the same stitcher with uniform walk starts and the FrogWild
//! truncation (hop cap = `iterations`); the complete-path weights are exactly the
//! expectation of FrogWild's kill-or-survive walker counting.
//!
//! Everything is deterministic: the walk randomness is derived from the index seed, the
//! query seed, and the source, so the same query against the same index always returns
//! the same response.

// lint:allow-file(indexing, hot path; segment offsets were validated when the index was built)

use frogwild_engine::rng::derived_rng;
use frogwild_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::config::{in_open_unit_interval, FrogWildConfig};
use crate::error::{Error, Result};
use crate::ppr::forward_push_ppr;

use super::config::WalkIndexConfig;
use super::storage::WalkIndex;

/// Domain-separation tags for query-time randomness.
const TAG_SERVE_PPR: u64 = 0x5E12_0001;
const TAG_SERVE_GLOBAL: u64 = 0x5E12_0002;

/// A stitched walk stops once its undeposited geometric tail falls below this fraction
/// of its share; the remainder is deposited in place. Bounds per-walk truncation bias
/// at `share · TAIL_FLOOR` while keeping walks near their effective `1/p_T` length.
pub const TAIL_FLOOR: f64 = 1e-3;

/// Work and index-economics counters of one index-served query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IndexServeStats {
    /// Push operations of the localization phase (zero for global top-k).
    pub pushes: usize,
    /// Residual mass the push phase left for the walks (zero for global top-k).
    pub residual_mass: f64,
    /// Stitched walks performed.
    pub stitched_walks: u64,
    /// Segments served straight from the arena.
    pub segment_hits: u64,
    /// Segment requests that found the vertex's arena budget exhausted and fell back
    /// to fresh sampling. Each miss costs exactly one freshly sampled hop — the only
    /// per-hop sampling work of an index-served query.
    pub segment_misses: u64,
    /// Total hops the walks covered, index-served or fresh.
    pub walk_hops: u64,
    /// Vertices on the residual frontier the push phase left (zero for global
    /// top-k) — how far the push grew before handing over to the walks.
    pub frontier_vertices: u64,
}

impl IndexServeStats {
    /// Fraction of segment requests served from the arena (1.0 when nothing missed;
    /// 1.0 also for a query that needed no segments at all).
    pub fn hit_rate(&self) -> f64 {
        let total = self.segment_hits + self.segment_misses;
        if total == 0 {
            1.0
        } else {
            self.segment_hits as f64 / total as f64
        }
    }
}

/// An estimate served from the index, with its serving statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexedEstimate {
    /// Per-vertex score estimate (sums to 1).
    pub estimate: Vec<f64>,
    /// Work counters of this query.
    pub stats: IndexServeStats,
}

/// Walks over the graph by consuming whole precomputed segments.
///
/// Per-query state: `cursors[v]` counts how many of `v`'s segments this query has
/// consumed, so every use of a vertex gets a *distinct* precomputed segment until the
/// budget `R` runs out, after which hops are resampled freshly — walks within one
/// query stay independent.
struct Stitcher<'a> {
    graph: &'a DiGraph,
    index: &'a WalkIndex,
    cursors: Vec<u32>,
    segment_hits: u64,
    segment_misses: u64,
    walk_hops: u64,
}

impl<'a> Stitcher<'a> {
    fn new(graph: &'a DiGraph, index: &'a WalkIndex) -> Self {
        Stitcher {
            graph,
            index,
            cursors: vec![0; graph.num_vertices()],
            segment_hits: 0,
            segment_misses: 0,
            walk_hops: 0,
        }
    }

    /// Runs one stitched walk of (at most) `cap` hops from `start` and deposits its
    /// `share` of mass into `estimate` with complete-path weights: hop `t` receives
    /// `share * alpha * (1-alpha)^t`, and the undeposited tail lands wherever the walk
    /// stops — the hop cap or the [`TAIL_FLOOR`] truncation. Walks stranded on a
    /// dangling vertex recycle to their start, mirroring `monte_carlo_ppr`'s
    /// convention. Exactly `share` is deposited in total.
    fn walk_spread(
        &mut self,
        start: VertexId,
        share: f64,
        teleport_probability: f64,
        cap: u64,
        estimate: &mut [f64],
        rng: &mut SmallRng,
    ) {
        let r = self.index.segments_per_vertex() as u32;
        let decay = 1.0 - teleport_probability;
        let floor = share * TAIL_FLOOR;
        let mut v = start;
        let mut tail = share;
        let mut hops = 0u64;
        estimate[v as usize] += tail * teleport_probability;
        tail *= decay;
        'walk: while hops < cap && tail >= floor {
            if self.graph.out_degree(v) == 0 {
                // A stranded walk recycles to its start — the same dangling-vertex
                // convention as `monte_carlo_ppr`, costing one hop and no sampling.
                v = start;
                hops += 1;
                estimate[v as usize] += tail * teleport_probability;
                tail *= decay;
                continue;
            }
            let cursor = self.cursors[v as usize];
            if cursor < r {
                self.cursors[v as usize] = cursor + 1;
                self.segment_hits += 1;
                for &hop in self.index.segment(v, cursor as usize) {
                    v = hop;
                    hops += 1;
                    estimate[v as usize] += tail * teleport_probability;
                    tail *= decay;
                    if hops >= cap || tail < floor {
                        break 'walk;
                    }
                }
            } else {
                // Budget exhausted at this vertex: resample a single fresh hop. The
                // walk then re-enters the index at the neighbour, whose own segment
                // pool is typically untouched — exhaustion at a hot vertex costs one
                // hop, not a whole segment's worth.
                self.segment_misses += 1;
                let neighbors = self.graph.out_neighbors(v);
                v = neighbors[rng.gen_range(0..neighbors.len())];
                hops += 1;
                estimate[v as usize] += tail * teleport_probability;
                tail *= decay;
            }
        }
        estimate[v as usize] += tail;
        self.walk_hops += hops;
    }

    fn into_stats(self) -> IndexServeStats {
        IndexServeStats {
            segment_hits: self.segment_hits,
            segment_misses: self.segment_misses,
            walk_hops: self.walk_hops,
            ..IndexServeStats::default()
        }
    }
}

fn check_index_matches(graph: &DiGraph, index: &WalkIndex) -> Result<()> {
    if index.num_vertices() != graph.num_vertices() || index.num_edges() != graph.num_edges() {
        return Err(Error::graph(format!(
            "walk index was built for a graph with {} vertices / {} edges, \
             but this graph has {} / {}",
            index.num_vertices(),
            index.num_edges(),
            graph.num_vertices(),
            graph.num_edges()
        )));
    }
    Ok(())
}

/// Personalized PageRank of `source`, served from the index: forward push to the
/// config's residual frontier, then stitched walks for the residual mass.
///
/// The returned estimate sums to 1 exactly (push settles `1 - residual_mass`; every
/// stitched walk deposits an equal share of `residual_mass`).
///
/// # Errors
///
/// * [`Error::Graph`] when the index does not cover the graph;
/// * [`Error::Query`] when `source` is out of range;
/// * [`Error::InvalidConfig`] when `teleport_probability` is outside `(0, 1)` or the
///   config fails validation.
pub fn indexed_ppr(
    graph: &DiGraph,
    index: &WalkIndex,
    config: &WalkIndexConfig,
    source: VertexId,
    teleport_probability: f64,
) -> Result<IndexedEstimate> {
    config.validate()?;
    check_index_matches(graph, index)?;
    let n = graph.num_vertices();
    if source as usize >= n {
        return Err(Error::query(format!(
            "ppr source {source} out of range for a graph with {n} vertices"
        )));
    }
    if !in_open_unit_interval(teleport_probability) {
        return Err(Error::config(
            "indexed_ppr",
            format!("teleport_probability must be in (0, 1), got {teleport_probability}"),
        ));
    }

    // Phase 1: localize.
    let push = forward_push_ppr(graph, source, teleport_probability, config.frontier_epsilon);
    let residual_mass = push.residual_mass();
    let mut estimate = push.estimate;

    // Phase 2: stitch walks for the residual mixture Σ_u r(u) · π_u.
    let mut stitcher = Stitcher::new(graph, index);
    let mut stitched_walks = 0;
    let mut frontier_vertices = 0u64;
    if residual_mass > 0.0 {
        let frontier: Vec<(VertexId, f64)> = {
            let mut acc = 0.0;
            push.residual
                .iter()
                .enumerate()
                .filter(|(_, &r)| r > 0.0)
                .map(|(v, &r)| {
                    acc += r;
                    (v as VertexId, acc)
                })
                .collect()
        };
        frontier_vertices = frontier.len() as u64;
        let total = frontier.last().map(|&(_, c)| c).unwrap_or(0.0);
        let walks = ((residual_mass * config.walks_per_unit_residual as f64).ceil() as u64).max(1);
        let share = residual_mass / walks as f64;
        let mut rng = derived_rng(&[
            index.seed(),
            config.seed,
            source as u64,
            teleport_probability.to_bits(),
            TAG_SERVE_PPR,
        ]);
        for _ in 0..walks {
            let target = rng.gen::<f64>() * total;
            let at = frontier
                .partition_point(|&(_, c)| c <= target)
                .min(frontier.len() - 1);
            stitcher.walk_spread(
                frontier[at].0,
                share,
                teleport_probability,
                config.max_walk_hops as u64,
                &mut estimate,
                &mut rng,
            );
        }
        stitched_walks = walks;
    }

    let mut stats = stitcher.into_stats();
    stats.pushes = push.pushes;
    stats.residual_mass = residual_mass;
    stats.stitched_walks = stitched_walks;
    stats.frontier_vertices = frontier_vertices;
    Ok(IndexedEstimate { estimate, stats })
}

/// Global PageRank served from the index with the FrogWild estimator shape:
/// `num_walkers` walks from uniform starts, lifespans `min(Geometric(p_T), iterations)`,
/// endpoints counted.
///
/// # Errors
///
/// * [`Error::Graph`] when the index does not cover the graph;
/// * [`Error::InvalidConfig`] when `fw` fails [`FrogWildConfig::validate`].
pub fn indexed_pagerank(
    graph: &DiGraph,
    index: &WalkIndex,
    fw: &FrogWildConfig,
) -> Result<IndexedEstimate> {
    fw.validate()?;
    check_index_matches(graph, index)?;
    let n = graph.num_vertices();
    let mut estimate = vec![0.0f64; n];
    let share = 1.0 / fw.num_walkers as f64;
    let mut stitcher = Stitcher::new(graph, index);
    let mut rng = derived_rng(&[index.seed(), fw.seed, TAG_SERVE_GLOBAL]);
    for _ in 0..fw.num_walkers {
        let start = rng.gen_range(0..n) as VertexId;
        stitcher.walk_spread(
            start,
            share,
            fw.teleport_probability,
            fw.iterations as u64,
            &mut estimate,
            &mut rng,
        );
    }
    let mut stats = stitcher.into_stats();
    stats.stitched_walks = fw.num_walkers;
    Ok(IndexedEstimate { estimate, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mass_captured;
    use crate::ppr::{personalized_pagerank, single_source_restart};
    use crate::reference::exact_pagerank;
    use crate::walkindex::build_walk_index_standalone;
    use frogwild_graph::generators::simple::cycle;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(404);
        rmat(n, RmatParams::default(), &mut rng)
    }

    fn test_index(g: &DiGraph, cfg: &WalkIndexConfig) -> WalkIndex {
        build_walk_index_standalone(g, 4, cfg).unwrap().0
    }

    #[test]
    fn indexed_ppr_is_a_distribution_and_matches_exact_on_the_head() {
        let g = test_graph(400);
        let cfg = WalkIndexConfig {
            segments_per_vertex: 16,
            segment_length: 8,
            walks_per_unit_residual: 20_000,
            ..WalkIndexConfig::default()
        };
        let index = test_index(&g, &cfg);
        let source = 7;
        let served = indexed_ppr(&g, &index, &cfg, source, 0.15).unwrap();
        let total: f64 = served.estimate.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(served.estimate.iter().all(|&x| x >= 0.0));
        assert!(served.stats.pushes > 0);
        assert!(served.stats.stitched_walks > 0);
        assert!(served.stats.segment_hits > 0);

        let exact = personalized_pagerank(
            &g,
            &single_source_restart(g.num_vertices(), source),
            0.15,
            300,
            1e-12,
        );
        let m = mass_captured(&served.estimate, &exact.scores, 10);
        assert!(m.normalized() > 0.85, "captured {}", m.normalized());
    }

    #[test]
    fn indexed_ppr_is_deterministic_per_seed() {
        let g = test_graph(300);
        let cfg = WalkIndexConfig::default();
        let index = test_index(&g, &cfg);
        let a = indexed_ppr(&g, &index, &cfg, 3, 0.15).unwrap();
        let b = indexed_ppr(&g, &index, &cfg, 3, 0.15).unwrap();
        assert_eq!(a, b);
        let other_seed = WalkIndexConfig { seed: 1, ..cfg };
        let c = indexed_ppr(&g, &index, &other_seed, 3, 0.15).unwrap();
        assert_ne!(a.estimate, c.estimate);
    }

    #[test]
    fn indexed_ppr_on_a_cycle_decays_with_distance() {
        let g = cycle(30);
        let cfg = WalkIndexConfig {
            segments_per_vertex: 4,
            segment_length: 6,
            ..WalkIndexConfig::default()
        };
        let index = test_index(&g, &cfg);
        let served = indexed_ppr(&g, &index, &cfg, 0, 0.2).unwrap();
        assert!(served.estimate[1] > served.estimate[15]);
    }

    #[test]
    fn segment_misses_appear_only_under_pressure() {
        let g = test_graph(200);
        // One segment per vertex and a heavy walk budget: misses are inevitable.
        let starved = WalkIndexConfig {
            segments_per_vertex: 1,
            segment_length: 2,
            walks_per_unit_residual: 50_000,
            frontier_epsilon: 1e-2,
            ..WalkIndexConfig::default()
        };
        let index = test_index(&g, &starved);
        let served = indexed_ppr(&g, &index, &starved, 5, 0.15).unwrap();
        assert!(served.stats.segment_misses > 0);
        assert!(served.stats.hit_rate() < 1.0);
        // The estimate stays exact-mass regardless of misses.
        let total: f64 = served.estimate.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn indexed_pagerank_finds_the_global_head() {
        let g = test_graph(400);
        let cfg = WalkIndexConfig {
            segments_per_vertex: 8,
            segment_length: 8,
            ..WalkIndexConfig::default()
        };
        let index = test_index(&g, &cfg);
        let fw = FrogWildConfig {
            num_walkers: 60_000,
            iterations: 5,
            ..FrogWildConfig::default()
        };
        let served = indexed_pagerank(&g, &index, &fw).unwrap();
        let total: f64 = served.estimate.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(served.stats.stitched_walks, 60_000);
        let exact = exact_pagerank(&g, 0.15, 100, 1e-12);
        let m = mass_captured(&served.estimate, &exact.scores, 30);
        assert!(m.normalized() > 0.8, "captured {}", m.normalized());
    }

    #[test]
    fn serve_errors_are_typed() {
        let g = test_graph(100);
        let cfg = WalkIndexConfig::default();
        let index = test_index(&g, &cfg);
        assert!(matches!(
            indexed_ppr(&g, &index, &cfg, g.num_vertices() as VertexId, 0.15),
            Err(Error::Query { .. })
        ));
        assert!(matches!(
            indexed_ppr(&g, &index, &cfg, 0, 1.5),
            Err(Error::InvalidConfig { .. })
        ));
        let other = test_graph(150);
        assert!(matches!(
            indexed_ppr(&other, &index, &cfg, 0, 0.15),
            Err(Error::Graph { .. })
        ));
        let bad_fw = FrogWildConfig {
            num_walkers: 0,
            ..FrogWildConfig::default()
        };
        assert!(matches!(
            indexed_pagerank(&g, &index, &bad_fw),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn hit_rate_of_an_idle_query_is_one() {
        assert_eq!(IndexServeStats::default().hit_rate(), 1.0);
    }
}
