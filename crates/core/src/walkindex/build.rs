//! Building a [`WalkIndex`]: parallel segment generation + arena assembly.
//!
//! The expensive half of an index build — generating `n · R` random-walk segments — is
//! delegated to the engine's [`generate_walk_segments`], which splits the work across
//! the simulated machines by master assignment (one worker thread per machine when the
//! config asks for parallelism). This module owns the cheap half: validating the
//! configuration, applying the memory budget, and flattening the per-machine batches
//! into the CSR-style arena of [`WalkIndex`].

// lint:allow-file(indexing, CSR assembly; offsets come from a counting pass over the same segments)

use std::time::Instant;

use frogwild_engine::{generate_walk_segments_traced, ObliviousPartitioner, PartitionedGraph};
use frogwild_graph::{DiGraph, VertexId};
use frogwild_obs::Tracer;

use crate::error::{Error, Result};

use super::config::WalkIndexConfig;
use super::storage::WalkIndex;

/// What a [`build_walk_index`] call produced, beyond the index itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WalkIndexBuildReport {
    /// The `R` the configuration asked for.
    pub requested_segments: usize,
    /// The `R` actually built (shrunk by the memory budget when necessary).
    pub effective_segments: usize,
    /// Hops per segment (`L`).
    pub segment_length: usize,
    /// Simulated machines the generation was split across.
    pub machines: usize,
    /// Bytes the finished arena occupies.
    pub arena_bytes: usize,
    /// Total hops stored.
    pub total_hops: usize,
    /// Segments that stopped early at a dangling vertex.
    pub truncated_segments: usize,
    /// Host seconds the build took (generation + assembly).
    pub build_seconds: f64,
}

/// Builds a [`WalkIndex`] for `graph` over an existing partitioned layout.
///
/// Each simulated machine of `pg` generates the segments of the vertices it masters
/// (in parallel when `config.parallel` is set); the batches are then flattened into
/// one contiguous arena. The result is identical for any machine count, partitioner,
/// or threading mode — only the build-time work division changes.
///
/// # Errors
///
/// * [`Error::InvalidConfig`] when the configuration fails
///   [`WalkIndexConfig::validate`] or the memory budget cannot hold even one segment
///   per vertex;
/// * [`Error::Graph`] when the graph is empty or does not match `pg`.
pub fn build_walk_index(
    graph: &DiGraph,
    pg: &PartitionedGraph,
    config: &WalkIndexConfig,
) -> Result<(WalkIndex, WalkIndexBuildReport)> {
    build_walk_index_traced(graph, pg, config, &Tracer::disabled())
}

/// [`build_walk_index`] with a tracing handle: each machine's segment generation is
/// recorded as a `walk_segments` span with vertex/hop counters (see
/// [`generate_walk_segments_traced`]). The built index is identical to the untraced
/// build — the tracer only observes.
///
/// # Errors
///
/// The same errors as [`build_walk_index`].
pub fn build_walk_index_traced(
    graph: &DiGraph,
    pg: &PartitionedGraph,
    config: &WalkIndexConfig,
    tracer: &Tracer,
) -> Result<(WalkIndex, WalkIndexBuildReport)> {
    config.validate()?;
    let n = graph.num_vertices();
    if n == 0 {
        return Err(Error::graph(
            "cannot build a walk index over an empty graph",
        ));
    }
    if pg.num_vertices() != n {
        return Err(Error::graph(format!(
            "partitioned layout covers {} vertices but the graph has {n}",
            pg.num_vertices()
        )));
    }
    let r = config.effective_segments(n)?;
    let l = config.segment_length;

    let started = Instant::now(); // lint:allow(timing, host-seconds telemetry only; excluded from determinism)
    let batches =
        generate_walk_segments_traced(graph, pg, r, l, config.seed, config.parallel, tracer);

    // Flatten the per-machine batches into vertex-major CSR form. First pass: collect
    // every segment length into global (vertex, segment) order and prefix-sum it into
    // the offset table; second pass: copy each batch's hops to its arena position.
    let mut lens = vec![0u32; n * r];
    for batch in &batches {
        for (i, &v) in batch.vertices.iter().enumerate() {
            lens[v as usize * r..(v as usize + 1) * r]
                .copy_from_slice(&batch.lens[i * r..(i + 1) * r]);
        }
    }
    let mut offsets = Vec::with_capacity(n * r + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &len in &lens {
        acc += len as usize;
        offsets.push(acc);
    }
    let mut hops = vec![0 as VertexId; acc];
    for batch in &batches {
        let mut cursor = 0usize;
        for (i, &v) in batch.vertices.iter().enumerate() {
            for j in 0..r {
                let len = batch.lens[i * r + j] as usize;
                let at = offsets[v as usize * r + j];
                hops[at..at + len].copy_from_slice(&batch.hops[cursor..cursor + len]);
                cursor += len;
            }
        }
    }

    let index = WalkIndex::from_parts(n, graph.num_edges(), r, l, config.seed, offsets, hops);
    let report = WalkIndexBuildReport {
        requested_segments: config.segments_per_vertex,
        effective_segments: r,
        segment_length: l,
        machines: pg.num_machines(),
        arena_bytes: index.memory_bytes(),
        total_hops: index.total_hops(),
        truncated_segments: index.truncated_segments(),
        build_seconds: started.elapsed().as_secs_f64(),
    };
    Ok((index, report))
}

/// Builds a [`WalkIndex`] without an existing layout: partitions `graph` over
/// `machines` simulated machines with the default (oblivious) ingress first, then
/// builds as [`build_walk_index`]. Convenience for index-only tools (the CLI `index`
/// subcommand, benchmarks); sessions reuse their own layout instead.
///
/// # Errors
///
/// The same errors as [`build_walk_index`], plus [`Error::InvalidConfig`] when
/// `machines` is zero.
pub fn build_walk_index_standalone(
    graph: &DiGraph,
    machines: usize,
    config: &WalkIndexConfig,
) -> Result<(WalkIndex, WalkIndexBuildReport)> {
    if machines == 0 {
        return Err(Error::config(
            "build_walk_index_standalone",
            "machines must be at least 1",
        ));
    }
    let pg = PartitionedGraph::build(graph, machines, &ObliviousPartitioner, config.seed);
    build_walk_index(graph, &pg, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(77);
        rmat(n, RmatParams::default(), &mut rng)
    }

    #[test]
    fn arena_matches_direct_segment_generation() {
        let g = test_graph(300);
        let cfg = WalkIndexConfig {
            segments_per_vertex: 3,
            segment_length: 5,
            seed: 21,
            ..WalkIndexConfig::default()
        };
        let (index, report) = build_walk_index_standalone(&g, 4, &cfg).unwrap();
        assert_eq!(index.num_vertices(), g.num_vertices());
        assert_eq!(index.segments_per_vertex(), 3);
        assert_eq!(report.effective_segments, 3);
        assert_eq!(report.machines, 4);
        assert_eq!(report.total_hops, index.total_hops());
        assert!(report.arena_bytes > 0);
        // Every stored segment is a real walk on the graph.
        for v in g.vertices() {
            for j in 0..3 {
                let seg = index.segment(v, j);
                assert!(seg.len() <= 5);
                let mut at = v;
                for &hop in seg {
                    assert!(g.has_edge(at, hop));
                    at = hop;
                }
                if seg.len() < 5 {
                    assert_eq!(g.out_degree(at), 0, "short segment not at a sink");
                }
            }
        }
    }

    #[test]
    fn build_is_identical_across_machine_counts_and_threading() {
        let g = test_graph(250);
        let cfg = WalkIndexConfig {
            segments_per_vertex: 2,
            segment_length: 4,
            seed: 5,
            ..WalkIndexConfig::default()
        };
        let (reference, _) = build_walk_index_standalone(&g, 1, &cfg).unwrap();
        for machines in [3usize, 8] {
            for parallel in [false, true] {
                let (other, _) =
                    build_walk_index_standalone(&g, machines, &WalkIndexConfig { parallel, ..cfg })
                        .unwrap();
                assert_eq!(reference, other, "machines={machines} parallel={parallel}");
            }
        }
    }

    #[test]
    fn memory_budget_shrinks_the_built_index() {
        let g = test_graph(200);
        let full = WalkIndexConfig {
            segments_per_vertex: 8,
            segment_length: 6,
            seed: 3,
            ..WalkIndexConfig::default()
        };
        let budgeted = WalkIndexConfig {
            memory_budget_bytes: full.estimated_bytes(g.num_vertices(), 2),
            ..full
        };
        let (index, report) = build_walk_index_standalone(&g, 2, &budgeted).unwrap();
        assert_eq!(report.requested_segments, 8);
        assert_eq!(report.effective_segments, 2);
        assert_eq!(index.segments_per_vertex(), 2);
        assert!(index.memory_bytes() <= budgeted.memory_budget_bytes);
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let g = test_graph(100);
        let cfg = WalkIndexConfig::default();
        assert!(matches!(
            build_walk_index_standalone(&g, 0, &cfg),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            build_walk_index_standalone(&DiGraph::empty(0), 2, &cfg),
            Err(Error::Graph { .. })
        ));
        let bad = WalkIndexConfig {
            segment_length: 0,
            ..cfg
        };
        assert!(matches!(
            build_walk_index_standalone(&g, 2, &bad),
            Err(Error::InvalidConfig { .. })
        ));
    }
}
