//! Configuration of a precomputed walk index.

use crate::error::Error;

/// Configuration of a [`WalkIndex`](super::WalkIndex) build and of the queries served
/// from it.
///
/// The two structural knobs are `segments_per_vertex` (`R`) and `segment_length` (`L`):
/// the index stores up to `R` pure random-walk segments of `L` hops from every vertex.
/// More segments mean lower estimator variance; longer segments mean fewer stitches per
/// walk. `memory_budget_bytes` caps the arena size by shrinking `R` (never `L`), so one
/// number bounds the index footprint regardless of graph size.
///
/// The two accuracy knobs for serving are `frontier_epsilon` — how far the forward-push
/// phase localizes a PPR query before walks take over — and `walks_per_unit_residual` —
/// how many stitched walks are spent per unit of residual mass the push left behind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WalkIndexConfig {
    /// Walk segments precomputed per vertex (`R`). Subject to the memory budget: the
    /// effective count can be lower, see [`WalkIndexConfig::effective_segments`].
    pub segments_per_vertex: usize,
    /// Hops per segment (`L`). Segments end early only at dangling vertices.
    pub segment_length: usize,
    /// Residual threshold of the forward-push phase of an index-served PPR query.
    /// Coarser (larger) values shift work from pushes to stitched walks.
    pub frontier_epsilon: f64,
    /// Stitched walks spent per unit of residual mass when serving a PPR query; the
    /// main accuracy/latency dial of index serving.
    pub walks_per_unit_residual: u64,
    /// Hard cap on the hop count of any single stitched walk. A walk's undeposited
    /// geometric tail `(1 - p_T)^cap` lands at the truncation point, so the cap trades
    /// a small, bounded placement bias (~2% of walk mass at the default, `p_T = 0.15`)
    /// for proportionally less per-walk work — the same role `max_steps` plays for
    /// [`monte_carlo_ppr`](crate::ppr::monte_carlo_ppr).
    pub max_walk_hops: usize,
    /// Upper bound on the index arena size in bytes (offsets + hop array).
    /// `usize::MAX` (the default) means unbounded.
    pub memory_budget_bytes: usize,
    /// Seed for segment generation and query-time stitching decisions.
    pub seed: u64,
    /// Generate segments on one worker thread per simulated machine.
    pub parallel: bool,
}

impl Default for WalkIndexConfig {
    fn default() -> Self {
        WalkIndexConfig {
            segments_per_vertex: 16,
            segment_length: 8,
            frontier_epsilon: 1e-4,
            walks_per_unit_residual: 3_000,
            max_walk_hops: 24,
            memory_budget_bytes: usize::MAX,
            seed: 0x1DE7,
            parallel: false,
        }
    }
}

impl WalkIndexConfig {
    /// Validates the configuration, returning the first problem found as a typed
    /// [`Error::InvalidConfig`].
    pub fn validate(&self) -> Result<(), Error> {
        const CTX: &str = "WalkIndexConfig";
        if self.segments_per_vertex == 0 {
            return Err(Error::config(CTX, "segments_per_vertex must be positive"));
        }
        if self.segment_length == 0 {
            return Err(Error::config(CTX, "segment_length must be positive"));
        }
        if !(self.frontier_epsilon > 0.0 && self.frontier_epsilon.is_finite()) {
            return Err(Error::config(
                CTX,
                format!(
                    "frontier_epsilon must be positive and finite, got {}",
                    self.frontier_epsilon
                ),
            ));
        }
        if self.walks_per_unit_residual == 0 {
            return Err(Error::config(
                CTX,
                "walks_per_unit_residual must be positive",
            ));
        }
        if self.max_walk_hops == 0 {
            return Err(Error::config(CTX, "max_walk_hops must be positive"));
        }
        if self.memory_budget_bytes == 0 {
            return Err(Error::config(CTX, "memory_budget_bytes must be positive"));
        }
        Ok(())
    }

    /// Worst-case arena bytes for `num_vertices` vertices at `segments` segments per
    /// vertex: the CSR offset table plus a full-length hop array.
    pub fn estimated_bytes(&self, num_vertices: usize, segments: usize) -> usize {
        let offsets = (num_vertices * segments + 1) * std::mem::size_of::<usize>();
        let hops = num_vertices * segments * self.segment_length * std::mem::size_of::<u32>();
        offsets + hops
    }

    /// The per-vertex segment count the memory budget allows: the largest
    /// `r <= segments_per_vertex` whose worst-case arena fits in
    /// `memory_budget_bytes`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when even a single segment per vertex does not fit.
    pub fn effective_segments(&self, num_vertices: usize) -> Result<usize, Error> {
        for r in (1..=self.segments_per_vertex).rev() {
            if self.estimated_bytes(num_vertices, r) <= self.memory_budget_bytes {
                return Ok(r);
            }
        }
        Err(Error::config(
            "WalkIndexConfig",
            format!(
                "memory budget of {} bytes cannot hold even one length-{} segment for each of \
                 the {} vertices ({} bytes needed)",
                self.memory_budget_bytes,
                self.segment_length,
                num_vertices,
                self.estimated_bytes(num_vertices, 1),
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(WalkIndexConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let base = WalkIndexConfig::default();
        for bad in [
            WalkIndexConfig {
                segments_per_vertex: 0,
                ..base
            },
            WalkIndexConfig {
                segment_length: 0,
                ..base
            },
            WalkIndexConfig {
                frontier_epsilon: 0.0,
                ..base
            },
            WalkIndexConfig {
                frontier_epsilon: f64::INFINITY,
                ..base
            },
            WalkIndexConfig {
                walks_per_unit_residual: 0,
                ..base
            },
            WalkIndexConfig {
                max_walk_hops: 0,
                ..base
            },
            WalkIndexConfig {
                memory_budget_bytes: 0,
                ..base
            },
        ] {
            assert!(
                matches!(
                    bad.validate(),
                    Err(Error::InvalidConfig {
                        context: "WalkIndexConfig",
                        ..
                    })
                ),
                "{bad:?} should fail validation"
            );
        }
    }

    #[test]
    fn budget_shrinks_the_segment_count() {
        let cfg = WalkIndexConfig {
            segments_per_vertex: 8,
            segment_length: 10,
            ..WalkIndexConfig::default()
        };
        let n = 1_000;
        // Unbounded: the full count.
        assert_eq!(cfg.effective_segments(n).unwrap(), 8);
        // Enough for about half the segments.
        let half = WalkIndexConfig {
            memory_budget_bytes: cfg.estimated_bytes(n, 4),
            ..cfg
        };
        assert_eq!(half.effective_segments(n).unwrap(), 4);
        // Not even one segment fits.
        let tiny = WalkIndexConfig {
            memory_budget_bytes: 16,
            ..cfg
        };
        assert!(matches!(
            tiny.effective_segments(n),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn estimated_bytes_grows_with_every_dimension() {
        let cfg = WalkIndexConfig::default();
        assert!(cfg.estimated_bytes(100, 2) < cfg.estimated_bytes(200, 2));
        assert!(cfg.estimated_bytes(100, 2) < cfg.estimated_bytes(100, 4));
        let longer = WalkIndexConfig {
            segment_length: cfg.segment_length * 2,
            ..cfg
        };
        assert!(cfg.estimated_bytes(100, 2) < longer.estimated_bytes(100, 2));
    }
}
