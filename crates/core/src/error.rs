//! The crate-wide typed error.
//!
//! [`Error`] is defined in `frogwild_graph` (the bottom of the workspace dependency
//! stack) and re-exported here as the canonical `frogwild::Error`. Every validator,
//! driver, and [`Session`](crate::session::Session) query in the workspace reports
//! failures through it, so callers can match on the failure domain — configuration,
//! graph, partitioning, or query — instead of parsing strings.

pub use frogwild_graph::Error;

/// Convenient result alias for fallible `frogwild` operations.
pub type Result<T> = std::result::Result<T, Error>;
