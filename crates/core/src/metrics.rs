//! The paper's accuracy metrics.
//!
//! Given the true PageRank vector π and an estimate v, Section 2.1.1 defines two
//! metrics over the top-k sets:
//!
//! * **Mass captured** `µ_k(v) = π(argmax_{|S|=k} v(S))` — take the k vertices the
//!   estimate ranks highest and measure how much *true* PageRank mass they hold. The
//!   figures report it normalized by the optimum `µ_k(π)`.
//! * **Exact identification** — the fraction of the estimated top-k that also belongs
//!   to the true top-k.

use crate::topk::{set_mass, top_k};
use serde::{Deserialize, Serialize};

/// Result of the mass-captured metric.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MassCaptured {
    /// π-mass of the estimate's top-k set: `µ_k(v)`.
    pub captured: f64,
    /// π-mass of the true top-k set: `µ_k(π)`, the optimum.
    pub optimal: f64,
}

impl MassCaptured {
    /// Captured mass normalized by the optimum (the quantity plotted in Figures 2–7).
    /// Defined as 1 when the optimum is zero (both sets capture nothing).
    pub fn normalized(&self) -> f64 {
        if self.optimal <= 0.0 {
            1.0
        } else {
            self.captured / self.optimal
        }
    }

    /// The absolute loss `µ_k(π) - µ_k(v)` bounded by Theorem 1's ε.
    pub fn loss(&self) -> f64 {
        (self.optimal - self.captured).max(0.0)
    }
}

/// Computes the mass-captured metric (Definition 2) for the top-`k` vertices of
/// `estimate`, evaluated under the reference distribution `truth`.
///
/// # Panics
///
/// Panics if the two vectors have different lengths.
pub fn mass_captured(estimate: &[f64], truth: &[f64], k: usize) -> MassCaptured {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "estimate and reference must cover the same vertex set"
    );
    let estimated_set = top_k(estimate, k);
    let true_set = top_k(truth, k);
    MassCaptured {
        captured: set_mass(truth, &estimated_set),
        optimal: set_mass(truth, &true_set),
    }
}

/// Computes the exact-identification metric: `|top_k(estimate) ∩ top_k(truth)| / k`.
///
/// # Panics
///
/// Panics if the two vectors have different lengths or `k == 0`.
pub fn exact_identification(estimate: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "estimate and reference must cover the same vertex set"
    );
    assert!(k > 0, "k must be positive");
    let estimated_set = top_k(estimate, k);
    let mut true_set = top_k(truth, k);
    true_set.sort_unstable();
    let hits = estimated_set
        .iter()
        .filter(|v| true_set.binary_search(v).is_ok())
        .count();
    let denom = k.min(truth.len());
    hits as f64 / denom as f64
}

/// The l1 distance `‖a - b‖₁` between two score vectors, used by the theory checks
/// (Lemma 17 relates captured-mass loss to the l1 distance).
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have the same length");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// The l2 distance `‖a - b‖₂`.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have the same length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_captures_optimal_mass() {
        let truth = vec![0.4, 0.3, 0.2, 0.1];
        let m = mass_captured(&truth.clone(), &truth, 2);
        assert!((m.captured - 0.7).abs() < 1e-12);
        assert!((m.optimal - 0.7).abs() < 1e-12);
        assert!((m.normalized() - 1.0).abs() < 1e-12);
        assert_eq!(m.loss(), 0.0);
    }

    #[test]
    fn wrong_estimate_captures_less() {
        let truth = vec![0.4, 0.3, 0.2, 0.1];
        // estimate ranks the two lightest vertices on top
        let estimate = vec![0.0, 0.0, 0.6, 0.4];
        let m = mass_captured(&estimate, &truth, 2);
        assert!((m.captured - 0.3).abs() < 1e-12);
        assert!((m.optimal - 0.7).abs() < 1e-12);
        assert!(m.normalized() < 0.5);
        assert!((m.loss() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn partial_credit_for_heavy_vertices_outside_true_topk() {
        // The estimate picks the #1 and #3 vertices: mass captured gives credit for the
        // heavy #1 even though #3 is not in the true top-2.
        let truth = vec![0.5, 0.3, 0.15, 0.05];
        let estimate = vec![0.9, 0.0, 0.1, 0.0];
        let m = mass_captured(&estimate, &truth, 2);
        assert!((m.captured - 0.65).abs() < 1e-12);
        let exact = exact_identification(&estimate, &truth, 2);
        assert!((exact - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_identification_extremes() {
        let truth = vec![0.4, 0.3, 0.2, 0.1];
        assert_eq!(exact_identification(&truth.clone(), &truth, 3), 1.0);
        let reversed = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(exact_identification(&reversed, &truth, 2), 0.0);
    }

    #[test]
    fn k_larger_than_n_is_well_defined() {
        let truth = vec![0.6, 0.4];
        let m = mass_captured(&truth.clone(), &truth, 10);
        assert!((m.normalized() - 1.0).abs() < 1e-12);
        assert_eq!(exact_identification(&truth.clone(), &truth, 10), 1.0);
    }

    #[test]
    fn zero_truth_normalizes_to_one() {
        let truth = vec![0.0, 0.0];
        let estimate = vec![0.5, 0.5];
        let m = mass_captured(&estimate, &truth, 1);
        assert_eq!(m.normalized(), 1.0);
    }

    #[test]
    fn distances() {
        let a = vec![0.5, 0.5, 0.0];
        let b = vec![0.25, 0.25, 0.5];
        assert!((l1_distance(&a, &b) - 1.0).abs() < 1e-12);
        let expected_l2 = (0.0625f64 + 0.0625 + 0.25).sqrt();
        assert!((l2_distance(&a, &b) - expected_l2).abs() < 1e-12);
        assert_eq!(l1_distance(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "same vertex set")]
    fn mismatched_lengths_panic() {
        let _ = mass_captured(&[0.5], &[0.5, 0.5], 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn exact_identification_rejects_zero_k() {
        let _ = exact_identification(&[0.5], &[0.5], 0);
    }
}
