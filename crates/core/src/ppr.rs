//! Personalized PageRank (PPR).
//!
//! The paper positions FrogWild against the Personalized-PageRank line of work
//! (Avrachenkov et al., FAST-PPR): PPR measures the influence of a *source* vertex on
//! every other vertex, whereas FrogWild targets the global ranking. This module provides
//! the three standard PPR computations so the comparison can actually be run:
//!
//! * [`personalized_pagerank`] — dense power iteration on the personalized chain, the
//!   exact reference;
//! * [`forward_push_ppr`] — the Andersen–Chung–Lang local-push approximation, which only
//!   touches the neighbourhood of the source and is the standard serial baseline for
//!   top-k PPR queries;
//! * [`monte_carlo_ppr`] — walkers released from the source with geometric lifespans,
//!   i.e. exactly the FrogWild estimator restricted to a single start vertex.
//!
//! Global PageRank is the special case where the restart distribution is uniform; the
//! tests pin that identity down.

// lint:allow-file(indexing, dense per-vertex tables indexed by validated vertex ids of the same graph)

use frogwild_graph::{DiGraph, VertexId};
use rand::Rng;

use crate::dist;
use crate::reference::PageRankResult;

/// Exact personalized PageRank by power iteration.
///
/// `restart` is the personalization distribution: with probability
/// `teleport_probability` the walk restarts from a vertex drawn from `restart` instead
/// of the uniform distribution used by global PageRank. The vector must be non-negative
/// and is normalised internally; a single-source query passes an indicator vector.
///
/// Dangling vertices send their mass back to the restart distribution, the conventional
/// fix for personalized chains (sending it uniformly would leak mass out of the
/// personalized component).
///
/// # Panics
///
/// Panics if `restart` has the wrong length, sums to zero, or contains negative entries,
/// or if `teleport_probability` is outside `(0, 1)`.
pub fn personalized_pagerank(
    graph: &DiGraph,
    restart: &[f64],
    teleport_probability: f64,
    max_iterations: usize,
    tolerance: f64,
) -> PageRankResult {
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    let n = graph.num_vertices();
    assert_eq!(restart.len(), n, "restart vector must cover the vertex set");
    assert!(
        restart.iter().all(|&r| r >= 0.0 && r.is_finite()),
        "restart vector must be non-negative and finite"
    );
    let restart_total: f64 = restart.iter().sum();
    assert!(
        restart_total > 0.0,
        "restart vector must have positive mass"
    );

    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            residual: 0.0,
        };
    }
    let restart: Vec<f64> = restart.iter().map(|&r| r / restart_total).collect();

    let mut current = restart.clone();
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    for _ in 0..max_iterations {
        iterations += 1;
        let dangling_mass: f64 = graph
            .vertices()
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| current[v as usize])
            .sum();
        let restart_mass = teleport_probability + (1.0 - teleport_probability) * dangling_mass;
        for (x, &r) in next.iter_mut().zip(restart.iter()) {
            *x = restart_mass * r;
        }
        for v in graph.vertices() {
            let deg = graph.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = (1.0 - teleport_probability) * current[v as usize] / deg as f64;
            for &dst in graph.out_neighbors(v) {
                next[dst as usize] += share;
            }
        }
        residual = current
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut current, &mut next);
        if residual < tolerance {
            break;
        }
    }

    PageRankResult {
        scores: current,
        iterations,
        residual,
    }
}

/// Result of a [`forward_push_ppr`] computation.
#[derive(Clone, Debug)]
pub struct ForwardPushResult {
    /// Per-vertex PPR estimate (a lower bound on the exact PPR vector).
    pub estimate: Vec<f64>,
    /// Residual mass left at each vertex; the exact PPR of vertex `v` lies within
    /// `[estimate[v], estimate[v] + Σ_u residual[u] · ppr_u(v)]`.
    pub residual: Vec<f64>,
    /// Number of individual push operations performed (the work measure the local-push
    /// literature reports).
    pub pushes: usize,
}

impl ForwardPushResult {
    /// Total residual mass not yet converted into estimates; at most
    /// `epsilon · Σ_v d_out(v)` by the push termination rule.
    pub fn residual_mass(&self) -> f64 {
        self.residual.iter().sum()
    }
}

/// Forward-push (Andersen–Chung–Lang) local approximation of single-source PPR.
///
/// Maintains an `estimate` and a `residual` vector, both zero except at `source`
/// initially. While some vertex `u` holds residual mass above `epsilon · d_out(u)`, the
/// push rule moves `teleport_probability · r(u)` into `estimate[u]` and spreads the rest
/// over `u`'s out-neighbours. The run time is `O(1 / (epsilon · teleport_probability))`
/// *independent of the graph size*, which is why local push is the baseline of choice
/// for top-k PPR.
///
/// # Panics
///
/// Panics if `source` is out of range, `epsilon` is not positive, or
/// `teleport_probability` is outside `(0, 1)`.
pub fn forward_push_ppr(
    graph: &DiGraph,
    source: VertexId,
    teleport_probability: f64,
    epsilon: f64,
) -> ForwardPushResult {
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex {source} out of range");

    let mut estimate = vec![0.0f64; n];
    let mut residual = vec![0.0f64; n];
    residual[source as usize] = 1.0;
    // Queue of vertices whose residual exceeds the push threshold. `queued` avoids
    // duplicate entries; a vertex is re-examined when new residual arrives.
    let mut queue: Vec<VertexId> = vec![source];
    let mut queued = vec![false; n];
    queued[source as usize] = true;
    let mut pushes = 0usize;

    while let Some(u) = queue.pop() {
        queued[u as usize] = false;
        let deg = graph.out_degree(u);
        let r = residual[u as usize];
        // Dangling vertices keep their residual as estimate directly: a walk stuck at a
        // sink can only terminate there.
        if deg == 0 {
            estimate[u as usize] += r;
            residual[u as usize] = 0.0;
            continue;
        }
        if r < epsilon * deg as f64 {
            continue;
        }
        pushes += 1;
        estimate[u as usize] += teleport_probability * r;
        residual[u as usize] = 0.0;
        let share = (1.0 - teleport_probability) * r / deg as f64;
        for &v in graph.out_neighbors(u) {
            residual[v as usize] += share;
            let vdeg = graph.out_degree(v).max(1);
            if !queued[v as usize] && residual[v as usize] >= epsilon * vdeg as f64 {
                queued[v as usize] = true;
                queue.push(v);
            }
        }
    }

    ForwardPushResult {
        estimate,
        residual,
        pushes,
    }
}

/// Monte-Carlo single-source PPR: `num_walkers` walkers start at `source`, take a
/// `Geometric(p_T)` number of steps (truncated at `max_steps`), and the empirical
/// distribution of their final positions estimates the PPR vector of `source`.
///
/// Walkers stranded on a dangling vertex restart from `source`, mirroring the mass
/// convention of [`personalized_pagerank`].
pub fn monte_carlo_ppr<R: Rng + ?Sized>(
    graph: &DiGraph,
    source: VertexId,
    num_walkers: u64,
    max_steps: usize,
    teleport_probability: f64,
    rng: &mut R,
) -> Vec<f64> {
    monte_carlo_ppr_counted(
        graph,
        source,
        num_walkers,
        max_steps,
        teleport_probability,
        rng,
    )
    .0
}

/// [`monte_carlo_ppr`] that also reports the total hops walked — the per-hop sampling
/// work the estimator actually performed, used by the query service's cost accounting
/// (and the number the walk-index subsystem exists to avoid re-paying).
pub fn monte_carlo_ppr_counted<R: Rng + ?Sized>(
    graph: &DiGraph,
    source: VertexId,
    num_walkers: u64,
    max_steps: usize,
    teleport_probability: f64,
    rng: &mut R,
) -> (Vec<f64>, u64) {
    assert!(
        teleport_probability > 0.0 && teleport_probability <= 1.0,
        "teleport probability must be in (0, 1]"
    );
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source vertex {source} out of range");
    let mut counts = vec![0u64; n];
    if num_walkers == 0 {
        return (vec![0.0; n], 0);
    }
    let mut hops = 0u64;
    for _ in 0..num_walkers {
        let mut position = source;
        let lifespan = dist::geometric(teleport_probability, rng).min(max_steps as u64);
        hops += lifespan;
        for _ in 0..lifespan {
            let neighbors = graph.out_neighbors(position);
            if neighbors.is_empty() {
                position = source;
                continue;
            }
            position = neighbors[rng.gen_range(0..neighbors.len())];
        }
        counts[position as usize] += 1;
    }
    let estimate = counts
        .into_iter()
        .map(|c| c as f64 / num_walkers as f64)
        .collect();
    (estimate, hops)
}

/// Convenience: the indicator restart vector for a single source vertex.
pub fn single_source_restart(num_vertices: usize, source: VertexId) -> Vec<f64> {
    assert!(
        (source as usize) < num_vertices,
        "source vertex {source} out of range"
    );
    let mut restart = vec![0.0; num_vertices];
    restart[source as usize] = 1.0;
    restart
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{l1_distance, mass_captured};
    use crate::reference::exact_pagerank;
    use frogwild_graph::generators::simple::{cycle, star};
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize, seed: u64) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        rmat(n, RmatParams::default(), &mut rng)
    }

    #[test]
    fn uniform_restart_recovers_global_pagerank() {
        let g = test_graph(300, 3);
        let n = g.num_vertices();
        let uniform = vec![1.0 / n as f64; n];
        let ppr = personalized_pagerank(&g, &uniform, 0.15, 200, 1e-12);
        let global = exact_pagerank(&g, 0.15, 200, 1e-12);
        assert!(l1_distance(&ppr.scores, &global.scores) < 1e-8);
    }

    #[test]
    fn ppr_is_a_distribution_and_favours_the_source_neighbourhood() {
        let g = test_graph(400, 5);
        let restart = single_source_restart(g.num_vertices(), 7);
        let ppr = personalized_pagerank(&g, &restart, 0.15, 200, 1e-12);
        let total: f64 = ppr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The source holds at least the teleport mass it receives every step.
        assert!(
            ppr.scores[7] >= 0.15 - 1e-9,
            "source score {}",
            ppr.scores[7]
        );
        // And it is (one of) the heaviest vertices of its own PPR vector.
        let max = ppr.scores.iter().cloned().fold(f64::MIN, f64::max);
        assert!(ppr.scores[7] > 0.5 * max);
    }

    #[test]
    fn restart_vector_is_normalised_internally() {
        let g = star(20);
        let mut restart = vec![0.0; 20];
        restart[3] = 10.0; // unnormalised single-source vector
        let scaled = personalized_pagerank(&g, &restart, 0.15, 100, 1e-12);
        let unit = personalized_pagerank(&g, &single_source_restart(20, 3), 0.15, 100, 1e-12);
        assert!(l1_distance(&scaled.scores, &unit.scores) < 1e-12);
    }

    #[test]
    fn forward_push_lower_bounds_and_approximates_exact_ppr() {
        let g = test_graph(400, 9);
        let source = 11;
        let exact = personalized_pagerank(
            &g,
            &single_source_restart(g.num_vertices(), source),
            0.15,
            300,
            1e-12,
        );
        let push = forward_push_ppr(&g, source, 0.15, 1e-7);
        assert!(push.pushes > 0);
        // estimate + residual conserve all the mass that entered the system
        let total = push.estimate.iter().sum::<f64>() + push.residual_mass();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        for (v, (&e, &x)) in push.estimate.iter().zip(exact.scores.iter()).enumerate() {
            assert!(
                e <= x + 1e-6,
                "push over-estimates vertex {v}: {e} > exact {x}"
            );
        }
        // With a tight epsilon the heavy vertices are identified correctly.
        let m = mass_captured(&push.estimate, &exact.scores, 10);
        assert!(m.normalized() > 0.9, "captured {}", m.normalized());
    }

    #[test]
    fn forward_push_work_shrinks_with_looser_epsilon() {
        let g = test_graph(500, 13);
        let tight = forward_push_ppr(&g, 3, 0.15, 1e-7);
        let loose = forward_push_ppr(&g, 3, 0.15, 1e-3);
        assert!(
            loose.pushes <= tight.pushes,
            "loose {} vs tight {}",
            loose.pushes,
            tight.pushes
        );
        assert!(loose.residual_mass() >= tight.residual_mass() - 1e-12);
    }

    #[test]
    fn forward_push_on_a_cycle_decays_with_distance() {
        let g = cycle(30);
        let push = forward_push_ppr(&g, 0, 0.2, 1e-10);
        // PPR mass decays geometrically along the only path.
        assert!(push.estimate[1] > push.estimate[5]);
        assert!(push.estimate[5] > push.estimate[15]);
    }

    #[test]
    fn monte_carlo_ppr_matches_exact_on_heavy_vertices() {
        let g = test_graph(300, 17);
        let source = 5;
        let exact = personalized_pagerank(
            &g,
            &single_source_restart(g.num_vertices(), source),
            0.15,
            300,
            1e-12,
        );
        let mut rng = SmallRng::seed_from_u64(99);
        let mc = monte_carlo_ppr(&g, source, 60_000, 40, 0.15, &mut rng);
        let total: f64 = mc.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let m = mass_captured(&mc, &exact.scores, 10);
        assert!(m.normalized() > 0.85, "captured {}", m.normalized());
    }

    #[test]
    fn monte_carlo_ppr_zero_walkers() {
        let g = star(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let mc = monte_carlo_ppr(&g, 0, 0, 10, 0.15, &mut rng);
        assert_eq!(mc, vec![0.0; 10]);
    }

    #[test]
    #[should_panic(expected = "restart vector must have positive mass")]
    fn rejects_zero_restart_vector() {
        let g = star(5);
        let _ = personalized_pagerank(&g, &[0.0; 5], 0.15, 10, 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_source_restart_rejects_bad_vertex() {
        let _ = single_source_restart(5, 9);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn forward_push_rejects_zero_epsilon() {
        let g = star(5);
        let _ = forward_push_ppr(&g, 0, 0.15, 0.0);
    }
}
