//! Experiment drivers: the low-level layer underneath [`crate::session`].
//!
//! These functions wire together graph partitioning, the engine, and the vertex
//! programs, and return a [`RunReport`] holding both the PageRank estimate and the cost
//! metrics (simulated time, network bytes, CPU work) that the paper's figures plot.
//!
//! For parameter sweeps that reuse one cluster layout (e.g. sweeping `p_s` at a fixed
//! machine count), partition once with [`partition_graph`] and call the fallible `*_on`
//! variants; they validate the configuration and return a typed [`Error`] instead of
//! panicking. Applications that serve a *query stream* should use
//! [`Session`](crate::session::Session) instead, which owns the partitioned layout,
//! answers [`Query`](crate::session::Query) values, and tracks cumulative amortized
//! cost. (The 0.1-era one-shot `run_frogwild` / `run_graphlab_pr` free functions that
//! re-partitioned per call were deprecated in 0.2 and have been removed;
//! [`run_sparsified_pr`] remains one-shot because sparsification changes the edge set
//! and therefore genuinely needs its own partitioning.)

use frogwild_engine::{
    ClusterConfig, CostModel, Engine, EngineConfig, InitialActivation, ObliviousPartitioner,
    PartitionedGraph, RunMetrics, SyncPolicy,
};
use frogwild_graph::sparsify::{uniform_sparsify, SparsifyMode};
use frogwild_graph::{DiGraph, VertexId};
use frogwild_obs::Tracer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::{ExecutionConfig, FrogWildConfig, PageRankConfig, Scheduling};
use crate::error::Error;
use crate::programs::{FrogWildProgram, PageRankProgram};
use crate::topk::normalize;

/// Headline cost numbers derived from the engine metrics — one row of the paper's
/// Figure 1 per run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CostSummary {
    /// Total simulated wall-clock seconds (Figure 1b / "Total time").
    pub simulated_total_seconds: f64,
    /// Mean simulated seconds per superstep (Figure 1a / "Time per iteration").
    pub simulated_seconds_per_iteration: f64,
    /// Total simulated CPU seconds summed over machines (Figure 1d / "CPU usage").
    pub simulated_cpu_seconds: f64,
    /// Total bytes crossing machine boundaries (Figure 1c / "Network sent").
    pub network_bytes: u64,
    /// Total cross-machine messages after combining.
    pub network_messages: u64,
    /// Real (host) seconds the simulator spent executing.
    pub host_seconds: f64,
    /// Number of supersteps executed.
    pub supersteps: usize,
    /// Replication factor of the vertex-cut used.
    pub replication_factor: f64,
    /// Mirror synchronizations skipped by partial synchronization.
    pub skipped_syncs: u64,
    /// Active vertices that scheduled no scatter (structural `needs_scatter` plus
    /// delta gating).
    pub skipped_scatters: u64,
    /// Messages delivered to master inboxes after combining, local deliveries
    /// included.
    pub routed_messages: u64,
    /// Sum of per-superstep frontier sizes.
    pub active_vertices: u64,
    /// Total delivery lag (supersteps late versus synchronous delivery) accumulated
    /// by drained messages under bounded-staleness execution. 0 for synchronous runs.
    pub staleness_lag: u64,
    /// Deepest staging-inbox backlog observed at the end of any superstep. 0 for
    /// synchronous runs.
    pub max_inbox_depth: u64,
    /// Simulated barrier-wait seconds avoided by bounded-staleness overlap. 0 for
    /// synchronous runs.
    pub barrier_wait_avoided_seconds: f64,
}

impl CostSummary {
    /// Derives the summary from raw engine metrics under the given cost model.
    pub fn from_metrics(metrics: &RunMetrics, model: &CostModel) -> Self {
        CostSummary {
            simulated_total_seconds: metrics.total_simulated_seconds(),
            simulated_seconds_per_iteration: metrics.seconds_per_superstep(),
            simulated_cpu_seconds: metrics.total_cpu_seconds(model),
            network_bytes: metrics.total_bytes(),
            network_messages: metrics.total_messages(),
            host_seconds: metrics.total_host_seconds(),
            supersteps: metrics.num_supersteps(),
            replication_factor: metrics.replication_factor,
            skipped_syncs: metrics.total_skipped_syncs(),
            skipped_scatters: metrics.total_skipped_scatters(),
            routed_messages: metrics.total_routed_messages(),
            active_vertices: metrics.total_active_vertices(),
            staleness_lag: metrics.total_staleness_lag(),
            max_inbox_depth: metrics.max_inbox_depth(),
            barrier_wait_avoided_seconds: metrics.total_barrier_wait_avoided_seconds(),
        }
    }
}

/// Result of one algorithm run on the simulated cluster.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Human-readable algorithm label (used in figure legends), e.g.
    /// `"FrogWild ps=0.4"` or `"GraphLab PR 2 iters"`.
    pub algorithm: String,
    /// Normalised per-vertex score estimate (sums to 1 unless the run produced nothing).
    pub estimate: Vec<f64>,
    /// Raw per-superstep engine metrics.
    pub metrics: RunMetrics,
    /// Derived headline cost numbers.
    pub cost: CostSummary,
}

impl RunReport {
    /// The top-`k` vertices of the estimate.
    pub fn top_k(&self, k: usize) -> Vec<VertexId> {
        crate::topk::top_k(&self.estimate, k)
    }
}

/// Partitions `graph` over the cluster with the default (oblivious / greedy) ingress,
/// matching GraphLab's default.
pub fn partition_graph(graph: &DiGraph, cluster: &ClusterConfig) -> PartitionedGraph {
    PartitionedGraph::build(
        graph,
        cluster.num_machines,
        &ObliviousPartitioner,
        cluster.seed,
    )
}

/// Runs FrogWild on an already partitioned graph (reuse the layout across sweeps).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the configuration fails
/// [`FrogWildConfig::validate`].
pub fn run_frogwild_on(pg: &PartitionedGraph, config: &FrogWildConfig) -> Result<RunReport, Error> {
    run_frogwild_scheduled(pg, config, &Scheduling::default())
}

/// Runs FrogWild with explicit worker-pool [`Scheduling`] knobs — a thin wrapper
/// over [`run_frogwild_with`] for callers that have not adopted
/// [`ExecutionConfig`] yet. The knobs only change how the work is spread over host
/// threads; the estimate and all counted costs are identical to [`run_frogwild_on`].
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the configuration fails
/// [`FrogWildConfig::validate`].
pub fn run_frogwild_scheduled(
    pg: &PartitionedGraph,
    config: &FrogWildConfig,
    scheduling: &Scheduling,
) -> Result<RunReport, Error> {
    run_frogwild_with(pg, config, &ExecutionConfig::from(*scheduling))
}

/// Runs FrogWild under a unified [`ExecutionConfig`]: worker-pool scheduling, an
/// optional tolerance override, and bounded-staleness asynchrony. `workers` and
/// `batch_size` never change results; `staleness > 0` changes them
/// deterministically (bit-identical across worker counts for a fixed bound), and
/// `staleness = 0` reproduces [`run_frogwild_on`] bit-for-bit.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when either configuration fails validation.
pub fn run_frogwild_with(
    pg: &PartitionedGraph,
    config: &FrogWildConfig,
    execution: &ExecutionConfig,
) -> Result<RunReport, Error> {
    run_frogwild_traced(pg, config, execution, &Tracer::disabled())
}

/// [`run_frogwild_with`] plus a tracing handle: the engine records per-phase,
/// per-batch spans into `tracer` (see [`crate::obs`]). Tracing only observes — the
/// estimate and every counted cost are bit-identical to the untraced run.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when either configuration fails validation.
pub fn run_frogwild_traced(
    pg: &PartitionedGraph,
    config: &FrogWildConfig,
    execution: &ExecutionConfig,
    tracer: &Tracer,
) -> Result<RunReport, Error> {
    execution.validate()?;
    let program = FrogWildProgram::new(config)?;
    let engine_config = EngineConfig {
        sync_policy: config.sync_policy(),
        cost_model: CostModel::default(),
        max_supersteps: config.iterations,
        seed: config.seed,
        parallel: config.parallel,
        tolerance: execution.effective_tolerance(config.tolerance),
        workers: execution.workers,
        batch_size: execution.batch_size,
        staleness: execution.staleness,
        tracer: tracer.clone(),
    };
    let cost_model = engine_config.cost_model;
    let engine = Engine::new(pg, program, engine_config)?;

    // Walkers are born on uniformly random vertices; each machine creates its own share
    // locally, so the initial placement costs no network traffic.
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5EED_F206);
    let n = pg.num_vertices();
    let mut birth_counts = vec![0u64; n];
    for _ in 0..config.num_walkers {
        // lint:allow(indexing, gen_range is bounded by the vertex count)
        birth_counts[rng.gen_range(0..n)] += 1;
    }
    let initial: Vec<(VertexId, u64)> = birth_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(v, &c)| (v as VertexId, c))
        .collect();

    let output = engine.run(InitialActivation::Messages(initial));

    // Estimator of Definition 5: the fraction of walkers that ended on each vertex.
    // (`live` is non-zero only if the engine stopped early; counting it keeps the
    // estimator a distribution in every case.)
    let mut estimate: Vec<f64> = output
        .states
        .iter()
        .map(|s| (s.stopped + s.live) as f64 / config.num_walkers as f64)
        .collect();
    normalize(&mut estimate);

    let cost = CostSummary::from_metrics(&output.metrics, &cost_model);
    Ok(RunReport {
        algorithm: format!(
            "FrogWild ps={} iters={} walkers={}",
            config.sync_probability, config.iterations, config.num_walkers
        ),
        estimate,
        metrics: output.metrics,
        cost,
    })
}

/// Runs the baseline PageRank on an already partitioned graph.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the configuration fails
/// [`PageRankConfig::validate`].
pub fn run_graphlab_pr_on(
    pg: &PartitionedGraph,
    config: &PageRankConfig,
) -> Result<RunReport, Error> {
    run_graphlab_pr_scheduled(pg, config, &Scheduling::default())
}

/// Runs the baseline PageRank with explicit worker-pool [`Scheduling`] knobs — a
/// thin wrapper over [`run_graphlab_pr_with`] for callers that have not adopted
/// [`ExecutionConfig`] yet. The scheduling knobs never change results.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the configuration fails
/// [`PageRankConfig::validate`].
pub fn run_graphlab_pr_scheduled(
    pg: &PartitionedGraph,
    config: &PageRankConfig,
    scheduling: &Scheduling,
) -> Result<RunReport, Error> {
    run_graphlab_pr_with(pg, config, &ExecutionConfig::from(*scheduling))
}

/// Runs the baseline PageRank under a unified [`ExecutionConfig`]. The configured
/// [`PageRankConfig::tolerance`] becomes the executor's delta-gating threshold
/// (GraphLab's dynamic scheduling) unless the execution config overrides it;
/// `staleness > 0` delays activation signals deterministically, and `staleness = 0`
/// reproduces [`run_graphlab_pr_on`] bit-for-bit.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when either configuration fails validation.
pub fn run_graphlab_pr_with(
    pg: &PartitionedGraph,
    config: &PageRankConfig,
    execution: &ExecutionConfig,
) -> Result<RunReport, Error> {
    run_graphlab_pr_traced(pg, config, execution, &Tracer::disabled())
}

/// [`run_graphlab_pr_with`] plus a tracing handle: the engine records per-phase,
/// per-batch spans into `tracer` (see [`crate::obs`]). Tracing only observes — it
/// never changes the estimate or the counted costs.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when either configuration fails validation.
pub fn run_graphlab_pr_traced(
    pg: &PartitionedGraph,
    config: &PageRankConfig,
    execution: &ExecutionConfig,
    tracer: &Tracer,
) -> Result<RunReport, Error> {
    execution.validate()?;
    let program = PageRankProgram::new(config)?;
    let engine_config = EngineConfig {
        sync_policy: SyncPolicy::Full,
        cost_model: CostModel::default(),
        max_supersteps: config.max_iterations,
        seed: config.seed,
        parallel: config.parallel,
        tolerance: execution.effective_tolerance(config.tolerance),
        workers: execution.workers,
        batch_size: execution.batch_size,
        staleness: execution.staleness,
        tracer: tracer.clone(),
    };
    let cost_model = engine_config.cost_model;
    let engine = Engine::new(pg, program, engine_config)?;
    let output = engine.run(InitialActivation::AllVertices);

    let mut estimate: Vec<f64> = output.states.iter().map(|s| s.rank).collect();
    normalize(&mut estimate);

    let cost = CostSummary::from_metrics(&output.metrics, &cost_model);
    let label = if config.max_iterations >= 50 {
        "GraphLab PR exact".to_string()
    } else {
        format!("GraphLab PR {} iters", config.max_iterations)
    };
    Ok(RunReport {
        algorithm: label,
        estimate,
        metrics: output.metrics,
        cost,
    })
}

/// The Figure 5 baseline: uniformly sparsify the graph (keep each edge with probability
/// `keep_probability`), then run the truncated PageRank on the sparsified graph over
/// the same cluster. The returned estimate indexes the *original* vertex set, so it can
/// be scored against the original graph's exact PageRank directly.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the PageRank configuration is invalid or
/// `keep_probability` lies outside `[0, 1]`.
pub fn run_sparsified_pr(
    graph: &DiGraph,
    cluster: &ClusterConfig,
    keep_probability: f64,
    config: &PageRankConfig,
) -> Result<RunReport, Error> {
    if !(0.0..=1.0).contains(&keep_probability) {
        return Err(Error::config(
            "run_sparsified_pr",
            format!("keep_probability must be in [0, 1], got {keep_probability}"),
        ));
    }
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5710_51F7);
    let sparsified = uniform_sparsify(
        graph,
        keep_probability,
        SparsifyMode::KeepAtLeastOne,
        &mut rng,
    );
    let pg = partition_graph(&sparsified, cluster);
    let mut report = run_graphlab_pr_on(&pg, config)?;
    report.algorithm = format!(
        "Sparsified PR q={} {} iters",
        keep_probability, config.max_iterations
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{exact_identification, mass_captured};
    use crate::reference::exact_pagerank;
    use frogwild_graph::generators::simple::star;
    use frogwild_graph::generators::{rmat, RmatParams};

    fn test_graph(n: usize) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(1234);
        rmat(n, RmatParams::default(), &mut rng)
    }

    fn small_cluster() -> ClusterConfig {
        ClusterConfig::new(4, 7)
    }

    #[test]
    fn frogwild_estimate_is_a_distribution() {
        let g = test_graph(300);
        let config = FrogWildConfig {
            num_walkers: 30_000,
            iterations: 4,
            ..FrogWildConfig::default()
        };
        let report = run_frogwild_on(&partition_graph(&g, &small_cluster()), &config).unwrap();
        let total: f64 = report.estimate.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(report.cost.supersteps, 4);
        assert!(report.cost.network_bytes > 0);
        assert!(report.algorithm.contains("FrogWild"));
    }

    #[test]
    fn frogwild_finds_the_star_hub() {
        let g = star(500);
        let config = FrogWildConfig {
            num_walkers: 20_000,
            iterations: 4,
            ..FrogWildConfig::default()
        };
        let report = run_frogwild_on(&partition_graph(&g, &small_cluster()), &config).unwrap();
        assert_eq!(report.top_k(1), vec![0]);
    }

    #[test]
    fn frogwild_accuracy_against_exact_pagerank() {
        let g = test_graph(500);
        let exact = exact_pagerank(&g, 0.15, 100, 1e-10);
        let config = FrogWildConfig {
            num_walkers: 100_000,
            iterations: 5,
            ..FrogWildConfig::default()
        };
        let report = run_frogwild_on(&partition_graph(&g, &small_cluster()), &config).unwrap();
        let m = mass_captured(&report.estimate, &exact.scores, 30);
        assert!(m.normalized() > 0.85, "captured {}", m.normalized());
    }

    #[test]
    fn partial_sync_reduces_network_but_keeps_accuracy_reasonable() {
        let g = test_graph(500);
        let exact = exact_pagerank(&g, 0.15, 100, 1e-10);
        let cluster = ClusterConfig::new(8, 3);
        let pg = partition_graph(&g, &cluster);
        let base = FrogWildConfig {
            num_walkers: 100_000,
            iterations: 4,
            ..FrogWildConfig::default()
        };
        let full = run_frogwild_on(&pg, &base).unwrap();
        let partial = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                sync_probability: 0.2,
                ..base
            },
        )
        .unwrap();
        assert!(
            partial.cost.network_bytes < full.cost.network_bytes,
            "partial {} vs full {}",
            partial.cost.network_bytes,
            full.cost.network_bytes
        );
        assert!(partial.cost.skipped_syncs > 0);
        let m = mass_captured(&partial.estimate, &exact.scores, 30);
        assert!(m.normalized() > 0.7, "captured {}", m.normalized());
    }

    #[test]
    fn graphlab_pr_converges_to_exact_pagerank() {
        let g = test_graph(300);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let report = run_graphlab_pr_on(
            &partition_graph(&g, &small_cluster()),
            &PageRankConfig::exact(),
        )
        .unwrap();
        let m = mass_captured(&report.estimate, &exact.scores, 30);
        assert!(m.normalized() > 0.999, "captured {}", m.normalized());
        let ident = exact_identification(&report.estimate, &exact.scores, 30);
        assert!(ident > 0.95, "identified {ident}");
        assert!(report.algorithm.contains("exact"));
    }

    #[test]
    fn truncated_pr_is_less_accurate_than_exact() {
        let g = test_graph(400);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let cluster = small_cluster();
        let pg = partition_graph(&g, &cluster);
        let one = run_graphlab_pr_on(&pg, &PageRankConfig::truncated(1)).unwrap();
        let two = run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2)).unwrap();
        let m1 = mass_captured(&one.estimate, &exact.scores, 30).normalized();
        let m2 = mass_captured(&two.estimate, &exact.scores, 30).normalized();
        assert!(
            m2 >= m1 - 0.02,
            "2 iters ({m2}) should not be worse than 1 iter ({m1})"
        );
        assert!(m1 < 0.999, "1 iteration should not be exact");
        assert_eq!(one.cost.supersteps, 1);
        assert_eq!(two.cost.supersteps, 2);
    }

    #[test]
    fn frogwild_uses_less_network_than_exact_pr() {
        let g = test_graph(600);
        let cluster = ClusterConfig::new(8, 5);
        let pg = partition_graph(&g, &cluster);
        let fw = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: 50_000,
                iterations: 4,
                sync_probability: 0.4,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        let pr = run_graphlab_pr_on(
            &pg,
            &PageRankConfig {
                max_iterations: 20,
                tolerance: 1e-9,
                ..PageRankConfig::default()
            },
        )
        .unwrap();
        assert!(
            fw.cost.network_bytes < pr.cost.network_bytes,
            "FrogWild {} bytes vs PR {} bytes",
            fw.cost.network_bytes,
            pr.cost.network_bytes
        );
        assert!(
            fw.cost.simulated_total_seconds < pr.cost.simulated_total_seconds,
            "FrogWild {}s vs PR {}s",
            fw.cost.simulated_total_seconds,
            pr.cost.simulated_total_seconds
        );
    }

    #[test]
    fn sparsified_pr_runs_and_scores_against_original_graph() {
        let g = test_graph(400);
        let exact = exact_pagerank(&g, 0.15, 200, 1e-12);
        let report =
            run_sparsified_pr(&g, &small_cluster(), 0.7, &PageRankConfig::truncated(2)).unwrap();
        assert_eq!(report.estimate.len(), g.num_vertices());
        let m = mass_captured(&report.estimate, &exact.scores, 30);
        assert!(m.normalized() > 0.5, "captured {}", m.normalized());
        assert!(report.algorithm.contains("Sparsified"));
    }

    #[test]
    fn binomial_scatter_variant_also_works() {
        let g = test_graph(300);
        let exact = exact_pagerank(&g, 0.15, 100, 1e-10);
        let config = FrogWildConfig {
            num_walkers: 60_000,
            iterations: 4,
            binomial_scatter: true,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        };
        let report = run_frogwild_on(&partition_graph(&g, &small_cluster()), &config).unwrap();
        let m = mass_captured(&report.estimate, &exact.scores, 30);
        assert!(m.normalized() > 0.75, "captured {}", m.normalized());
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let g = test_graph(300);
        let cluster = small_cluster();
        let pg = partition_graph(&g, &cluster);
        let base = FrogWildConfig {
            num_walkers: 20_000,
            iterations: 3,
            sync_probability: 0.4,
            ..FrogWildConfig::default()
        };
        let serial = run_frogwild_on(&pg, &base).unwrap();
        let parallel = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                parallel: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(serial.estimate, parallel.estimate);
        assert_eq!(serial.cost.network_bytes, parallel.cost.network_bytes);
    }

    #[test]
    fn scheduling_knobs_never_change_results() {
        let g = test_graph(300);
        let pg = partition_graph(&g, &small_cluster());
        let base = FrogWildConfig {
            num_walkers: 20_000,
            iterations: 3,
            sync_probability: 0.7,
            parallel: true,
            ..FrogWildConfig::default()
        };
        let reference = run_frogwild_on(&pg, &base).unwrap();
        for scheduling in [
            Scheduling::with_workers(2),
            Scheduling::with_workers(7),
            Scheduling {
                workers: 3,
                batch_size: 17,
            },
            Scheduling {
                workers: 0,
                batch_size: 1,
            },
        ] {
            let run = run_frogwild_scheduled(&pg, &base, &scheduling).unwrap();
            assert_eq!(reference.estimate, run.estimate, "{scheduling:?}");
            assert_eq!(reference.cost.network_bytes, run.cost.network_bytes);
            assert_eq!(reference.cost.routed_messages, run.cost.routed_messages);
        }
    }

    #[test]
    fn execution_config_at_staleness_zero_matches_the_scheduled_driver_bit_for_bit() {
        let g = test_graph(300);
        let pg = partition_graph(&g, &small_cluster());
        let config = FrogWildConfig {
            num_walkers: 20_000,
            iterations: 4,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        };
        let scheduled = run_frogwild_scheduled(&pg, &config, &Scheduling::with_workers(2)).unwrap();
        let unified = run_frogwild_with(&pg, &config, &ExecutionConfig::new().workers(2)).unwrap();
        assert!(scheduled
            .estimate
            .iter()
            .zip(&unified.estimate)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(scheduled.cost.network_bytes, unified.cost.network_bytes);
        assert_eq!(unified.cost.staleness_lag, 0);
        assert_eq!(unified.cost.max_inbox_depth, 0);
        assert_eq!(unified.cost.barrier_wait_avoided_seconds, 0.0);
    }

    #[test]
    fn stale_frogwild_keeps_a_distribution_and_reports_staleness_metrics() {
        let g = test_graph(400);
        let pg = partition_graph(&g, &ClusterConfig::new(8, 3));
        let config = FrogWildConfig {
            num_walkers: 30_000,
            iterations: 5,
            sync_probability: 0.7,
            ..FrogWildConfig::default()
        };
        let exec = ExecutionConfig::new().staleness(2);
        let stale = run_frogwild_with(&pg, &config, &exec).unwrap();
        let total: f64 = stale.estimate.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "walkers lost: sum {total}");
        assert!(stale.cost.staleness_lag > 0);
        assert!(stale.cost.barrier_wait_avoided_seconds > 0.0);
        // Deterministic: the same configuration reproduces itself bit-for-bit.
        let again = run_frogwild_with(&pg, &config, &exec).unwrap();
        assert!(stale
            .estimate
            .iter()
            .zip(&again.estimate)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(stale.cost.staleness_lag, again.cost.staleness_lag);
    }

    #[test]
    fn execution_tolerance_override_gates_like_the_config_tolerance() {
        let g = test_graph(500);
        let pg = partition_graph(&g, &ClusterConfig::new(8, 3));
        let base = FrogWildConfig {
            num_walkers: 5_000,
            iterations: 6,
            ..FrogWildConfig::default()
        };
        let via_config = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                tolerance: 2.0,
                ..base
            },
        )
        .unwrap();
        let via_exec =
            run_frogwild_with(&pg, &base, &ExecutionConfig::new().tolerance(2.0)).unwrap();
        assert!(via_config
            .estimate
            .iter()
            .zip(&via_exec.estimate)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(
            via_config.cost.skipped_scatters,
            via_exec.cost.skipped_scatters
        );
        // An invalid override is rejected up front.
        assert!(run_frogwild_with(&pg, &base, &ExecutionConfig::new().tolerance(-1.0)).is_err());
    }

    #[test]
    fn frogwild_tolerance_gates_scatter_work() {
        let g = test_graph(500);
        let pg = partition_graph(&g, &ClusterConfig::new(8, 3));
        let base = FrogWildConfig {
            num_walkers: 5_000,
            iterations: 6,
            ..FrogWildConfig::default()
        };
        let ungated = run_frogwild_on(&pg, &base).unwrap();
        let gated = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                tolerance: 2.0,
                ..base
            },
        )
        .unwrap();
        assert!(
            gated.cost.skipped_scatters > ungated.cost.skipped_scatters,
            "gated {} vs ungated {}",
            gated.cost.skipped_scatters,
            ungated.cost.skipped_scatters
        );
        assert!(gated.cost.routed_messages < ungated.cost.routed_messages);
        // The estimator still counts parked walkers, so the estimate remains a
        // distribution.
        let total: f64 = gated.estimate.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
