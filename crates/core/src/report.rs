//! Tiny table writers used by the figure harness.
//!
//! The benchmark harness prints every figure's data series as a table on stdout and
//! writes the same rows as a CSV file under `bench_results/`. Implemented by hand to
//! keep the dependency set to the crates the rest of the workspace already uses.

use std::io::Write;
use std::path::Path;

/// A simple rectangular table: a title, column headers, and string rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Table title (figure id and caption).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row should have exactly `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row first, comma-separated, quotes around cells
    /// containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_row(&self.columns));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&csv_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown with the title as a heading.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories as needed.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())
    }
}

/// Quotes a single CSV row.
fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a float with a sensible number of significant digits for table output.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 || value.abs() < 0.001 {
        format!("{value:.3e}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure X: sample", &["machines", "seconds"]);
        t.push_row(vec!["12".into(), "0.95".into()]);
        t.push_row(vec!["16".into(), "0.80".into()]);
        t
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "machines,seconds");
        assert_eq!(lines[1], "12,0.95");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["hello, world".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Figure X"));
        assert!(md.contains("| machines | seconds |"));
        assert!(md.contains("| 12 | 0.95 |"));
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new("t", &["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("frogwild_report_test");
        let path = dir.join("sub").join("table.csv");
        std::fs::remove_file(&path).ok();
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("machines,seconds"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.5), "0.5000");
        assert!(fmt_f64(1.23e9).contains('e'));
        assert!(fmt_f64(1e-9).contains('e'));
    }
}
