//! The paper's analytical bounds as executable functions.
//!
//! These let the benchmark harness overlay "what Theorem 1 promises" against what the
//! implementation actually measures, and they drive the parameter-selection helpers of
//! Remark 6 (how many walkers / iterations are enough for a target accuracy).
//!
//! * [`mixing_loss_bound`] — Lemma 17: the captured-mass loss due to truncating walks
//!   after `t` steps, `√((1 - p_T)^{t+1} / p_T)`.
//! * [`sampling_loss_bound`] — Lemma 18: the loss due to using `N` correlated samples,
//!   `√(k/δ · (1/N + (1 - p_s²) p_∩(t)))`.
//! * [`theorem1_epsilon`] — the full ε of Theorem 1 (sum of the two).
//! * [`intersection_probability_bound`] — Theorem 2: `p_∩(t) ≤ 1/n + t‖π‖_∞ / p_T`.
//! * [`power_law_max_bound`] — Proposition 7: with PageRank following a power law with
//!   exponent θ, `‖π‖_∞ ≤ n^{-γ}` with probability at least `1 - c·n^{γ - 1/(θ-1)}`.
//! * [`empirical_intersection_probability`] — a Monte-Carlo estimate of `p_∩(t)` used
//!   to check the Theorem 2 bound experimentally.
//! * [`mixing_profile`] — the exact l1 distance `‖Qᵗu − π‖₁` per step, used to overlay
//!   Lemma 14's geometric-decay bound against the chain's real mixing behaviour.

// lint:allow-file(indexing, dense tables are sized by the same loop bounds that index them)

use frogwild_graph::{DiGraph, VertexId};
use rand::Rng;

use crate::dist;

/// Lemma 17: upper bound on the captured-mass loss caused by stopping every walk after
/// at most `t` steps instead of waiting for exact mixing.
pub fn mixing_loss_bound(teleport_probability: f64, steps: usize) -> f64 {
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    ((1.0 - teleport_probability).powi(steps as i32 + 1) / teleport_probability).sqrt()
}

/// Lemma 18: upper bound on the captured-mass loss caused by estimating with `N`
/// walkers whose trajectories are correlated by partial synchronization.
///
/// `failure_probability` is the δ of the high-probability statement;
/// `intersection_probability` is `p_∩(t)` (use [`intersection_probability_bound`] or an
/// empirical estimate).
pub fn sampling_loss_bound(
    k: usize,
    failure_probability: f64,
    num_walkers: u64,
    sync_probability: f64,
    intersection_probability: f64,
) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(
        failure_probability > 0.0 && failure_probability < 1.0,
        "failure probability must be in (0, 1)"
    );
    assert!(num_walkers > 0, "need at least one walker");
    assert!(
        (0.0..=1.0).contains(&sync_probability) && sync_probability > 0.0,
        "sync probability must be in (0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&intersection_probability),
        "intersection probability must be in [0, 1]"
    );
    let correlation_term = (1.0 - sync_probability * sync_probability) * intersection_probability;
    ((k as f64 / failure_probability) * (1.0 / num_walkers as f64 + correlation_term)).sqrt()
}

/// Theorem 1: with probability at least `1 - δ`,
/// `µ_k(π̂_N) ≥ µ_k(π) - ε` where ε is the value returned here.
#[allow(clippy::too_many_arguments)]
pub fn theorem1_epsilon(
    teleport_probability: f64,
    steps: usize,
    k: usize,
    failure_probability: f64,
    num_walkers: u64,
    sync_probability: f64,
    intersection_probability: f64,
) -> f64 {
    mixing_loss_bound(teleport_probability, steps)
        + sampling_loss_bound(
            k,
            failure_probability,
            num_walkers,
            sync_probability,
            intersection_probability,
        )
}

/// Theorem 2: upper bound on the probability that two uniformly-started walkers meet
/// within `t` steps, `p_∩(t) ≤ 1/n + t‖π‖_∞ / p_T`, clamped to 1.
pub fn intersection_probability_bound(
    num_vertices: usize,
    steps: usize,
    teleport_probability: f64,
    pi_max: f64,
) -> f64 {
    assert!(num_vertices > 0, "graph must have vertices");
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    assert!((0.0..=1.0).contains(&pi_max), "pi_max must be in [0, 1]");
    (1.0 / num_vertices as f64 + steps as f64 * pi_max / teleport_probability).min(1.0)
}

/// Proposition 7: for a PageRank vector following a power law with exponent `theta`,
/// the bound `‖π‖_∞ ≤ n^{-gamma}` holds with probability at least `1 - c·n^{gamma - 1/(θ-1)}`.
/// Returns `(bound_on_pi_max, failure_probability)` using `c = 1` (the universal
/// constant in the paper is unspecified; any fixed constant only shifts the failure
/// probability, not the bound).
pub fn power_law_max_bound(num_vertices: usize, gamma: f64, theta: f64) -> (f64, f64) {
    assert!(num_vertices > 0, "graph must have vertices");
    assert!(gamma > 0.0, "gamma must be positive");
    assert!(theta > 1.0, "theta must exceed 1");
    let n = num_vertices as f64;
    let bound = n.powf(-gamma);
    let failure = n.powf(gamma - 1.0 / (theta - 1.0)).min(1.0);
    (bound, failure)
}

/// Remark 6: number of walkers sufficient for the sampling error to be of the same
/// order as the captured mass, `N = O(k / µ_k(π)²)`. Returned with constant 1.
pub fn recommended_walkers(k: usize, optimal_mass: f64) -> u64 {
    assert!(k > 0, "k must be positive");
    assert!(
        optimal_mass > 0.0 && optimal_mass <= 1.0,
        "optimal mass must be in (0, 1]"
    );
    (k as f64 / (optimal_mass * optimal_mass)).ceil() as u64
}

/// Remark 6: number of steps sufficient for the mixing error to be of the same order
/// as the captured mass, `t = O(log 1/µ_k(π))`. Returned with the explicit constant
/// implied by Lemma 17 (base `1/(1-p_T)` logarithm).
pub fn recommended_iterations(teleport_probability: f64, optimal_mass: f64) -> usize {
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    assert!(
        optimal_mass > 0.0 && optimal_mass <= 1.0,
        "optimal mass must be in (0, 1]"
    );
    // Solve (1 - pT)^{t+1} / pT <= optimal_mass^2 for t.
    let target = optimal_mass * optimal_mass * teleport_probability;
    let t = target.ln() / (1.0 - teleport_probability).ln() - 1.0;
    t.ceil().max(1.0) as usize
}

/// Monte-Carlo estimate of the probability that two independent, uniformly-started
/// walkers following the PageRank chain (teleporting with probability `p_T`) occupy the
/// same vertex at some step in `0..=steps`.
pub fn empirical_intersection_probability<R: Rng + ?Sized>(
    graph: &DiGraph,
    steps: usize,
    teleport_probability: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(graph.num_vertices() > 0, "graph must have vertices");
    assert!(trials > 0, "need at least one trial");
    let n = graph.num_vertices();
    let mut meetings = 0usize;
    for _ in 0..trials {
        let mut a = rng.gen_range(0..n) as VertexId;
        let mut b = rng.gen_range(0..n) as VertexId;
        let mut met = a == b;
        for _ in 0..steps {
            if met {
                break;
            }
            a = pagerank_step(graph, a, teleport_probability, rng);
            b = pagerank_step(graph, b, teleport_probability, rng);
            met = a == b;
        }
        if met {
            meetings += 1;
        }
    }
    meetings as f64 / trials as f64
}

/// One step of the PageRank chain `Q`: teleport uniformly with probability `p_T`,
/// otherwise follow a uniformly random out-edge (staying put on dangling vertices).
fn pagerank_step<R: Rng + ?Sized>(
    graph: &DiGraph,
    position: VertexId,
    teleport_probability: f64,
    rng: &mut R,
) -> VertexId {
    if rng.gen::<f64>() < teleport_probability {
        return rng.gen_range(0..graph.num_vertices()) as VertexId;
    }
    let neighbors = graph.out_neighbors(position);
    if neighbors.is_empty() {
        position
    } else {
        neighbors[rng.gen_range(0..neighbors.len())]
    }
}

/// Draws a single truncated-geometric walk length (`min(Geom(p_T), t)`), exposed for
/// the theory benchmarks that compare Process 11 and Process 15 empirically (Lemma 16).
pub fn truncated_geometric_length<R: Rng + ?Sized>(
    teleport_probability: f64,
    max_steps: usize,
    rng: &mut R,
) -> usize {
    dist::geometric(teleport_probability, rng).min(max_steps as u64) as usize
}

/// The empirical mixing profile of the PageRank chain: `result[t]` is the l1 distance
/// `‖Qᵗ u − π‖₁` between the distribution of a uniformly-started walk after `t` exact
/// (dense) steps and the stationary PageRank vector `pi`.
///
/// Lemma 14 bounds the χ²-contrast of the same quantity by `((1 − p_T)/p_T)(1 − p_T)ᵗ`;
/// via Cauchy–Schwarz the l1 distance is bounded by the square root of that, so the
/// profile must decay at least as fast as `(1 − p_T)^{t/2}`. The theory benchmark and
/// the tests overlay the two curves.
///
/// Cost is `O(steps · |E|)`; intended for the benchmark-scale graphs, not the full
/// datasets.
///
/// # Panics
///
/// Panics if `pi` does not cover the vertex set or `teleport_probability` is outside
/// `(0, 1)`.
pub fn mixing_profile(
    graph: &DiGraph,
    pi: &[f64],
    teleport_probability: f64,
    steps: usize,
) -> Vec<f64> {
    assert!(
        teleport_probability > 0.0 && teleport_probability < 1.0,
        "teleport probability must be in (0, 1)"
    );
    let n = graph.num_vertices();
    assert_eq!(pi.len(), n, "pi must cover the vertex set");
    if n == 0 {
        return vec![0.0; steps + 1];
    }
    let uniform = 1.0 / n as f64;
    let mut current = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let mut profile = Vec::with_capacity(steps + 1);
    profile.push(crate::metrics::l1_distance(&current, pi));
    for _ in 0..steps {
        // One exact application of Q = (1 - p_T) P + (p_T / n) 11ᵀ, with dangling mass
        // redistributed uniformly (the same convention as `reference::exact_pagerank`).
        let dangling_mass: f64 = graph
            .vertices()
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| current[v as usize])
            .sum();
        let base =
            teleport_probability * uniform + (1.0 - teleport_probability) * dangling_mass * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for v in graph.vertices() {
            let deg = graph.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = (1.0 - teleport_probability) * current[v as usize] / deg as f64;
            for &dst in graph.out_neighbors(v) {
                next[dst as usize] += share;
            }
        }
        std::mem::swap(&mut current, &mut next);
        profile.push(crate::metrics::l1_distance(&current, pi));
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use frogwild_graph::generators::simple::complete;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mixing_loss_decreases_with_steps() {
        let a = mixing_loss_bound(0.15, 1);
        let b = mixing_loss_bound(0.15, 4);
        let c = mixing_loss_bound(0.15, 50);
        assert!(a > b && b > c);
        assert!(c < 0.1, "50 steps should mix well, bound {c}");
    }

    #[test]
    fn mixing_loss_explicit_value() {
        // sqrt(0.85^5 / 0.15) for t = 4
        let expected = (0.85f64.powi(5) / 0.15).sqrt();
        assert!((mixing_loss_bound(0.15, 4) - expected).abs() < 1e-12);
    }

    #[test]
    fn sampling_loss_decreases_with_more_walkers() {
        let few = sampling_loss_bound(100, 0.1, 1_000, 1.0, 0.0);
        let many = sampling_loss_bound(100, 0.1, 1_000_000, 1.0, 0.0);
        assert!(few > many);
    }

    #[test]
    fn sampling_loss_grows_as_ps_drops() {
        let p_int = 1e-4;
        let full = sampling_loss_bound(100, 0.1, 800_000, 1.0, p_int);
        let partial = sampling_loss_bound(100, 0.1, 800_000, 0.1, p_int);
        assert!(partial > full);
        // at ps = 1 the correlation term vanishes entirely
        let independent = sampling_loss_bound(100, 0.1, 800_000, 1.0, 0.0);
        assert!((full - independent).abs() < 1e-12);
    }

    #[test]
    fn theorem1_is_sum_of_terms() {
        let eps = theorem1_epsilon(0.15, 4, 100, 0.1, 800_000, 0.7, 1e-4);
        let expected =
            mixing_loss_bound(0.15, 4) + sampling_loss_bound(100, 0.1, 800_000, 0.7, 1e-4);
        assert!((eps - expected).abs() < 1e-12);
    }

    #[test]
    fn intersection_bound_formula_and_clamp() {
        let b = intersection_probability_bound(1_000_000, 4, 0.15, 1e-3);
        let expected = 1e-6 + 4.0 * 1e-3 / 0.15;
        assert!((b - expected).abs() < 1e-12);
        // a huge pi_max clamps to 1
        assert_eq!(intersection_probability_bound(10, 100, 0.15, 1.0), 1.0);
    }

    #[test]
    fn power_law_bound_matches_paper_example() {
        // θ = 2.2, γ = 0.5 — the example below Proposition 7.
        let n = 1_000_000;
        let (bound, failure) = power_law_max_bound(n, 0.5, 2.2);
        assert!((bound - 1e-3).abs() < 1e-12); // n^{-1/2}
        let expected_failure = (n as f64).powf(0.5 - 1.0 / 1.2);
        assert!((failure - expected_failure).abs() < 1e-12);
        assert!(
            failure < 0.02,
            "failure probability should vanish, got {failure}"
        );
    }

    #[test]
    fn recommended_parameters_scale_as_remark6() {
        // Heavier top-k mass needs fewer walkers and fewer steps.
        assert!(recommended_walkers(100, 0.5) < recommended_walkers(100, 0.05));
        assert_eq!(recommended_walkers(100, 1.0), 100);
        assert!(recommended_iterations(0.15, 0.5) < recommended_iterations(0.15, 0.01));
        assert!(recommended_iterations(0.15, 0.9) >= 1);
    }

    #[test]
    fn empirical_intersection_respects_theorem2_bound() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = rmat(2_000, RmatParams::default(), &mut rng);
        let exact = crate::reference::exact_pagerank(&g, 0.15, 100, 1e-10);
        let pi_max = exact.scores.iter().cloned().fold(0.0, f64::max);
        let steps = 4;
        let bound = intersection_probability_bound(g.num_vertices(), steps, 0.15, pi_max);
        let measured = empirical_intersection_probability(&g, steps, 0.15, 20_000, &mut rng);
        assert!(
            measured <= bound * 1.2 + 0.01,
            "measured {measured} exceeds bound {bound}"
        );
    }

    #[test]
    fn empirical_intersection_on_complete_graph_is_small() {
        // On a complete graph the walk distribution stays uniform, so the meeting
        // probability per step is 1/n.
        let g = complete(200);
        let mut rng = SmallRng::seed_from_u64(5);
        let measured = empirical_intersection_probability(&g, 3, 0.15, 30_000, &mut rng);
        // union bound over 4 time points: <= 4/200 = 0.02
        assert!(measured < 0.03, "measured {measured}");
    }

    #[test]
    fn truncated_geometric_respects_cutoff() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1_000 {
            assert!(truncated_geometric_length(0.15, 5, &mut rng) <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "teleport probability")]
    fn mixing_loss_rejects_bad_pt() {
        let _ = mixing_loss_bound(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn sampling_loss_rejects_bad_delta() {
        let _ = sampling_loss_bound(10, 0.0, 100, 1.0, 0.0);
    }

    #[test]
    fn mixing_profile_decays_and_respects_the_lemma14_bound() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = rmat(400, RmatParams::default(), &mut rng);
        let pi = crate::reference::exact_pagerank(&g, 0.15, 300, 1e-13).scores;
        let steps = 12;
        let profile = mixing_profile(&g, &pi, 0.15, steps);
        assert_eq!(profile.len(), steps + 1);
        // Monotone decay (up to numerical noise) towards zero.
        for w in profile.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "profile not decaying: {profile:?}");
        }
        assert!(
            profile[steps] < 0.05,
            "after {steps} steps distance {}",
            profile[steps]
        );
        // Lemma 14 + Cauchy–Schwarz: ‖Qᵗu − π‖₁ ≤ √(χ²) ≤ √(((1−p_T)/p_T)(1−p_T)ᵗ),
        // which is exactly mixing_loss_bound(p_T, t-1) rescaled; check at a few t.
        for (t, &distance) in profile.iter().enumerate().skip(1) {
            let chi_bound = ((1.0 - 0.15f64) / 0.15 * (1.0 - 0.15f64).powi(t as i32)).sqrt();
            assert!(
                distance <= chi_bound + 1e-9,
                "t={t}: distance {distance} exceeds bound {chi_bound}"
            );
        }
    }

    #[test]
    fn mixing_profile_starts_at_uniform_distance() {
        let g = frogwild_graph::generators::simple::star(40);
        let pi = crate::reference::exact_pagerank(&g, 0.15, 300, 1e-13).scores;
        let profile = mixing_profile(&g, &pi, 0.15, 0);
        assert_eq!(profile.len(), 1);
        let uniform = vec![1.0 / 40.0; 40];
        assert!((profile[0] - crate::metrics::l1_distance(&uniform, &pi)).abs() < 1e-12);
    }
}
