//! Rank-correlation metrics beyond the paper's two accuracy measures.
//!
//! The paper scores estimates with *mass captured* and *exact identification*
//! ([`crate::metrics`]). Both are set-level metrics: they ignore how the estimate
//! *orders* the vertices inside the top-k set. This module adds the standard
//! order-sensitive measures used in the ranking literature, so the benchmark ablations
//! can distinguish an estimate that returns the right set in the right order from one
//! that merely returns the right set:
//!
//! * [`kendall_tau_top_k`] — pairwise agreement between the two orderings of the true
//!   top-k vertices;
//! * [`spearman_footrule_top_k`] — normalised total rank displacement;
//! * [`ndcg_at_k`] — discounted cumulative gain with the true PageRank as relevance,
//!   the metric search evaluation would apply to a top-k PageRank service;
//! * [`precision_at_k_curve`] — exact identification swept over a list of `k` values in
//!   one pass.

// lint:allow-file(indexing, rankings index dense score vectors over the same vertex universe)

use frogwild_graph::VertexId;

use crate::topk::top_k;

/// Kendall rank-correlation coefficient (tau-a) between the ordering induced by
/// `estimate` and by `truth` over the **true top-k** vertices.
///
/// Returns a value in `[-1, 1]`: 1 when the estimate orders the true top-k identically
/// to the truth, −1 when it orders them exactly backwards, ≈ 0 for an unrelated
/// ordering. Ties in either vector count as discordant-neutral (they contribute zero),
/// which is the tau-a convention.
///
/// # Panics
///
/// Panics if the vectors differ in length or `k < 2`.
pub fn kendall_tau_top_k(estimate: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "vectors must cover the same vertex set"
    );
    assert!(k >= 2, "kendall tau needs at least two items");
    let items = top_k(truth, k);
    if items.len() < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let a = items[i] as usize;
            let b = items[j] as usize;
            let dt = truth[a] - truth[b];
            let de = estimate[a] - estimate[b];
            let product = dt * de;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (items.len() * (items.len() - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Normalised Spearman footrule distance between the estimate's and the truth's ranking
/// of the **true top-k** vertices, mapped to a similarity in `[0, 1]`:
/// 1 means identical ranks for every top-k vertex, 0 means maximal total displacement.
///
/// Vertices of the true top-k that fall outside the estimate's top-k are treated as if
/// the estimate ranked them at position `k` (the standard "location parameter"
/// truncation of Fagin, Kumar & Sivakumar).
///
/// # Panics
///
/// Panics if the vectors differ in length or `k == 0`.
pub fn spearman_footrule_top_k(estimate: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "vectors must cover the same vertex set"
    );
    assert!(k > 0, "k must be positive");
    let true_order = top_k(truth, k);
    let est_order = top_k(estimate, k);
    let k_eff = true_order.len();
    if k_eff == 0 {
        return 1.0;
    }
    // Rank of each vertex in the estimate's top-k list (position index), if present.
    let rank_of = |v: VertexId| est_order.iter().position(|&u| u == v).unwrap_or(k_eff);
    let displacement: usize = true_order
        .iter()
        .enumerate()
        .map(|(true_rank, &v)| rank_of(v).abs_diff(true_rank))
        .sum();
    // Maximum possible displacement: every vertex displaced by k positions.
    let max_displacement = (k_eff * k_eff) as f64;
    1.0 - displacement as f64 / max_displacement
}

/// Normalised discounted cumulative gain at `k`, using the true PageRank values as
/// graded relevance. 1 means the estimate's top-k list presents the heaviest vertices
/// first in the ideal order; lower values penalise both missing heavy vertices and
/// presenting them late in the list.
///
/// # Panics
///
/// Panics if the vectors differ in length or `k == 0`.
pub fn ndcg_at_k(estimate: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "vectors must cover the same vertex set"
    );
    assert!(k > 0, "k must be positive");
    let gain = |rank: usize, relevance: f64| relevance / ((rank + 2) as f64).log2();
    let dcg: f64 = top_k(estimate, k)
        .iter()
        .enumerate()
        .map(|(rank, &v)| gain(rank, truth[v as usize]))
        .sum();
    let ideal: f64 = top_k(truth, k)
        .iter()
        .enumerate()
        .map(|(rank, &v)| gain(rank, truth[v as usize]))
        .sum();
    if ideal <= 0.0 {
        1.0
    } else {
        dcg / ideal
    }
}

/// Exact-identification (precision) values for several `k` cut-offs in one pass:
/// `result[i]` is `|top_{ks[i]}(estimate) ∩ top_{ks[i]}(truth)| / ks[i]`.
///
/// # Panics
///
/// Panics if the vectors differ in length or any requested `k` is zero.
pub fn precision_at_k_curve(estimate: &[f64], truth: &[f64], ks: &[usize]) -> Vec<f64> {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "vectors must cover the same vertex set"
    );
    ks.iter()
        .map(|&k| {
            assert!(k > 0, "k must be positive");
            crate::metrics::exact_identification(estimate, truth, k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Vec<f64> {
        vec![0.30, 0.25, 0.20, 0.10, 0.08, 0.04, 0.02, 0.01]
    }

    #[test]
    fn perfect_estimate_scores_one_everywhere() {
        let t = truth();
        assert_eq!(kendall_tau_top_k(&t, &t, 5), 1.0);
        assert_eq!(spearman_footrule_top_k(&t, &t, 5), 1.0);
        assert!((ndcg_at_k(&t, &t, 5) - 1.0).abs() < 1e-12);
        assert_eq!(
            precision_at_k_curve(&t, &t, &[1, 3, 5]),
            vec![1.0, 1.0, 1.0]
        );
    }

    #[test]
    fn reversed_estimate_scores_minus_one_tau() {
        let t = truth();
        let reversed: Vec<f64> = t.iter().map(|&x| 1.0 - x).collect();
        assert_eq!(kendall_tau_top_k(&reversed, &t, 5), -1.0);
        assert!(spearman_footrule_top_k(&reversed, &t, 8) < 0.6);
    }

    #[test]
    fn single_swap_reduces_tau_slightly() {
        let t = truth();
        // Swap the scores of ranks 2 and 3 (vertices 2 and 3).
        let mut est = t.clone();
        est.swap(2, 3);
        let tau = kendall_tau_top_k(&est, &t, 5);
        // one discordant pair out of 10
        assert!((tau - 0.8).abs() < 1e-12, "tau {tau}");
        let foot = spearman_footrule_top_k(&est, &t, 5);
        // two vertices displaced by one position each out of a max of 25
        assert!((foot - (1.0 - 2.0 / 25.0)).abs() < 1e-12, "footrule {foot}");
    }

    #[test]
    fn ndcg_penalises_missing_heavy_vertices_more_than_reordering() {
        let t = truth();
        // Reordered but complete top-3.
        let mut reordered = t.clone();
        reordered.swap(0, 2);
        // Missing the heaviest vertex entirely from the top-3.
        let mut missing = t.clone();
        missing[0] = 0.0;
        let ndcg_reordered = ndcg_at_k(&reordered, &t, 3);
        let ndcg_missing = ndcg_at_k(&missing, &t, 3);
        assert!(ndcg_reordered > ndcg_missing);
        assert!(ndcg_reordered < 1.0);
    }

    #[test]
    fn precision_curve_is_consistent_with_single_calls() {
        let t = truth();
        let mut est = t.clone();
        est.swap(0, 7); // push the heaviest vertex to the bottom
        let curve = precision_at_k_curve(&est, &t, &[1, 2, 4]);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0], crate::metrics::exact_identification(&est, &t, 1));
        assert_eq!(curve[2], crate::metrics::exact_identification(&est, &t, 4));
    }

    #[test]
    fn k_larger_than_n_is_well_defined() {
        let t = truth();
        assert_eq!(kendall_tau_top_k(&t, &t, 100), 1.0);
        assert_eq!(spearman_footrule_top_k(&t, &t, 100), 1.0);
        assert!((ndcg_at_k(&t, &t, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_truth_gives_neutral_tau() {
        let t = vec![0.25; 4];
        let est = vec![0.4, 0.3, 0.2, 0.1];
        // every pair is tied in the truth, so no pair is concordant or discordant
        assert_eq!(kendall_tau_top_k(&est, &t, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two items")]
    fn tau_rejects_k_one() {
        let t = truth();
        let _ = kendall_tau_top_k(&t, &t, 1);
    }

    #[test]
    #[should_panic(expected = "same vertex set")]
    fn mismatched_lengths_panic() {
        let _ = ndcg_at_k(&[0.5], &[0.5, 0.5], 1);
    }
}
