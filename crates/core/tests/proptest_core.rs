//! Property-based tests for the core crate: metric definitions, top-k selection,
//! distribution samplers and the theory bounds satisfy their defining invariants for
//! arbitrary inputs.

use frogwild::dist::{binomial, even_split, geometric};
use frogwild::metrics::{exact_identification, l1_distance, mass_captured};
use frogwild::theory;
use frogwild::topk::{normalize, set_mass, top_k};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a non-negative score vector of length 1..80.
fn arb_scores() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 1..80)
}

proptest! {
    #[test]
    fn top_k_matches_naive_selection(scores in arb_scores(), k in 0usize..100) {
        let fast = top_k(&scores, k);
        // Naive: full sort by (score desc, id asc).
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        order.truncate(k.min(scores.len()));
        prop_assert_eq!(fast, order);
    }

    #[test]
    fn set_mass_of_topk_is_maximal(scores in arb_scores(), k in 1usize..20) {
        let k = k.min(scores.len());
        let best = set_mass(&scores, &top_k(&scores, k));
        // Any other set of size k (here: the k lowest-indexed vertices) captures no more.
        let other: Vec<u32> = (0..k as u32).collect();
        prop_assert!(best + 1e-12 >= set_mass(&scores, &other));
    }

    #[test]
    fn normalize_yields_distribution_or_zero(mut scores in arb_scores()) {
        let total_before: f64 = scores.iter().sum();
        normalize(&mut scores);
        let total_after: f64 = scores.iter().sum();
        if total_before > 0.0 {
            prop_assert!((total_after - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(total_after, 0.0);
        }
        prop_assert!(scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn mass_captured_is_bounded_and_maximised_by_truth(
        truth in arb_scores(),
        estimate in arb_scores(),
        k in 1usize..20,
    ) {
        // Align the lengths by truncating to the shorter one.
        let len = truth.len().min(estimate.len());
        let truth = &truth[..len];
        let estimate = &estimate[..len];
        let m = mass_captured(estimate, truth, k);
        prop_assert!(m.captured >= -1e-12);
        prop_assert!(m.captured <= m.optimal + 1e-12);
        prop_assert!(m.normalized() <= 1.0 + 1e-9);
        prop_assert!(m.loss() >= 0.0);
        // The truth itself always achieves the optimum.
        let self_m = mass_captured(truth, truth, k);
        prop_assert!((self_m.normalized() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_identification_is_a_fraction(
        truth in arb_scores(),
        estimate in arb_scores(),
        k in 1usize..20,
    ) {
        let len = truth.len().min(estimate.len());
        let value = exact_identification(&estimate[..len], &truth[..len], k);
        prop_assert!((0.0..=1.0).contains(&value));
        prop_assert!((exact_identification(&truth[..len], &truth[..len], k) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_distance_is_a_metric(a in arb_scores(), b in arb_scores()) {
        let len = a.len().min(b.len());
        let (a, b) = (&a[..len], &b[..len]);
        prop_assert!(l1_distance(a, b) >= 0.0);
        prop_assert!((l1_distance(a, b) - l1_distance(b, a)).abs() < 1e-12);
        prop_assert!(l1_distance(a, a) < 1e-12);
    }

    #[test]
    fn even_split_partitions_exactly(total in 0u64..100_000, parts in 1usize..64) {
        let shares: Vec<u64> = (0..parts).map(|i| even_split(total, parts, i)).collect();
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        let max = *shares.iter().max().unwrap();
        let min = *shares.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn binomial_stays_in_support(n in 0u64..10_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = binomial(n, p, &mut rng);
        prop_assert!(x <= n);
        if p == 0.0 { prop_assert_eq!(x, 0); }
        if p == 1.0 { prop_assert_eq!(x, n); }
    }

    #[test]
    fn geometric_is_finite_and_nonnegative(p in 0.01f64..=1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = geometric(p, &mut rng);
        // With p >= 0.01 the sample is astronomically unlikely to exceed this bound;
        // the property guards against the sampler returning nonsense (negatives wrap).
        prop_assert!(x < 10_000);
    }

    #[test]
    fn theorem1_bound_is_monotone_in_its_arguments(
        walkers in 1u64..1_000_000,
        ps in 0.05f64..=1.0,
        steps in 1usize..20,
        p_int in 0.0f64..0.01,
    ) {
        let eps = theory::theorem1_epsilon(0.15, steps, 100, 0.1, walkers, ps, p_int);
        prop_assert!(eps > 0.0);
        // More walkers can only tighten the bound.
        let eps_more_walkers = theory::theorem1_epsilon(0.15, steps, 100, 0.1, walkers * 2, ps, p_int);
        prop_assert!(eps_more_walkers <= eps + 1e-12);
        // Higher synchronization probability can only tighten the bound.
        let eps_full_sync = theory::theorem1_epsilon(0.15, steps, 100, 0.1, walkers, 1.0, p_int);
        prop_assert!(eps_full_sync <= eps + 1e-12);
        // More steps can only tighten the mixing term.
        let eps_more_steps = theory::theorem1_epsilon(0.15, steps + 5, 100, 0.1, walkers, ps, p_int);
        prop_assert!(eps_more_steps <= eps + 1e-12);
    }

    #[test]
    fn intersection_bound_is_valid_probability_bound(
        n in 1usize..10_000_000,
        steps in 0usize..50,
        pi_max in 0.0f64..=1.0,
    ) {
        let b = theory::intersection_probability_bound(n, steps, 0.15, pi_max);
        prop_assert!((0.0..=1.0).contains(&b));
        // Monotone in steps and pi_max.
        let b_more_steps = theory::intersection_probability_bound(n, steps + 1, 0.15, pi_max);
        prop_assert!(b_more_steps + 1e-15 >= b);
    }
}
