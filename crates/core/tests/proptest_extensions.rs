//! Property-based tests for the extension modules: rank metrics, confidence intervals,
//! personalized PageRank and the complete-path Monte-Carlo estimators.

use frogwild::confidence::{
    hoeffding_epsilon, normal_cdf, normal_quantile, required_walkers, separation_probability,
    wilson_interval,
};
use frogwild::montecarlo::complete_path_pagerank;
use frogwild::ppr::{forward_push_ppr, personalized_pagerank, single_source_restart};
use frogwild::rank_metrics::{
    kendall_tau_top_k, ndcg_at_k, precision_at_k_curve, spearman_footrule_top_k,
};
use frogwild_graph::generators::{rmat, RmatParams};
use frogwild_graph::DiGraph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a non-negative score vector of length 2..60.
fn arb_scores() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 2..60)
}

/// Strategy: a small heavy-tailed graph plus an in-range source vertex.
fn arb_graph_and_source() -> impl Strategy<Value = (DiGraph, u32)> {
    (30usize..200, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = rmat(n, RmatParams::default(), &mut rng);
        let source = (seed % graph.num_vertices() as u64) as u32;
        (graph, source)
    })
}

proptest! {
    // ------------------------------------------------------------- rank metrics
    #[test]
    fn rank_metrics_are_bounded_and_maximised_by_truth(
        truth in arb_scores(),
        estimate in arb_scores(),
        k in 2usize..20,
    ) {
        let len = truth.len().min(estimate.len());
        let (truth, estimate) = (&truth[..len], &estimate[..len]);

        let tau = kendall_tau_top_k(estimate, truth, k);
        prop_assert!((-1.0..=1.0).contains(&tau));
        prop_assert!((kendall_tau_top_k(truth, truth, k) - 1.0).abs() < 1e-12);

        let footrule = spearman_footrule_top_k(estimate, truth, k);
        prop_assert!((0.0..=1.0).contains(&footrule));
        prop_assert!((spearman_footrule_top_k(truth, truth, k) - 1.0).abs() < 1e-12);

        let ndcg = ndcg_at_k(estimate, truth, k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ndcg));
        prop_assert!((ndcg_at_k(truth, truth, k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precision_curve_entries_match_direct_calls(
        truth in arb_scores(),
        estimate in arb_scores(),
    ) {
        let len = truth.len().min(estimate.len());
        let (truth, estimate) = (&truth[..len], &estimate[..len]);
        let ks = [1usize, 2, 5, 10];
        let curve = precision_at_k_curve(estimate, truth, &ks);
        prop_assert_eq!(curve.len(), ks.len());
        for (i, &k) in ks.iter().enumerate() {
            prop_assert!((curve[i] - frogwild::metrics::exact_identification(estimate, truth, k)).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&curve[i]));
        }
    }

    // ------------------------------------------------------------- confidence
    #[test]
    fn hoeffding_and_required_walkers_are_consistent(
        walkers in 10u64..10_000_000,
        vertices in 1usize..10_000_000,
        delta in 0.001f64..0.5,
    ) {
        let eps = hoeffding_epsilon(walkers, vertices, delta);
        prop_assert!(eps > 0.0);
        if eps < 1.0 {
            // Planning for the achieved epsilon never asks for more walkers than we had
            // (up to the integer ceiling).
            let needed = required_walkers(eps, vertices, delta);
            prop_assert!(needed <= walkers + 1, "needed {} from {} walkers", needed, walkers);
        }
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate(
        count in 0u64..10_000,
        extra in 1u64..10_000,
        delta in 0.001f64..0.5,
    ) {
        let n = count + extra;
        let interval = wilson_interval(count, n, delta);
        let p_hat = count as f64 / n as f64;
        prop_assert!(interval.low <= p_hat + 1e-12);
        prop_assert!(interval.high >= p_hat - 1e-12);
        prop_assert!(interval.low >= 0.0 && interval.high <= 1.0);
        // Tighter confidence (larger delta) gives a narrower interval.
        let looser = wilson_interval(count, n, (delta * 2.0).min(0.9));
        prop_assert!(looser.width() <= interval.width() + 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.001f64..0.999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 2e-4);
    }

    #[test]
    fn separation_probability_is_antisymmetric(
        a in 0u64..1_000,
        b in 0u64..1_000,
        extra in 1u64..1_000,
    ) {
        let n = a.max(b) + extra;
        let forward = separation_probability(a, b, n);
        let backward = separation_probability(b, a, n);
        prop_assert!((forward + backward - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&forward));
    }

    // ------------------------------------------------------------- PPR
    #[test]
    fn forward_push_never_exceeds_exact_ppr((graph, source) in arb_graph_and_source()) {
        let exact = personalized_pagerank(
            &graph,
            &single_source_restart(graph.num_vertices(), source),
            0.15,
            200,
            1e-10,
        );
        let push = forward_push_ppr(&graph, source, 0.15, 1e-4);
        // Mass conservation: estimate + residual = 1.
        let total = push.estimate.iter().sum::<f64>() + push.residual_mass();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // The push estimate is a lower bound on the exact PPR, vertex by vertex
        // (up to the power-iteration tolerance).
        for (e, x) in push.estimate.iter().zip(exact.scores.iter()) {
            prop_assert!(*e <= *x + 1e-6);
        }
    }

    #[test]
    fn forward_push_invariants_hold_across_epsilon_and_teleport(
        (graph, source) in arb_graph_and_source(),
        eps_exp in 2i32..8,
        teleport in 0.05f64..0.6,
    ) {
        let epsilon = 10f64.powi(-eps_exp);
        let push = forward_push_ppr(&graph, source, teleport, epsilon);
        let settled: f64 = push.estimate.iter().sum();
        let residual = push.residual_mass();
        // Residual mass plus settled mass is exactly the unit of mass that entered.
        prop_assert!(
            (settled + residual - 1.0).abs() < 1e-9,
            "settled {} + residual {} != 1", settled, residual
        );
        // Estimates are a sub-distribution: nonnegative, finite, summing to <= 1.
        prop_assert!(push.estimate.iter().all(|&x| x >= 0.0 && x.is_finite()));
        prop_assert!(settled <= 1.0 + 1e-9);
        // Residuals never go negative either, and the push count is finite work.
        prop_assert!(push.residual.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn ppr_scores_sum_to_one_and_are_nonnegative((graph, source) in arb_graph_and_source()) {
        let result = personalized_pagerank(
            &graph,
            &single_source_restart(graph.num_vertices(), source),
            0.15,
            100,
            1e-9,
        );
        let total: f64 = result.scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(result.scores.iter().all(|&s| s >= 0.0));
    }

    // ------------------------------------------------------------- Monte-Carlo
    #[test]
    fn complete_path_estimate_is_a_distribution(
        (graph, _) in arb_graph_and_source(),
        walkers in 1u64..5_000,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let est = complete_path_pagerank(&graph, walkers, 10, 0.15, &mut rng);
        let total: f64 = est.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(est.iter().all(|&x| x >= 0.0));
    }
}
