//! Property-based tests for the concurrent serving front-end: across random graphs,
//! worker counts, queue depths, batch sizes and query mixes,
//!
//! * the worker pool answers **bit-identically** to the serial reference path — the
//!   responses are a pure function of the submitted stream, never of the schedule;
//! * admission control conserves the stream: every submitted query comes back as
//!   exactly one outcome, and under `Admission::Reject` the served ones still match
//!   the serial responses position by position.

use frogwild::prelude::*;
use frogwild::serve::QueryOutcome;
use frogwild::session::PprMethod;
use frogwild_graph::generators::{rmat, RmatParams};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph_of(vertices: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    rmat(vertices, RmatParams::default(), &mut rng)
}

/// A query-mix strategy: each element picks one of the four query kinds (by the
/// variant tag), with its own shape parameters. Seeds are irrelevant — the serving
/// front-end re-roots them by sequence id.
fn query_strategy(vertices: usize) -> impl Strategy<Value = Query> {
    (any::<u8>(), 0..vertices as u32, 1usize..20).prop_map(|(variant, source, k)| {
        match variant % 4 {
            0 => Query::TopK {
                k,
                config: FrogWildConfig {
                    num_walkers: 2_000,
                    iterations: 2,
                    sync_probability: 0.7,
                    ..FrogWildConfig::default()
                },
            },
            1 => Query::Pagerank {
                k,
                config: PageRankConfig::truncated(2),
            },
            2 => Query::Ppr {
                source,
                k,
                teleport_probability: 0.15,
                method: PprMethod::MonteCarlo {
                    walkers: 1_000,
                    max_steps: 16,
                    seed: 0,
                },
            },
            _ => Query::Ppr {
                source,
                k,
                teleport_probability: 0.15,
                method: PprMethod::ForwardPush { epsilon: 1e-4 },
            },
        }
    })
}

proptest! {
    // Every case runs two full serving streams; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pool_responses_are_bit_identical_to_serial_for_any_schedule(
        vertices in 80usize..200,
        graph_seed in any::<u64>(),
        session_seed in any::<u64>(),
        workers in 1usize..6,
        queue_depth in 1usize..8,
        batch in 1usize..5,
        queries in proptest::collection::vec(query_strategy(80), 1..12),
    ) {
        let graph = graph_of(vertices, graph_seed);
        // The mix draws sources below the minimum vertex count, so every query is valid.
        let build = || {
            Session::builder(&graph)
                .machines(4)
                .seed(session_seed)
                .build()
                .unwrap()
        };

        let mut serial_session = build();
        let serial = serial_session.serve().serve_serial(&queries);

        let mut pool_session = build();
        let pooled = pool_session
            .serve_with(ServeConfig {
                workers,
                queue_depth,
                batch,
                admission: Admission::Block,
            })
            .unwrap()
            .serve(&queries);

        // Block admission never rejects; both paths answer the full stream.
        prop_assert_eq!(pooled.rejected, 0);
        prop_assert_eq!(pooled.outcomes.len(), queries.len());
        prop_assert_eq!(serial.served, pooled.served);
        for (i, (a, b)) in serial.responses().zip(pooled.responses()).enumerate() {
            prop_assert_eq!(a, b, "query {} diverged", i);
        }
        // Both sessions accumulated the same deterministic counters.
        prop_assert_eq!(
            serial_session.stats().total_walk_hops,
            pool_session.stats().total_walk_hops
        );
        prop_assert_eq!(
            serial_session.stats().total_push_ops,
            pool_session.stats().total_push_ops
        );
    }

    #[test]
    fn reject_admission_conserves_the_stream_and_keeps_served_answers_exact(
        vertices in 80usize..150,
        graph_seed in any::<u64>(),
        session_seed in any::<u64>(),
        workers in 1usize..4,
        queries in proptest::collection::vec(query_strategy(80), 4..16),
    ) {
        let graph = graph_of(vertices, graph_seed);
        let mut session = Session::builder(&graph)
            .machines(4)
            .seed(session_seed)
            .build()
            .unwrap();
        let report = session
            .serve_with(ServeConfig {
                workers,
                queue_depth: 1,
                batch: 1,
                admission: Admission::Reject,
            })
            .unwrap()
            .serve(&queries);

        // Conservation: one outcome per query, and the counts add up.
        prop_assert_eq!(report.outcomes.len(), queries.len());
        prop_assert_eq!(
            report.served + report.rejected + report.failed,
            queries.len() as u64
        );
        prop_assert_eq!(session.stats().queries_rejected, report.rejected);

        // Whatever was served matches the serial reference at the same position.
        let mut reference_session = Session::builder(&graph)
            .machines(4)
            .seed(session_seed)
            .build()
            .unwrap();
        let reference = reference_session.serve().serve_serial(&queries);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            if let QueryOutcome::Served(response) = outcome {
                prop_assert_eq!(
                    response.as_ref(),
                    reference.outcomes[i].response().unwrap(),
                    "served query {} diverged",
                    i
                );
            }
        }
    }
}
