//! Property-based tests for bounded-staleness execution: across random graphs,
//! cluster sizes, sync probabilities and worker counts,
//!
//! * `staleness = 0` reproduces the synchronous executor **bit-for-bit** (estimates
//!   and every deterministic cost counter),
//! * a fixed `staleness > 0` is bit-identical across worker counts and batch sizes
//!   (the drain schedule, not the host thread pool, decides delivery order), and
//! * stale gated PageRank stays inside the delta gate's accumulated-error envelope
//!   relative to its own synchronous gated run — staleness delays deliveries but
//!   never drops them, so the fixed point the gate converges to is unchanged.

use frogwild::metrics::l1_distance;
use frogwild::prelude::*;
use frogwild_graph::generators::{rmat, RmatParams};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph_of(vertices: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    rmat(vertices, RmatParams::default(), &mut rng)
}

proptest! {
    // Engine runs are comparatively expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zero_staleness_frogwild_is_bit_identical_to_the_synchronous_executor(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 1usize..7,
        ps in 0.3f64..=1.0,
        walker_seed in any::<u64>(),
        workers in 0usize..5,
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let config = FrogWildConfig {
            num_walkers: 5_000,
            iterations: 4,
            sync_probability: ps,
            seed: walker_seed,
            ..FrogWildConfig::default()
        };
        let sync = run_frogwild_on(&pg, &config).unwrap();
        let unified = run_frogwild_with(
            &pg,
            &config,
            &ExecutionConfig::new().workers(workers).staleness(0),
        )
        .unwrap();
        prop_assert!(sync.estimate.iter().zip(&unified.estimate)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        prop_assert_eq!(sync.cost.network_bytes, unified.cost.network_bytes);
        prop_assert_eq!(sync.cost.routed_messages, unified.cost.routed_messages);
        prop_assert_eq!(sync.cost.active_vertices, unified.cost.active_vertices);
        prop_assert_eq!(sync.cost.simulated_total_seconds.to_bits(),
            unified.cost.simulated_total_seconds.to_bits());
        // The synchronous path reports no staleness telemetry.
        prop_assert_eq!(unified.cost.staleness_lag, 0);
        prop_assert_eq!(unified.cost.max_inbox_depth, 0);
        prop_assert_eq!(unified.cost.barrier_wait_avoided_seconds, 0.0);
    }

    #[test]
    fn zero_staleness_pagerank_is_bit_identical_to_the_synchronous_executor(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 1usize..7,
        teleport in 0.1f64..0.5,
        workers in 0usize..5,
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let config = PageRankConfig {
            max_iterations: 15,
            teleport_probability: teleport,
            ..PageRankConfig::default()
        };
        let sync = run_graphlab_pr_on(&pg, &config).unwrap();
        let unified = run_graphlab_pr_with(
            &pg,
            &config,
            &ExecutionConfig::new().workers(workers).staleness(0),
        )
        .unwrap();
        prop_assert!(sync.estimate.iter().zip(&unified.estimate)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        prop_assert_eq!(sync.cost.network_bytes, unified.cost.network_bytes);
        prop_assert_eq!(sync.cost.routed_messages, unified.cost.routed_messages);
        prop_assert_eq!(unified.cost.staleness_lag, 0);
    }

    #[test]
    fn fixed_staleness_is_bit_identical_across_worker_counts(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 2usize..8,
        ps in 0.3f64..=1.0,
        staleness in 1usize..4,
        walker_seed in any::<u64>(),
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let config = FrogWildConfig {
            num_walkers: 5_000,
            iterations: 5,
            sync_probability: ps,
            seed: walker_seed,
            parallel: true,
            ..FrogWildConfig::default()
        };
        let serial = run_frogwild_with(
            &pg,
            &FrogWildConfig { parallel: false, ..config },
            &ExecutionConfig::new().staleness(staleness),
        )
        .unwrap();
        // The walker count stays conserved under any staleness window.
        prop_assert!((serial.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for execution in [
            ExecutionConfig::new().workers(2).staleness(staleness),
            ExecutionConfig::new().workers(5).batch_size(17).staleness(staleness),
        ] {
            let pooled = run_frogwild_with(&pg, &config, &execution).unwrap();
            prop_assert!(serial.estimate.iter().zip(&pooled.estimate)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            prop_assert_eq!(serial.cost.network_bytes, pooled.cost.network_bytes);
            prop_assert_eq!(serial.cost.routed_messages, pooled.cost.routed_messages);
            prop_assert_eq!(serial.cost.staleness_lag, pooled.cost.staleness_lag);
            prop_assert_eq!(serial.cost.max_inbox_depth, pooled.cost.max_inbox_depth);
            prop_assert_eq!(
                serial.cost.barrier_wait_avoided_seconds.to_bits(),
                pooled.cost.barrier_wait_avoided_seconds.to_bits()
            );
        }
    }

    #[test]
    fn stale_gated_pagerank_stays_within_the_tolerance_error_envelope(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 2usize..7,
        teleport in 0.1f64..0.5,
        tolerance in 1e-7f64..1e-4,
        staleness in 1usize..3,
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let iterations = 30;
        let config = PageRankConfig {
            max_iterations: iterations,
            teleport_probability: teleport,
            tolerance,
            ..PageRankConfig::default()
        };
        let sync = run_graphlab_pr_on(&pg, &config).unwrap();
        let stale = run_graphlab_pr_with(
            &pg,
            &config,
            &ExecutionConfig::new().staleness(staleness),
        )
        .unwrap();

        // Still a normalized distribution, and reproducible.
        prop_assert!((stale.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let again = run_graphlab_pr_with(
            &pg,
            &config,
            &ExecutionConfig::new().staleness(staleness),
        )
        .unwrap();
        prop_assert!(stale.estimate.iter().zip(&again.estimate)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        // Delaying a delivery by up to `s` supersteps perturbs each vertex's rank by
        // no more than the same accumulated gating slack the delta gate already
        // permits, damped through the (1-p)/p chain — so the stale run sits in the
        // gated run's envelope, widened by the extra (s) in-flight iterations.
        let envelope = tolerance
            * (iterations + staleness) as f64
            * (1.0 - teleport)
            / (teleport * teleport)
            + 1e-12;
        let distance = l1_distance(&stale.estimate, &sync.estimate);
        prop_assert!(
            distance <= envelope,
            "l1 {} exceeds envelope {} (tol {}, p {}, s {})",
            distance, envelope, tolerance, teleport, staleness
        );
    }
}
