//! Property-based tests for the executor's delta gate: across random graphs,
//! teleport probabilities, cluster sizes and tolerances,
//!
//! * `tolerance = 0` reproduces the ungated run **bit-for-bit** (estimates and every
//!   deterministic cost counter), and
//! * a positive tolerance perturbs the final PageRank by no more than the accumulated
//!   gating error the tolerance permits, while the estimate stays a distribution.

use frogwild::metrics::l1_distance;
use frogwild::prelude::*;
use frogwild_graph::generators::{rmat, RmatParams};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graph_of(vertices: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    rmat(vertices, RmatParams::default(), &mut rng)
}

proptest! {
    // Engine runs are comparatively expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zero_tolerance_pagerank_is_bit_identical_to_the_ungated_executor(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 1usize..7,
        teleport in 0.1f64..0.5,
        parallel in any::<bool>(),
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let config = PageRankConfig {
            max_iterations: 15,
            tolerance: 0.0,
            teleport_probability: teleport,
            parallel,
            ..PageRankConfig::default()
        };
        let a = run_graphlab_pr_on(&pg, &config).unwrap();
        let b = run_graphlab_pr_scheduled(&pg, &config, &Scheduling::with_workers(3)).unwrap();
        // Bit-for-bit: same f64 bit patterns, same deterministic counters.
        prop_assert_eq!(&a.estimate, &b.estimate);
        prop_assert!(a.estimate.iter().zip(&b.estimate).all(|(x, y)| x.to_bits() == y.to_bits()));
        prop_assert_eq!(a.cost.network_bytes, b.cost.network_bytes);
        prop_assert_eq!(a.cost.routed_messages, b.cost.routed_messages);
        prop_assert_eq!(a.cost.skipped_scatters, b.cost.skipped_scatters);
        prop_assert_eq!(a.cost.active_vertices, b.cost.active_vertices);
        prop_assert_eq!(a.metrics.total_ops(), b.metrics.total_ops());
    }

    #[test]
    fn zero_tolerance_frogwild_is_bit_identical_to_the_ungated_executor(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 1usize..7,
        ps in 0.3f64..=1.0,
        walker_seed in any::<u64>(),
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let config = FrogWildConfig {
            num_walkers: 5_000,
            iterations: 4,
            sync_probability: ps,
            seed: walker_seed,
            tolerance: 0.0,
            ..FrogWildConfig::default()
        };
        let a = run_frogwild_on(&pg, &config).unwrap();
        let b = run_frogwild_scheduled(
            &pg,
            &FrogWildConfig { parallel: true, ..config },
            &Scheduling { workers: 2, batch_size: 19 },
        )
        .unwrap();
        prop_assert!(a.estimate.iter().zip(&b.estimate).all(|(x, y)| x.to_bits() == y.to_bits()));
        prop_assert_eq!(a.cost.network_bytes, b.cost.network_bytes);
        prop_assert_eq!(a.cost.routed_messages, b.cost.routed_messages);
        prop_assert_eq!(a.cost.skipped_scatters, b.cost.skipped_scatters);
    }

    #[test]
    fn gated_pagerank_stays_within_the_tolerance_error_envelope(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 1usize..7,
        teleport in 0.1f64..0.5,
        tolerance in 1e-7f64..1e-4,
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let iterations = 30;
        let base = PageRankConfig {
            max_iterations: iterations,
            teleport_probability: teleport,
            ..PageRankConfig::default()
        };
        let ungated = run_graphlab_pr_on(&pg, &PageRankConfig { tolerance: 0.0, ..base }).unwrap();
        let gated = run_graphlab_pr_on(&pg, &PageRankConfig { tolerance, ..base }).unwrap();

        // Both normalized distributions.
        prop_assert!((gated.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        // A vertex that skips scatter leaves its mirrors at most `tolerance` stale per
        // apply, so over T iterations the unnormalised ranks can drift by at most
        // T·tol per vertex, amplified by the (1-p)/p damping chain; normalising
        // (total unnormalised mass is at least n·p) gives the envelope below.
        let envelope = tolerance * iterations as f64 * (1.0 - teleport)
            / (teleport * teleport)
            + 1e-12;
        let distance = l1_distance(&gated.estimate, &ungated.estimate);
        prop_assert!(
            distance <= envelope,
            "l1 {} exceeds envelope {} (tol {}, p {})",
            distance, envelope, tolerance, teleport
        );
    }

    #[test]
    fn gated_frogwild_keeps_a_walker_mass_distribution(
        vertices in 60usize..250,
        graph_seed in any::<u64>(),
        machines in 1usize..7,
        tolerance in 0.5f64..4.0,
        walker_seed in any::<u64>(),
    ) {
        let graph = graph_of(vertices, graph_seed);
        let pg = partition_graph(&graph, &ClusterConfig::new(machines, 3));
        let base = FrogWildConfig {
            num_walkers: 5_000,
            iterations: 4,
            sync_probability: 0.7,
            seed: walker_seed,
            ..FrogWildConfig::default()
        };
        let gated = run_frogwild_on(&pg, &FrogWildConfig { tolerance, ..base }).unwrap();
        // Parked walkers still count toward the estimator: the estimate remains a
        // distribution over the full vertex set, and the run is reproducible.
        prop_assert!((gated.estimate.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let again = run_frogwild_on(&pg, &FrogWildConfig { tolerance, ..base }).unwrap();
        prop_assert!(gated.estimate.iter().zip(&again.estimate).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
