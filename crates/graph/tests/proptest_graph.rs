//! Property-based tests for the graph substrate: CSR invariants, builder behaviour,
//! I/O and snapshot round trips hold for arbitrary edge lists.

use frogwild_graph::generators::power_law_weights;
use frogwild_graph::io::{read_edge_list, write_edge_list, EdgeListOptions};
use frogwild_graph::snapshot::{read_snapshot, write_snapshot};
use frogwild_graph::sparsify::{uniform_sparsify, SparsifyMode};
use frogwild_graph::{DanglingPolicy, DiGraph, GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a vertex count and a set of edges valid for it.
fn arb_graph_input() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        (Just(n), proptest::collection::vec(edge, 0..200))
    })
}

proptest! {
    #[test]
    fn csr_invariants_hold_for_arbitrary_edges((n, edges) in arb_graph_input()) {
        let g = DiGraph::from_edges(n, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), edges.len());
        // Degree sums both equal the edge count.
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    #[test]
    fn edge_iteration_round_trips((n, edges) in arb_graph_input()) {
        let g = DiGraph::from_edges(n, &edges);
        let mut expected = edges.clone();
        expected.sort_unstable();
        let mut actual = g.edge_vec();
        actual.sort_unstable();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn reverse_twice_is_identity((n, edges) in arb_graph_input()) {
        let g = DiGraph::from_edges(n, &edges);
        prop_assert_eq!(g.reverse().reverse(), g);
    }

    #[test]
    fn reverse_swaps_degrees((n, edges) in arb_graph_input()) {
        let g = DiGraph::from_edges(n, &edges);
        let r = g.reverse();
        for v in g.vertices() {
            prop_assert_eq!(g.out_degree(v), r.in_degree(v));
            prop_assert_eq!(g.in_degree(v), r.out_degree(v));
        }
    }

    #[test]
    fn builder_selfloop_policy_always_eliminates_dangling((n, edges) in arb_graph_input()) {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges).unwrap();
        let g = b.dangling_policy(DanglingPolicy::SelfLoop).build().unwrap();
        prop_assert!(g.has_no_dangling());
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn builder_dedup_is_idempotent((n, edges) in arb_graph_input()) {
        let build = |input: &[(VertexId, VertexId)]| {
            let mut b = GraphBuilder::new(n);
            b.extend_edges(input.iter().copied()).unwrap();
            b.dedup(true).dangling_policy(DanglingPolicy::Keep).build().unwrap()
        };
        let once = build(&edges);
        let twice = build(&once.edge_vec());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn snapshot_round_trip((n, edges) in arb_graph_input()) {
        let g = DiGraph::from_edges(n, &edges);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let restored = read_snapshot(buf.as_slice()).unwrap();
        prop_assert_eq!(g, restored);
    }

    #[test]
    fn edge_list_io_round_trip((n, edges) in arb_graph_input()) {
        let g = DiGraph::from_edges(n, &edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let options = EdgeListOptions {
            relabel: false,
            dedup: false,
            dangling: DanglingPolicy::Keep,
            ..EdgeListOptions::default()
        };
        let (restored, _) = read_edge_list(buf.as_slice(), &options).unwrap();
        // The writer only records vertices that occur in edges; isolated trailing
        // vertices are lost, so compare on the common prefix dimension.
        if g.num_edges() == 0 {
            prop_assert_eq!(restored.num_edges(), 0);
        } else {
            let mut expected = g.edge_vec();
            expected.sort_unstable();
            let mut actual = restored.edge_vec();
            actual.sort_unstable();
            prop_assert_eq!(actual, expected);
        }
    }

    #[test]
    fn sparsify_produces_subset_and_respects_probability(
        (n, edges) in arb_graph_input(),
        keep in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let g = DiGraph::from_edges(n, &edges);
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = uniform_sparsify(&g, keep, SparsifyMode::KeepAtLeastOne, &mut rng);
        prop_assert_eq!(s.num_vertices(), g.num_vertices());
        prop_assert!(s.validate().is_ok());
        // Every non-self-loop edge of the sparsified graph existed in the original.
        for (src, dst) in s.edges() {
            prop_assert!(g.has_edge(src, dst) || src == dst);
        }
        // Keeping everything reproduces at least the original edge multiset size.
        if keep == 1.0 {
            prop_assert!(s.num_edges() >= g.num_edges());
        }
    }

    #[test]
    fn power_law_weights_are_positive_decreasing_and_normalised(
        n in 2usize..500,
        theta in 1.5f64..4.0,
        avg in 0.5f64..50.0,
    ) {
        let w = power_law_weights(n, theta, avg);
        prop_assert_eq!(w.len(), n);
        prop_assert!(w.iter().all(|&x| x > 0.0));
        prop_assert!(w.windows(2).all(|p| p[0] >= p[1]));
        let mean = w.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - avg).abs() < 1e-6 * avg.max(1.0));
    }
}
