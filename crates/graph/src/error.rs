//! The workspace-wide typed error.
//!
//! Every crate in the workspace reports failures through [`Error`] so that callers —
//! the `Session` query service, the CLI, the figure harness — can match on *what went
//! wrong* instead of parsing strings. The enum lives in `frogwild_graph` because it is
//! the bottom of the dependency stack; `frogwild_engine` and `frogwild` re-export it,
//! and the canonical public path is `frogwild::Error`.

/// Everything that can go wrong across the FrogWild workspace.
///
/// The variants mirror the four failure domains of the pipeline: configuration
/// validation, graph construction/I/O, partitioning/placement, and query answering.
///
/// The enum is `#[non_exhaustive]`-free on purpose: the whole point of the typed error
/// is that callers can match exhaustively and the compiler tells them when a new
/// failure domain appears.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A configuration or builder failed validation. `context` names the offending
    /// type (e.g. `"FrogWildConfig"`); `message` describes the first problem found.
    InvalidConfig {
        /// The configuration type that failed validation.
        context: &'static str,
        /// Human-readable description of the first problem found.
        message: String,
    },
    /// Graph construction, structural validation, or edge-list I/O failed.
    Graph {
        /// Human-readable description of the failure.
        message: String,
    },
    /// Partitioning produced (or a consistency check found) an invalid layout.
    Partition {
        /// Human-readable description of the failure.
        message: String,
    },
    /// A query could not be answered (bad vertex id, empty result, unsupported
    /// combination of parameters).
    Query {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl Error {
    /// An [`Error::InvalidConfig`] for the named configuration type.
    pub fn config(context: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidConfig {
            context,
            message: message.into(),
        }
    }

    /// An [`Error::Graph`].
    pub fn graph(message: impl Into<String>) -> Self {
        Error::Graph {
            message: message.into(),
        }
    }

    /// An [`Error::Partition`].
    pub fn partition(message: impl Into<String>) -> Self {
        Error::Partition {
            message: message.into(),
        }
    }

    /// An [`Error::Query`].
    pub fn query(message: impl Into<String>) -> Self {
        Error::Query {
            message: message.into(),
        }
    }

    /// The human-readable message, independent of the variant.
    pub fn message(&self) -> &str {
        match self {
            Error::InvalidConfig { message, .. }
            | Error::Graph { message }
            | Error::Partition { message }
            | Error::Query { message } => message,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidConfig { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
            Error::Graph { message } => write!(f, "graph error: {message}"),
            Error::Partition { message } => write!(f, "partitioning error: {message}"),
            Error::Query { message } => write!(f, "query error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<crate::GraphError> for Error {
    fn from(e: crate::GraphError) -> Self {
        Error::graph(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context_and_message() {
        let e = Error::config("FrogWildConfig", "num_walkers must be positive");
        assert_eq!(
            e.to_string(),
            "invalid FrogWildConfig: num_walkers must be positive"
        );
        assert_eq!(e.message(), "num_walkers must be positive");
    }

    #[test]
    fn variants_are_distinguishable() {
        assert_ne!(Error::graph("x"), Error::partition("x"));
        assert_ne!(Error::query("x"), Error::graph("x"));
        assert!(matches!(
            Error::config("T", "m"),
            Error::InvalidConfig { context: "T", .. }
        ));
    }

    #[test]
    fn graph_error_converts() {
        let ge = crate::GraphError::InvalidParameter("zero vertices".into());
        let e: Error = ge.into();
        assert!(matches!(&e, Error::Graph { message } if message.contains("zero vertices")));
    }

    #[test]
    fn is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&Error::query("q"));
    }
}
