//! Checked, mutable construction of [`DiGraph`] values.
//!
//! [`GraphBuilder`] accumulates edges, optionally deduplicates them, applies a
//! [`DanglingPolicy`] to vertices with no successors (the paper's analysis assumes
//! `d_out(j) > 0` for every `j`), and produces an immutable CSR graph.

use crate::csr::{DiGraph, VertexId};
use crate::{GraphError, Result};

/// What to do with vertices that end up with out-degree zero.
///
/// PageRank's transition matrix `P_ij = A_ij / d_out(j)` is undefined for dangling
/// vertices, so they must be handled before the algorithms run. GraphLab's PageRank
/// and most practical systems use a self-loop or an implicit uniform jump; we offer
/// both plus a strict mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Add a self-loop `v -> v` to every dangling vertex. This is the default and is
    /// what the experiment drivers use: it keeps the graph structure local (no dense
    /// rows) and matches how the FrogWild implementation treats a frog stuck on a
    /// sink — it simply stays put until it dies.
    #[default]
    SelfLoop,
    /// Return [`GraphError::DanglingVertex`] if any vertex has no successor.
    Error,
    /// Leave dangling vertices untouched. Algorithms must then cope with them
    /// explicitly (the serial reference implementation redistributes their mass
    /// uniformly, the standard "dangling correction").
    Keep,
}

/// Incremental builder for [`DiGraph`].
///
/// ```
/// use frogwild_graph::{GraphBuilder, DanglingPolicy};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// b.add_edge(1, 2).unwrap(); // duplicate
/// let g = b.dedup(true).dangling_policy(DanglingPolicy::SelfLoop).build().unwrap();
/// assert_eq!(g.num_edges(), 3); // 0->1, 1->2, and the self-loop added to vertex 2
/// assert!(g.has_no_dangling());
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
    remove_self_loops: bool,
    dangling: DanglingPolicy,
}

impl GraphBuilder {
    /// A builder for a graph with `num_vertices` vertices and no edges yet.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            dedup: false,
            remove_self_loops: false,
            dangling: DanglingPolicy::default(),
        }
    }

    /// Pre-allocates room for `n` additional edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Number of vertices the final graph will have (ignoring the dangling policy,
    /// which never adds vertices).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently accumulated.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `src -> dst`, checking bounds.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> Result<()> {
        if (src as usize) >= self.num_vertices || (dst as usize) >= self.num_vertices {
            return Err(GraphError::VertexOutOfBounds {
                vertex: src.max(dst) as u64,
                num_vertices: self.num_vertices as u64,
            });
        }
        self.edges.push((src, dst));
        Ok(())
    }

    /// Adds a directed edge without bounds checking (the check happens again in
    /// `build`, so this only defers the error). Useful in hot generator loops where the
    /// generator guarantees validity.
    pub fn add_edge_unchecked(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!((src as usize) < self.num_vertices);
        debug_assert!((dst as usize) < self.num_vertices);
        self.edges.push((src, dst));
    }

    /// Adds many edges at once.
    pub fn extend_edges(
        &mut self,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<()> {
        for (s, d) in edges {
            self.add_edge(s, d)?;
        }
        Ok(())
    }

    /// Whether duplicate edges should be collapsed to a single edge (default: `false`).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Whether self-loops should be dropped (default: `false`). Applied before the
    /// dangling policy, so a vertex whose only edge was a self-loop may get it back
    /// under [`DanglingPolicy::SelfLoop`].
    pub fn remove_self_loops(mut self, yes: bool) -> Self {
        self.remove_self_loops = yes;
        self
    }

    /// Sets the policy for vertices with no outgoing edges (default: self-loop).
    pub fn dangling_policy(mut self, policy: DanglingPolicy) -> Self {
        self.dangling = policy;
        self
    }

    /// Freezes the accumulated edges into an immutable [`DiGraph`].
    pub fn build(self) -> Result<DiGraph> {
        let GraphBuilder {
            num_vertices,
            mut edges,
            dedup,
            remove_self_loops,
            dangling,
        } = self;

        for &(s, d) in &edges {
            if (s as usize) >= num_vertices || (d as usize) >= num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: s.max(d) as u64,
                    num_vertices: num_vertices as u64,
                });
            }
        }
        if remove_self_loops {
            edges.retain(|&(s, d)| s != d);
        }
        if dedup {
            edges.sort_unstable();
            edges.dedup();
        }

        // Apply the dangling policy.
        let mut has_out = vec![false; num_vertices];
        for &(s, _) in &edges {
            // lint:allow(indexing, edge endpoints were validated against num_vertices)
            has_out[s as usize] = true;
        }
        match dangling {
            DanglingPolicy::SelfLoop => {
                for (v, &out) in has_out.iter().enumerate() {
                    if !out {
                        edges.push((v as VertexId, v as VertexId));
                    }
                }
            }
            DanglingPolicy::Error => {
                if let Some(v) = has_out.iter().position(|&b| !b) {
                    return Err(GraphError::DanglingVertex {
                        vertex: v as VertexId,
                    });
                }
            }
            DanglingPolicy::Keep => {}
        }

        Ok(DiGraph::from_edges(num_vertices, &edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_no_dangling());
    }

    #[test]
    fn out_of_bounds_rejected_eagerly() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(0, 5).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfBounds { vertex: 5, .. }
        ));
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let mut b = GraphBuilder::new(2);
        b.extend_edges([(0, 1), (0, 1), (0, 1), (1, 0)]).unwrap();
        let g = b.dedup(true).build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn duplicates_kept_without_dedup() {
        let mut b = GraphBuilder::new(2);
        b.extend_edges([(0, 1), (0, 1), (1, 0)]).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn self_loop_policy_fixes_dangling() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build().unwrap(); // default policy: self-loop
        assert!(g.has_no_dangling());
        assert!(g.has_edge(2, 2));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn error_policy_reports_dangling_vertex() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        let err = b
            .dangling_policy(DanglingPolicy::Error)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::DanglingVertex { vertex: 1 }));
    }

    #[test]
    fn keep_policy_leaves_dangling() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        let g = b.dangling_policy(DanglingPolicy::Keep).build().unwrap();
        assert_eq!(g.dangling_vertices(), vec![1]);
    }

    #[test]
    fn remove_self_loops_then_selfloop_policy_restores_needed_ones() {
        let mut b = GraphBuilder::new(2);
        b.extend_edges([(0, 0), (0, 1), (1, 1)]).unwrap();
        let g = b
            .remove_self_loops(true)
            .dangling_policy(DanglingPolicy::SelfLoop)
            .build()
            .unwrap();
        // vertex 0 keeps 0->1; vertex 1 lost its only edge so the policy adds 1->1 back
        assert!(!g.has_edge(0, 0));
        assert!(g.has_edge(1, 1));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_builder_with_selfloop_policy_gives_all_self_loops() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_edges(), 4);
        for v in 0..4 {
            assert!(g.has_edge(v, v));
        }
    }

    #[test]
    fn capacity_hint_does_not_change_result() {
        let mut b = GraphBuilder::new(2).with_edge_capacity(100);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.num_edges(), 1);
        assert_eq!(b.num_vertices(), 2);
    }
}
