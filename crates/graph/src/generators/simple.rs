//! Small deterministic graphs used in unit tests and documentation examples.

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};

/// A directed path `0 -> 1 -> ... -> n-1`, with a self-loop on the final vertex so the
/// graph has no dangling vertices.
pub fn path(n: usize) -> DiGraph {
    assert!(n > 0, "path requires at least one vertex");
    let mut b = GraphBuilder::new(n);
    for v in 0..n - 1 {
        b.add_edge_unchecked(v as VertexId, (v + 1) as VertexId);
    }
    // lint:allow(panic, generator edges are in range by construction)
    b.dangling_policy(DanglingPolicy::SelfLoop).build().unwrap()
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n > 0, "cycle requires at least one vertex");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge_unchecked(v as VertexId, ((v + 1) % n) as VertexId);
    }
    // lint:allow(panic, generator edges are in range by construction)
    b.build().unwrap()
}

/// A star with the hub at vertex `0`: every leaf points at the hub and the hub points at
/// every leaf (so the hub accumulates PageRank mass — the canonical "one heavy vertex"
/// test graph).
pub fn star(n: usize) -> DiGraph {
    assert!(n >= 2, "star requires at least two vertices");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge_unchecked(v as VertexId, 0);
        b.add_edge_unchecked(0, v as VertexId);
    }
    // lint:allow(panic, generator edges are in range by construction)
    b.build().unwrap()
}

/// The complete directed graph on `n` vertices (no self-loops): every ordered pair is an
/// edge. PageRank on this graph is exactly uniform, which makes it a useful calibration
/// case for the estimators.
pub fn complete(n: usize) -> DiGraph {
    assert!(n >= 2, "complete graph requires at least two vertices");
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * (n - 1));
    for s in 0..n {
        for d in 0..n {
            if s != d {
                b.add_edge_unchecked(s as VertexId, d as VertexId);
            }
        }
    }
    // lint:allow(panic, generator edges are in range by construction)
    b.build().unwrap()
}

/// Two densely connected communities of `size` vertices each, joined by a single bridge
/// edge in each direction. Vertices `0..size` form community A, `size..2*size` community
/// B. Useful for partitioning tests (a good vertex-cut should not split communities) and
/// for checking that PageRank mass distributes across both communities.
pub fn two_communities(size: usize) -> DiGraph {
    assert!(size >= 2, "communities need at least two vertices each");
    let n = 2 * size;
    let mut b = GraphBuilder::new(n);
    for offset in [0, size] {
        for s in 0..size {
            for d in 0..size {
                if s != d {
                    b.add_edge_unchecked((offset + s) as VertexId, (offset + d) as VertexId);
                }
            }
        }
    }
    // bridges between the communities
    b.add_edge_unchecked(0, size as VertexId);
    b.add_edge_unchecked(size as VertexId, 0);
    // lint:allow(panic, generator edges are in range by construction)
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5); // 4 path edges + terminal self-loop
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(4, 4));
        assert!(g.has_no_dangling());
    }

    #[test]
    fn single_vertex_path_is_self_loop() {
        let g = path(1);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(3, 0));
        assert!(g.has_no_dangling());
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn star_hub_has_high_degree() {
        let g = star(10);
        assert_eq!(g.out_degree(0), 9);
        assert_eq!(g.in_degree(0), 9);
        for v in 1..10 {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
            assert_eq!(g.in_degree(v), 4);
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn two_communities_shape() {
        let size = 4;
        let g = two_communities(size);
        assert_eq!(g.num_vertices(), 8);
        // each community is complete: size*(size-1) edges, plus 2 bridges
        assert_eq!(g.num_edges(), 2 * size * (size - 1) + 2);
        assert!(g.has_edge(0, size as u32));
        assert!(g.has_edge(size as u32, 0));
        assert!(!g.has_edge(1, (size + 1) as u32));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn star_requires_two_vertices() {
        let _ = star(1);
    }
}
