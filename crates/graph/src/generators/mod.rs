//! Synthetic graph generators.
//!
//! The paper evaluates on the Twitter (41.6M vertices, 1.4B edges) and LiveJournal
//! (4.8M vertices, 69M edges) graphs. Those datasets are not redistributable with this
//! repository, so the experiment harness uses synthetic graphs whose *shape* matches the
//! properties the paper's analysis relies on: a heavy-tailed in-degree distribution
//! (power-law exponent θ ≈ 2.2, see Proposition 7) and a strongly skewed PageRank vector.
//!
//! Four random families are provided:
//!
//! * [`rmat()`] — the recursive-matrix (Kronecker) generator behind Graph500, which is the
//!   standard stand-in for social graphs in the graph-engine literature (it is the
//!   generator the PowerGraph paper itself uses for synthetic scaling studies).
//! * [`chung_lu()`] — the Chung–Lu configuration model with an explicit power-law expected
//!   degree sequence, when direct control over the exponent is needed.
//! * [`preferential_attachment()`] — Barabási–Albert growth, producing the age/degree
//!   correlation real citation and follower graphs show.
//! * [`watts_strogatz()`] — small-world graphs with a *flat* degree distribution, used as
//!   the negative control in the ablation benchmarks (FrogWild's advantage shrinks when
//!   the PageRank vector carries no heavy tail).
//!
//! Deterministic small graphs ([`simple`]) are used throughout the test suites.
//!
//! The [`twitter_like`] and [`livejournal_like`] presets produce scaled-down graphs with
//! the same average degree (≈ 34 and ≈ 14 respectively) and skew as the paper's datasets.

pub mod chung_lu;
pub mod erdos_renyi;
pub mod preferential_attachment;
pub mod rmat;
pub mod simple;
pub mod watts_strogatz;

pub use chung_lu::{chung_lu, power_law_weights};
pub use erdos_renyi::{gnm, gnp};
pub use preferential_attachment::{preferential_attachment, PrefAttachParams};
pub use rmat::{rmat, RmatParams};
pub use simple::{complete, cycle, path, star, two_communities};
pub use watts_strogatz::{watts_strogatz, WattsStrogatzParams};

use crate::csr::DiGraph;
use rand::Rng;

/// A scaled-down synthetic graph with the Twitter follower graph's shape:
/// average out-degree ≈ 34 and strong in-degree skew.
///
/// `num_vertices` controls the scale; the paper uses 41.6M vertices, the default
/// experiment harness uses 100k–1M. Dangling vertices are fixed with self-loops.
pub fn twitter_like<R: Rng>(num_vertices: usize, rng: &mut R) -> DiGraph {
    let params = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        edge_factor: 34.0,
        ..RmatParams::default()
    };
    rmat(num_vertices, params, rng)
}

/// A scaled-down synthetic graph with the LiveJournal graph's shape:
/// average out-degree ≈ 14, slightly less skewed than Twitter.
pub fn livejournal_like<R: Rng>(num_vertices: usize, rng: &mut R) -> DiGraph {
    let params = RmatParams {
        a: 0.52,
        b: 0.20,
        c: 0.21,
        edge_factor: 14.0,
        ..RmatParams::default()
    };
    rmat(num_vertices, params, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn twitter_like_has_expected_scale() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = twitter_like(2_000, &mut rng);
        assert_eq!(g.num_vertices(), 2_000);
        let avg_deg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg_deg > 20.0 && avg_deg < 40.0, "avg degree {avg_deg}");
        assert!(g.has_no_dangling());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn livejournal_like_has_expected_scale() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = livejournal_like(2_000, &mut rng);
        let avg_deg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg_deg > 8.0 && avg_deg < 18.0, "avg degree {avg_deg}");
        assert!(g.has_no_dangling());
    }

    #[test]
    fn presets_are_reproducible_from_seed() {
        let g1 = twitter_like(500, &mut SmallRng::seed_from_u64(42));
        let g2 = twitter_like(500, &mut SmallRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    fn presets_differ_across_seeds() {
        let g1 = twitter_like(500, &mut SmallRng::seed_from_u64(1));
        let g2 = twitter_like(500, &mut SmallRng::seed_from_u64(2));
        assert_ne!(g1, g2);
    }

    #[test]
    fn twitter_like_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = twitter_like(5_000, &mut rng);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_vertices() as f64;
        // heavy tail: the max in-degree should be far above the average
        assert!(max_in as f64 > 10.0 * avg_in, "max {max_in}, avg {avg_in}");
    }
}
