//! R-MAT (recursive matrix) / stochastic-Kronecker graph generator.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants and drops each edge
//! into quadrant `a`/`b`/`c`/`d` with the configured probabilities. With the usual skewed
//! parameters (`a` ≫ `d`) this yields heavy-tailed in- and out-degree distributions very
//! similar to web and social graphs, which is why Graph500 and the PowerGraph paper use
//! it for synthetic scaling studies. We use it here to stand in for the Twitter and
//! LiveJournal graphs of the paper's evaluation (see DESIGN.md §2).

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};
use rand::Rng;

/// Parameters of the R-MAT recursion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (edges among "popular" vertices).
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Average number of edges per vertex (the generator draws
    /// `edge_factor * num_vertices` edges before deduplication of exact duplicates is
    /// *not* applied — parallel edges are kept, as in the raw Graph500 output).
    pub edge_factor: f64,
    /// Noise added to the quadrant probabilities at every recursion level, which avoids
    /// the artificial "staircase" degree distribution of noiseless R-MAT.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // Graph500 defaults.
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            edge_factor: 16.0,
            noise: 0.05,
        }
    }
}

impl RmatParams {
    /// The implied probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Checks that the quadrant probabilities form a distribution and the edge factor is
    /// positive.
    pub fn validate(&self) -> Result<(), crate::Error> {
        let d = self.d();
        if self.a < 0.0 || self.b < 0.0 || self.c < 0.0 || d < -1e-9 {
            return Err(crate::Error::config(
                "RmatParams",
                format!(
                    "quadrant probabilities must be non-negative (a={}, b={}, c={}, d={})",
                    self.a, self.b, self.c, d
                ),
            ));
        }
        if self.edge_factor <= 0.0 {
            return Err(crate::Error::config(
                "RmatParams",
                "edge_factor must be positive",
            ));
        }
        if !(0.0..0.5).contains(&self.noise) {
            return Err(crate::Error::config(
                "RmatParams",
                "noise must be in [0, 0.5)",
            ));
        }
        Ok(())
    }
}

/// Generates an R-MAT graph with `num_vertices` vertices (rounded up internally to a
/// power of two for the recursion, then mapped back down by rejection) and roughly
/// `edge_factor * num_vertices` directed edges. Dangling vertices receive self-loops.
pub fn rmat<R: Rng>(num_vertices: usize, params: RmatParams, rng: &mut R) -> DiGraph {
    assert!(num_vertices > 0, "rmat requires at least one vertex");
    if let Err(e) = params.validate() {
        // lint:allow(panic, documented precondition: invalid generator parameters are a caller bug)
        panic!("{e}");
    }

    let scale = (num_vertices as f64).log2().ceil().max(1.0) as u32;
    let padded = 1usize << scale;
    let num_edges = (params.edge_factor * num_vertices as f64).round() as usize;

    let mut b = GraphBuilder::new(num_vertices).with_edge_capacity(num_edges);
    let mut generated = 0usize;
    // Rejection sampling: the recursion works on the padded power-of-two id space; edges
    // that land outside the real vertex range are re-drawn. For typical sizes the
    // acceptance rate is >= 25% (both endpoints), so this terminates quickly.
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(40).max(1_000);
    while generated < num_edges && attempts < max_attempts {
        attempts += 1;
        let (src, dst) = sample_edge(scale, padded, &params, rng);
        if src < num_vertices && dst < num_vertices && src != dst {
            b.add_edge_unchecked(src as VertexId, dst as VertexId);
            generated += 1;
        }
    }
    // lint:allow(panic, generator edges are in range by construction)
    b.dangling_policy(DanglingPolicy::SelfLoop).build().unwrap()
}

/// Draws one edge by descending `scale` levels of the recursion.
fn sample_edge<R: Rng>(
    scale: u32,
    padded: usize,
    params: &RmatParams,
    rng: &mut R,
) -> (usize, usize) {
    debug_assert!(padded == 1usize << scale);
    let mut src = 0usize;
    let mut dst = 0usize;
    let mut half = padded >> 1;
    for _ in 0..scale {
        // Per-level multiplicative noise keeps the degree distribution smooth.
        let jitter = |p: f64, rng: &mut R| -> f64 {
            let factor = 1.0 + params.noise * (2.0 * rng.gen::<f64>() - 1.0);
            (p * factor).max(0.0)
        };
        let a = jitter(params.a, rng);
        let b = jitter(params.b, rng);
        let c = jitter(params.c, rng);
        let d = jitter(params.d().max(0.0), rng);
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        let (down, right) = if r < a {
            (false, false)
        } else if r < a + b {
            (false, true)
        } else if r < a + b + c {
            (true, false)
        } else {
            (true, true)
        };
        if down {
            src += half;
        }
        if right {
            dst += half;
        }
        half >>= 1;
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_params_are_valid() {
        assert!(RmatParams::default().validate().is_ok());
        assert!((RmatParams::default().d() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_rejected() {
        let p = RmatParams {
            a: 0.8,
            b: 0.3,
            c: 0.3,
            ..RmatParams::default()
        };
        assert!(p.validate().is_err());
        let p = RmatParams {
            edge_factor: 0.0,
            ..RmatParams::default()
        };
        assert!(p.validate().is_err());
        let p = RmatParams {
            noise: 0.9,
            ..RmatParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn generates_requested_scale() {
        let mut rng = SmallRng::seed_from_u64(123);
        let n = 1_000;
        let g = rmat(n, RmatParams::default(), &mut rng);
        assert_eq!(g.num_vertices(), n);
        let avg = g.num_edges() as f64 / n as f64;
        assert!(avg > 10.0 && avg < 20.0, "avg degree {avg}");
        assert!(g.has_no_dangling());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(321);
        let n = 4_000;
        let g = rmat(n, RmatParams::default(), &mut rng);
        let mut in_degrees: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let avg = g.num_edges() as f64 / n as f64;
        // The heaviest vertex should collect far more than the average in-degree, and
        // a large fraction of vertices should sit below the average (skew).
        assert!(in_degrees[0] as f64 > 8.0 * avg);
        let below = in_degrees.iter().filter(|&&d| (d as f64) < avg).count();
        assert!(below as f64 > 0.55 * n as f64);
    }

    #[test]
    fn reproducible_from_seed() {
        let g1 = rmat(300, RmatParams::default(), &mut SmallRng::seed_from_u64(5));
        let g2 = rmat(300, RmatParams::default(), &mut SmallRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    fn works_for_tiny_graphs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = rmat(2, RmatParams::default(), &mut rng);
        assert_eq!(g.num_vertices(), 2);
        assert!(g.has_no_dangling());
        let g = rmat(1, RmatParams::default(), &mut rng);
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn no_self_loops_except_dangling_fixups() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = rmat(500, RmatParams::default(), &mut rng);
        for v in g.vertices() {
            if g.has_edge(v, v) {
                // a self-loop may only exist if it was added as the sole out-edge
                assert_eq!(g.out_degree(v), 1, "vertex {v} has a spurious self-loop");
            }
        }
    }
}
