//! Barabási–Albert style preferential attachment.
//!
//! The FrogWild analysis (Proposition 7) only needs the *tail* of the PageRank vector to
//! follow a power law; preferential attachment is the classic growth process producing
//! such tails (exponent ≈ 3 for the pure model, tunable towards the paper's θ ≈ 2.2 by
//! mixing in uniform attachment). The generator complements [`rmat`](super::rmat()) and
//! [`chung_lu`](super::chung_lu()): R-MAT controls community structure, Chung–Lu controls
//! the exponent exactly, and preferential attachment produces the "rich get richer"
//! correlation between age and degree that real citation/follower graphs show.

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};
use rand::Rng;

/// Parameters of the [`preferential_attachment`] generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrefAttachParams {
    /// Out-edges added by every new vertex (`m` in the Barabási–Albert model).
    pub edges_per_vertex: usize,
    /// Probability that an individual edge chooses its target *uniformly* instead of
    /// proportionally to in-degree. `0.0` gives the pure BA model (tail exponent ≈ 3);
    /// larger values flatten the tail, smaller graphs of the Twitter/LiveJournal shape
    /// use small values.
    pub uniform_mix: f64,
}

impl Default for PrefAttachParams {
    fn default() -> Self {
        PrefAttachParams {
            edges_per_vertex: 8,
            uniform_mix: 0.1,
        }
    }
}

impl PrefAttachParams {
    /// Validates the parameters, returning a description of the first problem found.
    pub fn validate(&self) -> Result<(), crate::Error> {
        if self.edges_per_vertex == 0 {
            return Err(crate::Error::config(
                "PrefAttachParams",
                "edges_per_vertex must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.uniform_mix) {
            return Err(crate::Error::config(
                "PrefAttachParams",
                format!("uniform_mix must be in [0, 1], got {}", self.uniform_mix),
            ));
        }
        Ok(())
    }
}

/// Directed Barabási–Albert preferential-attachment graph.
///
/// Vertices are added one at a time. Each new vertex `v` emits
/// `params.edges_per_vertex` out-edges; every edge picks its target among the already
/// present vertices either proportionally to `in_degree + 1` (with probability
/// `1 - uniform_mix`) or uniformly (with probability `uniform_mix`). The `+1` smoothing
/// lets vertices that have not yet been cited receive their first edge.
///
/// The first `edges_per_vertex + 1` vertices are wired into a directed cycle so that the
/// attachment process has targets to choose from and no vertex is dangling. Duplicate
/// targets drawn by the same source are kept as parallel edges (they carry real weight
/// in the random-walk transition matrix), matching how the other generators treat
/// multi-edges before the builder's optional dedup.
///
/// # Panics
///
/// Panics if `num_vertices` is smaller than `edges_per_vertex + 1` or the parameters are
/// invalid.
pub fn preferential_attachment<R: Rng>(
    num_vertices: usize,
    params: PrefAttachParams,
    rng: &mut R,
) -> DiGraph {
    if let Err(e) = params.validate() {
        // lint:allow(panic, documented precondition: invalid generator parameters are a caller bug)
        panic!("{e}");
    }
    let m = params.edges_per_vertex;
    assert!(
        num_vertices > m,
        "need more than edges_per_vertex ({m}) vertices, got {num_vertices}"
    );

    let seed_vertices = m + 1;
    let mut builder = GraphBuilder::new(num_vertices)
        .with_edge_capacity(seed_vertices + (num_vertices - seed_vertices) * m);

    // `targets` is the classic repeated-vertex list: every time a vertex receives an
    // in-edge it is appended once, so sampling a uniform element of the list samples
    // proportionally to in-degree (+1 via the initial seeding below).
    let mut targets: Vec<VertexId> = Vec::with_capacity(num_vertices * (m + 1));

    // Seed: a directed cycle over the first `seed_vertices` vertices.
    for v in 0..seed_vertices {
        let next = ((v + 1) % seed_vertices) as VertexId;
        builder.add_edge_unchecked(v as VertexId, next);
        targets.push(next);
        // The +1 smoothing: every existing vertex appears at least once.
        targets.push(v as VertexId);
    }

    for v in seed_vertices..num_vertices {
        let vid = v as VertexId;
        for _ in 0..m {
            let dst = if rng.gen::<f64>() < params.uniform_mix {
                rng.gen_range(0..v) as VertexId
            } else {
                // lint:allow(indexing, gen_range is bounded by the target-pool length)
                targets[rng.gen_range(0..targets.len())]
            };
            // Avoid trivial self-loops; the target must already exist so dst < vid holds
            // for the uniform branch, and the preferential branch only contains ids < v.
            debug_assert!(dst < vid);
            builder.add_edge_unchecked(vid, dst);
            targets.push(dst);
        }
        // Smoothing entry for the newly added vertex so it can be cited later.
        targets.push(vid);
    }

    builder
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        // lint:allow(panic, generator edges are in range by construction)
        .expect("preferential-attachment edges are constructed in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_summary, Direction};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn produces_requested_scale() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = preferential_attachment(2_000, PrefAttachParams::default(), &mut rng);
        assert_eq!(g.num_vertices(), 2_000);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 6.0 && avg < 10.0, "avg degree {avg}");
        assert!(g.has_no_dangling());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = preferential_attachment(5_000, PrefAttachParams::default(), &mut rng);
        let summary = degree_summary(&g, Direction::In);
        assert!(
            summary.max as f64 > 20.0 * summary.mean,
            "max in-degree {} vs mean {}",
            summary.max,
            summary.mean
        );
    }

    #[test]
    fn early_vertices_accumulate_more_citations() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = preferential_attachment(4_000, PrefAttachParams::default(), &mut rng);
        let early: usize = (0..100).map(|v| g.in_degree(v)).sum();
        let late: usize = (3_900..4_000u32).map(|v| g.in_degree(v)).sum();
        assert!(
            early > 5 * late.max(1),
            "early vertices got {early} in-edges, late got {late}"
        );
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let params = PrefAttachParams::default();
        let a = preferential_attachment(800, params, &mut SmallRng::seed_from_u64(9));
        let b = preferential_attachment(800, params, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = preferential_attachment(800, params, &mut SmallRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn pure_uniform_mix_is_much_flatter() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heavy = preferential_attachment(3_000, PrefAttachParams::default(), &mut rng);
        let flat = preferential_attachment(
            3_000,
            PrefAttachParams {
                uniform_mix: 1.0,
                ..PrefAttachParams::default()
            },
            &mut rng,
        );
        let max_heavy = degree_summary(&heavy, Direction::In).max;
        let max_flat = degree_summary(&flat, Direction::In).max;
        assert!(
            max_heavy > 2 * max_flat,
            "preferential max {max_heavy} vs uniform max {max_flat}"
        );
    }

    #[test]
    fn minimal_size_works() {
        let mut rng = SmallRng::seed_from_u64(1);
        let params = PrefAttachParams {
            edges_per_vertex: 2,
            uniform_mix: 0.0,
        };
        let g = preferential_attachment(4, params, &mut rng);
        assert_eq!(g.num_vertices(), 4);
        assert!(g.has_no_dangling());
    }

    #[test]
    #[should_panic(expected = "need more than edges_per_vertex")]
    fn rejects_too_few_vertices() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = preferential_attachment(3, PrefAttachParams::default(), &mut rng);
    }

    #[test]
    fn params_validation() {
        assert!(PrefAttachParams::default().validate().is_ok());
        assert!(PrefAttachParams {
            edges_per_vertex: 0,
            ..PrefAttachParams::default()
        }
        .validate()
        .is_err());
        assert!(PrefAttachParams {
            uniform_mix: 1.5,
            ..PrefAttachParams::default()
        }
        .validate()
        .is_err());
    }
}
