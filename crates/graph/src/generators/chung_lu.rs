//! Chung–Lu random graphs with an explicit power-law expected-degree sequence.
//!
//! The paper's Proposition 7 assumes the PageRank vector follows a power law with
//! exponent θ ≈ 2.2 in its tail (citing Becchetti & Castillo). The Chung–Lu model gives
//! direct control over the degree exponent, so the theory benchmarks use it to validate
//! the `‖π‖∞ ≤ n^{-γ}` bound and the intersection-probability bound empirically.

// lint:allow-file(indexing, weight and order tables are all sized n within this function)

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};
use rand::Rng;

/// Expected-degree weights `w_i ∝ (i + i0)^{-1/(θ-1)}`, normalised so the average weight
/// equals `avg_degree`. This is the standard construction giving a degree distribution
/// with power-law exponent `θ`.
pub fn power_law_weights(n: usize, theta: f64, avg_degree: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one vertex");
    assert!(theta > 1.0, "power-law exponent must exceed 1");
    assert!(avg_degree > 0.0, "average degree must be positive");
    let exponent = -1.0 / (theta - 1.0);
    // Offset i0 avoids an unboundedly heavy first weight for small exponents.
    let i0 = 1.0;
    let mut weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    let scale = avg_degree * n as f64 / sum;
    for w in &mut weights {
        *w *= scale;
    }
    weights
}

/// Chung–Lu directed graph: edge `(i, j)` is present with probability
/// `min(1, w_out[i] * w_in[j] / S)` where `S = Σ w`. Here we use the same weight vector
/// for the out- and in- sides but assign them to *independently shuffled* vertex orders,
/// so high out-degree and high in-degree vertices are not forced to coincide.
///
/// The implementation uses the Miller–Hagberg style bucketed sampling giving an expected
/// cost of `O(n + |E|)`.
pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> DiGraph {
    let n = weights.len();
    assert!(n > 0, "need at least one vertex");
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");

    // Sort vertex ids by decreasing weight; the skipping sampler requires monotone
    // weights. `order[k]` is the original vertex with the k-th largest weight.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| weights[b].total_cmp(&weights[a]));
    let sorted: Vec<f64> = order.iter().map(|&v| weights[v]).collect();

    // Random relabeling for the "in" side so heavy in- and out-degrees land on
    // different vertices (directed Chung–Lu with independent targets).
    let mut in_label: Vec<usize> = (0..n).collect();
    shuffle(&mut in_label, rng);

    let mut b = GraphBuilder::new(n);
    for (src_rank, &wi) in sorted.iter().enumerate() {
        if wi <= 0.0 {
            continue;
        }
        let src = order[src_rank] as VertexId;
        let mut j = 0usize;
        let mut p = (wi * sorted[0] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                // geometric skip
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (u.ln() / (1.0 - p).ln()).floor() as usize;
                j = j.saturating_add(skip);
            }
            if j >= n {
                break;
            }
            let q = (wi * sorted[j] / total).min(1.0);
            // accept with probability q/p (q <= p because weights are sorted descending)
            if rng.gen::<f64>() < q / p {
                let dst = in_label[order[j]] as VertexId;
                if dst != src {
                    b.add_edge_unchecked(src, dst);
                }
            }
            p = q;
            j += 1;
        }
    }
    b.dedup(true)
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        // lint:allow(panic, generator edges are in range by construction)
        .unwrap()
}

/// Fisher–Yates shuffle (kept local to avoid depending on `rand`'s `SliceRandom` trait
/// import at every call site).
fn shuffle<R: Rng, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weights_average_matches_request() {
        let w = power_law_weights(1000, 2.2, 10.0);
        let avg = w.iter().sum::<f64>() / w.len() as f64;
        assert!((avg - 10.0).abs() < 1e-9);
        // weights are decreasing
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn weights_follow_power_law_ratio() {
        let theta = 2.2;
        let w = power_law_weights(10_000, theta, 5.0);
        // w_i ∝ (i+1)^{-1/(θ-1)}; check the ratio between two ranks.
        let expected_ratio = (101.0f64 / 11.0).powf(-1.0 / (theta - 1.0));
        let actual_ratio = w[100] / w[10];
        assert!((actual_ratio - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn chung_lu_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 2_000;
        let avg = 8.0;
        let w = power_law_weights(n, 2.2, avg);
        let g = chung_lu(&w, &mut rng);
        assert_eq!(g.num_vertices(), n);
        let measured = g.num_edges() as f64 / n as f64;
        // dedup + min(1, ..) clipping reduce the count a bit; accept a broad band
        assert!(
            measured > 0.4 * avg && measured < 1.4 * avg,
            "avg degree {measured}, requested {avg}"
        );
        assert!(g.has_no_dangling());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 4_000;
        let w = power_law_weights(n, 2.2, 8.0);
        let g = chung_lu(&w, &mut rng);
        let max_out = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / n as f64;
        assert!(max_out as f64 > 5.0 * avg, "max {max_out}, avg {avg}");
    }

    #[test]
    fn chung_lu_reproducible() {
        let w = power_law_weights(500, 2.2, 6.0);
        let a = chung_lu(&w, &mut SmallRng::seed_from_u64(3));
        let b = chung_lu(&w, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn handles_uniform_weights() {
        let mut rng = SmallRng::seed_from_u64(13);
        let w = vec![4.0; 300];
        let g = chung_lu(&w, &mut rng);
        assert_eq!(g.num_vertices(), 300);
        assert!(g.num_edges() > 300);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_theta_below_one() {
        let _ = power_law_weights(10, 0.5, 3.0);
    }
}
