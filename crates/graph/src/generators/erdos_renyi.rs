//! Erdős–Rényi random directed graphs.
//!
//! These are *not* good stand-ins for social graphs (their degree distribution is
//! binomial, not heavy-tailed) but they are useful as a control: the paper's claim that
//! a small number of frogs suffices hinges on the PageRank vector being skewed, and on
//! an Erdős–Rényi graph the top-k mass is close to `k/n`, which the theory module's
//! bound reflects.

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};
use rand::Rng;

/// `G(n, p)`: every ordered pair `(i, j)`, `i != j`, is an edge independently with
/// probability `p`. Dangling vertices are given self-loops.
///
/// Uses the geometric skipping method so the cost is `O(n + |E|)` rather than `O(n^2)`
/// for sparse graphs.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!(n > 0, "gnp requires at least one vertex");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    if p > 0.0 {
        if p >= 1.0 {
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        b.add_edge_unchecked(s as VertexId, d as VertexId);
                    }
                }
            }
        } else {
            // Geometric skipping over the flattened n*(n-1) possible edges.
            let total = (n as u64) * (n as u64 - 1);
            let log_q = (1.0 - p).ln();
            let mut idx: u64 = 0;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (u.ln() / log_q).floor() as u64;
                idx = idx.saturating_add(skip);
                if idx >= total {
                    break;
                }
                let s = (idx / (n as u64 - 1)) as usize;
                let mut d = (idx % (n as u64 - 1)) as usize;
                if d >= s {
                    d += 1; // skip the diagonal
                }
                b.add_edge_unchecked(s as VertexId, d as VertexId);
                idx += 1;
            }
        }
    }
    // lint:allow(panic, generator edges are in range by construction)
    b.dangling_policy(DanglingPolicy::SelfLoop).build().unwrap()
}

/// `G(n, m)`: exactly `m` edges sampled uniformly (with replacement, then deduplicated,
/// so the result has *at most* `m` distinct edges). Dangling vertices get self-loops.
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    assert!(n > 0, "gnm requires at least one vertex");
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    for _ in 0..m {
        let s = rng.gen_range(0..n) as VertexId;
        let mut d = rng.gen_range(0..n) as VertexId;
        if n > 1 {
            while d == s {
                d = rng.gen_range(0..n) as VertexId;
            }
        }
        b.add_edge_unchecked(s, d);
    }
    b.dedup(true)
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        // lint:allow(panic, generator edges are in range by construction)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_edge_count_close_to_expectation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 500;
        let p = 0.02;
        let g = gnp(n, p, &mut rng);
        let expected = (n * (n - 1)) as f64 * p;
        let actual = g.num_edges() as f64;
        // within 20% of expectation (plus a handful of self-loops for dangling fix-up)
        assert!(
            (actual - expected).abs() < 0.2 * expected + 20.0,
            "expected ~{expected}, got {actual}"
        );
        assert!(g.has_no_dangling());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn gnp_zero_probability_gives_only_self_loops() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gnp(10, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 10);
        for v in g.vertices() {
            assert!(g.has_edge(v, v));
        }
    }

    #[test]
    fn gnp_full_probability_gives_complete_graph() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gnp(6, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn gnm_respects_edge_budget() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gnm(100, 400, &mut rng);
        // dedup may remove a few, dangling fix-up may add a few
        assert!(g.num_edges() <= 400 + 100);
        assert!(g.num_edges() >= 300);
        assert!(g.has_no_dangling());
    }

    #[test]
    fn gnm_single_vertex_graph() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gnm(1, 3, &mut rng);
        assert_eq!(g.num_vertices(), 1);
        // all sampled edges collapse to the 0->0 self-loop after dedup
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn gnp_reproducible() {
        let a = gnp(200, 0.05, &mut SmallRng::seed_from_u64(9));
        let b = gnp(200, 0.05, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_probability() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = gnp(10, 1.5, &mut rng);
    }
}
