//! Watts–Strogatz small-world graphs.
//!
//! Small-world graphs have short average path lengths but *no* heavy tail, which makes
//! them the natural "negative control" for FrogWild experiments: on a graph whose
//! PageRank vector is nearly flat, capturing the top-k mass requires far more walkers
//! (Remark 6: `N = O(k / µ_k(π)²)` blows up as `µ_k(π) → k/n`). The ablation benchmarks
//! use this generator to show where the algorithm's advantage disappears.

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};
use rand::Rng;

/// Parameters of the [`watts_strogatz`] generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WattsStrogatzParams {
    /// Number of clockwise ring neighbours each vertex initially points to (`k`).
    pub neighbors: usize,
    /// Probability that each lattice edge is rewired to a uniformly random target (`β`).
    /// `0.0` keeps the pure ring lattice, `1.0` gives an Erdős–Rényi-like graph.
    pub rewire_probability: f64,
}

impl Default for WattsStrogatzParams {
    fn default() -> Self {
        WattsStrogatzParams {
            neighbors: 6,
            rewire_probability: 0.1,
        }
    }
}

impl WattsStrogatzParams {
    /// Validates the parameters, returning a description of the first problem found.
    pub fn validate(&self) -> Result<(), crate::Error> {
        if self.neighbors == 0 {
            return Err(crate::Error::config(
                "WattsStrogatzParams",
                "neighbors must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.rewire_probability) {
            return Err(crate::Error::config(
                "WattsStrogatzParams",
                format!(
                    "rewire_probability must be in [0, 1], got {}",
                    self.rewire_probability
                ),
            ));
        }
        Ok(())
    }
}

/// Directed Watts–Strogatz small-world graph.
///
/// Every vertex `v` starts with out-edges to its `neighbors` clockwise successors on a
/// ring (`v+1, …, v+k` modulo `n`). Each edge is then independently rewired with
/// probability `rewire_probability`: its target is replaced by a uniformly random vertex
/// other than the source. Duplicate targets produced by rewiring are removed, and every
/// vertex keeps out-degree ≥ 1 by construction (lattice edges that are *not* rewired
/// stay in place, and rewired edges are re-pointed, never deleted), so the result never
/// contains dangling vertices.
///
/// # Panics
///
/// Panics if the parameters are invalid or `num_vertices <= neighbors`.
pub fn watts_strogatz<R: Rng>(
    num_vertices: usize,
    params: WattsStrogatzParams,
    rng: &mut R,
) -> DiGraph {
    if let Err(e) = params.validate() {
        // lint:allow(panic, documented precondition: invalid generator parameters are a caller bug)
        panic!("{e}");
    }
    let k = params.neighbors;
    assert!(
        num_vertices > k,
        "need more than {k} vertices for {k} ring neighbours, got {num_vertices}"
    );

    let mut builder = GraphBuilder::new(num_vertices).with_edge_capacity(num_vertices * k);
    for v in 0..num_vertices {
        for offset in 1..=k {
            let lattice_dst = ((v + offset) % num_vertices) as VertexId;
            let dst = if rng.gen::<f64>() < params.rewire_probability {
                // Rewire: draw until the target differs from the source. One redraw is
                // almost always enough; the loop guards tiny graphs.
                loop {
                    let candidate = rng.gen_range(0..num_vertices) as VertexId;
                    if candidate != v as VertexId {
                        break candidate;
                    }
                }
            } else {
                lattice_dst
            };
            builder.add_edge_unchecked(v as VertexId, dst);
        }
    }

    builder
        .dedup(true)
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        // lint:allow(panic, generator edges are in range by construction)
        .expect("Watts–Strogatz edges are constructed in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_summary, Direction};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rewiring_gives_the_ring_lattice() {
        let mut rng = SmallRng::seed_from_u64(1);
        let params = WattsStrogatzParams {
            neighbors: 3,
            rewire_probability: 0.0,
        };
        let g = watts_strogatz(10, params, &mut rng);
        assert_eq!(g.num_edges(), 30);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 3);
            assert_eq!(g.in_degree(v), 3);
            for offset in 1..=3u32 {
                assert!(g.has_edge(v, (v + offset) % 10));
            }
        }
    }

    #[test]
    fn rewiring_keeps_out_degree_and_scale() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = watts_strogatz(2_000, WattsStrogatzParams::default(), &mut rng);
        assert_eq!(g.num_vertices(), 2_000);
        // dedup may remove a handful of collision edges, nothing more
        assert!(g.num_edges() > 2_000 * 6 - 200, "{} edges", g.num_edges());
        assert!(g.has_no_dangling());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn degree_distribution_is_flat_compared_to_power_law() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = watts_strogatz(3_000, WattsStrogatzParams::default(), &mut rng);
        let summary = degree_summary(&g, Direction::In);
        // No heavy tail: the maximum in-degree stays within a small factor of the mean.
        assert!(
            (summary.max as f64) < 4.0 * summary.mean,
            "max {} vs mean {}",
            summary.max,
            summary.mean
        );
    }

    #[test]
    fn full_rewiring_destroys_the_lattice() {
        let mut rng = SmallRng::seed_from_u64(4);
        let params = WattsStrogatzParams {
            neighbors: 4,
            rewire_probability: 1.0,
        };
        let g = watts_strogatz(1_000, params, &mut rng);
        // Count how many original lattice edges survived; with full rewiring each edge
        // lands back on its lattice target with probability ~4/999.
        let surviving = g
            .vertices()
            .flat_map(|v| (1..=4u32).map(move |o| (v, (v + o) % 1_000)))
            .filter(|&(v, dst)| g.has_edge(v, dst))
            .count();
        assert!(
            surviving < 100,
            "{surviving} lattice edges survived full rewiring"
        );
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let params = WattsStrogatzParams::default();
        let a = watts_strogatz(500, params, &mut SmallRng::seed_from_u64(7));
        let b = watts_strogatz(500, params, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops_from_rewiring() {
        let mut rng = SmallRng::seed_from_u64(8);
        let params = WattsStrogatzParams {
            neighbors: 2,
            rewire_probability: 1.0,
        };
        let g = watts_strogatz(50, params, &mut rng);
        // Self-loops can only come from the dangling fix, which never triggers here.
        for v in g.vertices() {
            assert!(!g.has_edge(v, v), "unexpected self-loop at {v}");
        }
    }

    #[test]
    #[should_panic(expected = "need more than")]
    fn rejects_too_few_vertices() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = watts_strogatz(
            4,
            WattsStrogatzParams {
                neighbors: 6,
                rewire_probability: 0.1,
            },
            &mut rng,
        );
    }

    #[test]
    fn params_validation() {
        assert!(WattsStrogatzParams::default().validate().is_ok());
        assert!(WattsStrogatzParams {
            neighbors: 0,
            ..WattsStrogatzParams::default()
        }
        .validate()
        .is_err());
        assert!(WattsStrogatzParams {
            rewire_probability: -0.1,
            ..WattsStrogatzParams::default()
        }
        .validate()
        .is_err());
    }
}
