//! Uniform edge sparsification.
//!
//! Section 2.4 / Figure 5 of the paper compare FrogWild against a simple baseline:
//! independently delete every edge with probability `r = 1 - q`, then run a few
//! iterations of the standard PageRank on the sparsified graph. This module implements
//! that sparsifier with the same "keep at least one out-edge" safeguard the engine's
//! erasure model uses, so the comparison is apples-to-apples.

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::DiGraph;
use rand::Rng;

/// How vertices that lose all their out-edges are handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SparsifyMode {
    /// If every out-edge of a vertex was deleted, re-enable one of them chosen uniformly
    /// at random. This mirrors the paper's "At Least One Out-Edge Per Node" erasure
    /// model (Example 10) and keeps the transition matrix well defined.
    #[default]
    KeepAtLeastOne,
    /// Delete edges fully independently; vertices that end up dangling receive a
    /// self-loop (mirroring Example 9, "Independent Erasures", plus the standard
    /// dangling fix).
    Independent,
}

/// Returns a sparsified copy of `graph` in which each edge is kept independently with
/// probability `keep_probability` (the paper's `q = 1 - r`).
///
/// # Panics
///
/// Panics if `keep_probability` is outside `[0, 1]`.
pub fn uniform_sparsify<R: Rng>(
    graph: &DiGraph,
    keep_probability: f64,
    mode: SparsifyMode,
    rng: &mut R,
) -> DiGraph {
    assert!(
        (0.0..=1.0).contains(&keep_probability),
        "keep_probability must be in [0, 1]"
    );
    let n = graph.num_vertices();
    let mut b = GraphBuilder::new(n)
        .with_edge_capacity((graph.num_edges() as f64 * keep_probability) as usize + n);
    for v in graph.vertices() {
        let neighbors = graph.out_neighbors(v);
        if neighbors.is_empty() {
            continue;
        }
        let mut kept_any = false;
        for &d in neighbors {
            if rng.gen::<f64>() < keep_probability {
                b.add_edge_unchecked(v, d);
                kept_any = true;
            }
        }
        if !kept_any && mode == SparsifyMode::KeepAtLeastOne {
            // lint:allow(indexing, gen_range is bounded by the neighbor count)
            let pick = neighbors[rng.gen_range(0..neighbors.len())];
            b.add_edge_unchecked(v, pick);
        }
    }
    let policy = match mode {
        SparsifyMode::KeepAtLeastOne => DanglingPolicy::SelfLoop, // only isolated inputs remain
        SparsifyMode::Independent => DanglingPolicy::SelfLoop,
    };
    // lint:allow(panic, builder input is a subset of an already-validated graph)
    b.dangling_policy(policy).build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple::complete;
    use crate::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn keep_probability_one_preserves_graph() {
        let g = complete(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = uniform_sparsify(&g, 1.0, SparsifyMode::KeepAtLeastOne, &mut rng);
        assert_eq!(g, s);
    }

    #[test]
    fn keep_probability_zero_keeps_one_edge_per_vertex() {
        let g = complete(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = uniform_sparsify(&g, 0.0, SparsifyMode::KeepAtLeastOne, &mut rng);
        assert_eq!(s.num_vertices(), 8);
        for v in s.vertices() {
            assert_eq!(s.out_degree(v), 1);
        }
        assert!(s.has_no_dangling());
    }

    #[test]
    fn keep_probability_zero_independent_gives_self_loops() {
        let g = complete(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = uniform_sparsify(&g, 0.0, SparsifyMode::Independent, &mut rng);
        for v in s.vertices() {
            assert_eq!(s.out_neighbors(v), &[v]);
        }
    }

    #[test]
    fn edge_count_scales_with_keep_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = rmat(2_000, RmatParams::default(), &mut rng);
        let q = 0.4;
        let s = uniform_sparsify(&g, q, SparsifyMode::KeepAtLeastOne, &mut rng);
        let ratio = s.num_edges() as f64 / g.num_edges() as f64;
        assert!(
            (ratio - q).abs() < 0.08,
            "kept ratio {ratio}, expected about {q}"
        );
        assert!(s.has_no_dangling());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn sparsified_edges_are_subset_of_original() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = rmat(500, RmatParams::default(), &mut rng);
        let s = uniform_sparsify(&g, 0.5, SparsifyMode::KeepAtLeastOne, &mut rng);
        for (src, dst) in s.edges() {
            assert!(
                g.has_edge(src, dst) || src == dst,
                "edge ({src},{dst}) not in original"
            );
        }
    }

    #[test]
    fn reproducible_from_seed() {
        let g = complete(20);
        let a = uniform_sparsify(
            &g,
            0.3,
            SparsifyMode::KeepAtLeastOne,
            &mut SmallRng::seed_from_u64(7),
        );
        let b = uniform_sparsify(
            &g,
            0.3,
            SparsifyMode::KeepAtLeastOne,
            &mut SmallRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "keep_probability")]
    fn rejects_invalid_probability() {
        let g = complete(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = uniform_sparsify(&g, 1.5, SparsifyMode::KeepAtLeastOne, &mut rng);
    }
}
