//! SNAP-style edge-list input and output.
//!
//! The paper's datasets (LiveJournal `soc-LiveJournal1.txt`, Twitter `twitter-2010.txt`)
//! are distributed as whitespace-separated `src dst` edge lists with `#`-prefixed
//! comment lines. These readers accept that format so the real datasets can be used with
//! the experiment harness without modification; the writers emit the same format so
//! generated graphs can be shared with external tools (including the original GraphLab
//! implementation).

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};
use crate::{GraphError, Result};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Options controlling how an edge list is interpreted.
#[derive(Clone, Debug)]
pub struct EdgeListOptions {
    /// Collapse duplicate edges (default: `true`, matching GraphLab ingress behaviour).
    pub dedup: bool,
    /// Drop self-loops found in the input (default: `false`).
    pub remove_self_loops: bool,
    /// What to do with vertices that have no outgoing edges after loading.
    pub dangling: DanglingPolicy,
    /// If `true`, vertex ids are re-mapped to a dense `0..n` range in order of first
    /// appearance; if `false` the ids are used verbatim and the vertex count is
    /// `max_id + 1` (default: `true` — SNAP files frequently have sparse id spaces).
    pub relabel: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            dedup: true,
            remove_self_loops: false,
            dangling: DanglingPolicy::SelfLoop,
            relabel: true,
        }
    }
}

/// Reads an edge list from any `Read` implementation.
///
/// Returns the graph together with the relabeling table (`original_id -> dense_id`)
/// when `relabel` is enabled (the table is empty otherwise).
pub fn read_edge_list<R: Read>(
    reader: R,
    options: &EdgeListOptions,
) -> Result<(DiGraph, BTreeMap<u64, VertexId>)> {
    let reader = BufReader::new(reader);
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parts.next();
        let dst = parts.next();
        match (src, dst) {
            (Some(s), Some(d)) => {
                let s: u64 = s.parse().map_err(|_| GraphError::Parse {
                    line: idx + 1,
                    content: line.clone(),
                })?;
                let d: u64 = d.parse().map_err(|_| GraphError::Parse {
                    line: idx + 1,
                    content: line.clone(),
                })?;
                raw_edges.push((s, d));
            }
            _ => {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    content: line,
                })
            }
        }
    }

    let mut mapping: BTreeMap<u64, VertexId> = BTreeMap::new();
    let edges: Vec<(VertexId, VertexId)>;
    let num_vertices: usize;
    if options.relabel {
        edges = raw_edges
            .iter()
            .map(|&(s, d)| {
                let next = mapping.len() as VertexId;
                let si = *mapping.entry(s).or_insert(next);
                let next = mapping.len() as VertexId;
                let di = *mapping.entry(d).or_insert(next);
                (si, di)
            })
            .collect();
        num_vertices = mapping.len();
    } else {
        let max_id = raw_edges.iter().map(|&(s, d)| s.max(d)).max().unwrap_or(0);
        if max_id >= VertexId::MAX as u64 {
            return Err(GraphError::VertexOutOfBounds {
                vertex: max_id,
                num_vertices: VertexId::MAX as u64,
            });
        }
        edges = raw_edges
            .iter()
            .map(|&(s, d)| (s as VertexId, d as VertexId))
            .collect();
        num_vertices = if raw_edges.is_empty() {
            0
        } else {
            max_id as usize + 1
        };
    }

    let mut builder = GraphBuilder::new(num_vertices).with_edge_capacity(edges.len());
    builder.extend_edges(edges)?;
    let graph = builder
        .dedup(options.dedup)
        .remove_self_loops(options.remove_self_loops)
        .dangling_policy(options.dangling)
        .build()?;
    Ok((graph, mapping))
}

/// Reads an edge list from a file path. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    options: &EdgeListOptions,
) -> Result<(DiGraph, BTreeMap<u64, VertexId>)> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

/// Writes the graph as a SNAP-style edge list, one `src\tdst` pair per line, preceded by
/// a comment header with the vertex and edge counts.
pub fn write_edge_list<W: Write>(graph: &DiGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Directed graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    writeln!(w, "# FromNodeId\tToNodeId")?;
    for (s, d) in graph.edges() {
        writeln!(w, "{s}\t{d}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph to a file path. See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
0\t1
0\t2
1\t2
2\t0
";

    #[test]
    fn reads_snap_format_with_comments() {
        let (g, map) = read_edge_list(SAMPLE.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(map.len(), 3);
        assert!(g.has_no_dangling());
    }

    #[test]
    fn relabeling_densifies_sparse_ids() {
        let input = "100 200\n200 300\n300 100\n";
        let (g, map) = read_edge_list(input.as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(map[&100], 0);
        assert_eq!(map[&200], 1);
        assert_eq!(map[&300], 2);
    }

    #[test]
    fn no_relabel_uses_max_id() {
        let input = "0 5\n5 0\n";
        let options = EdgeListOptions {
            relabel: false,
            ..EdgeListOptions::default()
        };
        let (g, map) = read_edge_list(input.as_bytes(), &options).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert!(map.is_empty());
        // vertices 1..5 were dangling and received self-loops
        assert!(g.has_no_dangling());
    }

    #[test]
    fn dedup_option_controls_duplicates() {
        let input = "0 1\n0 1\n1 0\n";
        let with_dedup = read_edge_list(input.as_bytes(), &EdgeListOptions::default())
            .unwrap()
            .0;
        assert_eq!(with_dedup.num_edges(), 2);
        let no_dedup = read_edge_list(
            input.as_bytes(),
            &EdgeListOptions {
                dedup: false,
                ..EdgeListOptions::default()
            },
        )
        .unwrap()
        .0;
        assert_eq!(no_dedup.num_edges(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let input = "0 1\nnot-an-edge\n";
        let err = read_edge_list(input.as_bytes(), &EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_destination_reports_parse_error() {
        let input = "0\n";
        let err = read_edge_list(input.as_bytes(), &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let (g, _) =
            read_edge_list("# only comments\n".as_bytes(), &EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let g = crate::generators::simple::star(6);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let options = EdgeListOptions {
            relabel: false,
            dedup: false,
            ..EdgeListOptions::default()
        };
        let (g2, _) = read_edge_list(buf.as_slice(), &options).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_round_trip() {
        let g = crate::generators::simple::cycle(5);
        let dir = std::env::temp_dir().join("frogwild_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle5.txt");
        write_edge_list_file(&g, &path).unwrap();
        let options = EdgeListOptions {
            relabel: false,
            dedup: false,
            ..EdgeListOptions::default()
        };
        let (g2, _) = read_edge_list_file(&path, &options).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
