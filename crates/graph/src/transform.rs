//! Whole-graph transforms: dangling fix-up, reversal, induced subgraphs, and
//! weakly-connected-component analysis.
//!
//! These are the pre-processing steps a user would run after loading a raw edge list and
//! before handing the graph to the engine (the paper's ingress stage does the
//! equivalent inside GraphLab).

// lint:allow-file(indexing, label and count tables are sized from this graph vertex count)

use crate::builder::{DanglingPolicy, GraphBuilder};
use crate::csr::{DiGraph, VertexId};

/// Returns a copy of the graph where every dangling vertex (out-degree zero) has been
/// given a self-loop. Graphs without dangling vertices are returned unchanged (cheap
/// clone of the CSR arrays).
pub fn fix_dangling_with_self_loops(graph: &DiGraph) -> DiGraph {
    if graph.has_no_dangling() {
        return graph.clone();
    }
    let mut edges = graph.edge_vec();
    for v in graph.dangling_vertices() {
        edges.push((v, v));
    }
    DiGraph::from_edges(graph.num_vertices(), &edges)
}

/// Returns a copy of the graph with duplicate edges collapsed and (optionally)
/// self-loops removed.
pub fn simplify(graph: &DiGraph, remove_self_loops: bool) -> DiGraph {
    let mut b = GraphBuilder::new(graph.num_vertices()).with_edge_capacity(graph.num_edges());
    for (s, d) in graph.edges() {
        b.add_edge_unchecked(s, d);
    }
    b.dedup(true)
        .remove_self_loops(remove_self_loops)
        .dangling_policy(DanglingPolicy::Keep)
        .build()
        // lint:allow(panic, builder input is a subset of an already-validated graph)
        .unwrap()
}

/// The subgraph induced by `vertices`. Vertex ids are re-mapped densely in the order
/// given; the mapping `new_id -> old_id` is returned alongside the subgraph. Dangling
/// vertices created by the restriction receive self-loops so the result is always a
/// valid PageRank input.
pub fn induced_subgraph(graph: &DiGraph, vertices: &[VertexId]) -> (DiGraph, Vec<VertexId>) {
    let mut new_id = vec![VertexId::MAX; graph.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        assert!(
            (v as usize) < graph.num_vertices(),
            "vertex {v} out of bounds"
        );
        new_id[v as usize] = i as VertexId;
    }
    let mut b = GraphBuilder::new(vertices.len());
    for &v in vertices {
        let sv = new_id[v as usize];
        for &d in graph.out_neighbors(v) {
            let dv = new_id[d as usize];
            if dv != VertexId::MAX {
                b.add_edge_unchecked(sv, dv);
            }
        }
    }
    let sub = b
        .dedup(true)
        .dangling_policy(DanglingPolicy::SelfLoop)
        .build()
        // lint:allow(panic, builder input is a subset of an already-validated graph)
        .unwrap();
    (sub, vertices.to_vec())
}

/// Labels of the weakly connected component of every vertex (edges treated as
/// undirected). Labels are arbitrary but dense in `0..num_components`.
pub fn weakly_connected_components(graph: &DiGraph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next_label = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next_label;
        stack.push(start as VertexId);
        while let Some(v) = stack.pop() {
            for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next_label;
                    stack.push(u);
                }
            }
        }
        next_label += 1;
    }
    label
}

/// Number of weakly connected components.
pub fn num_weakly_connected_components(graph: &DiGraph) -> usize {
    weakly_connected_components(graph)
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0)
}

/// The vertices of the largest weakly connected component, in ascending id order.
pub fn largest_weakly_connected_component(graph: &DiGraph) -> Vec<VertexId> {
    let labels = weakly_connected_components(graph);
    if labels.is_empty() {
        return Vec::new();
    }
    let num = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut counts = vec![0usize; num];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == best)
        .map(|(v, _)| v as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple::{cycle, two_communities};

    #[test]
    fn fix_dangling_adds_self_loops_only_where_needed() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let fixed = fix_dangling_with_self_loops(&g);
        assert!(fixed.has_no_dangling());
        assert!(fixed.has_edge(2, 2));
        assert_eq!(fixed.num_edges(), 3);
        // untouched graphs come back equal
        let c = cycle(4);
        assert_eq!(fix_dangling_with_self_loops(&c), c);
    }

    #[test]
    fn simplify_removes_duplicates_and_loops() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2), (2, 0)]);
        let s = simplify(&g, true);
        assert_eq!(s.num_edges(), 3);
        assert!(!s.has_edge(1, 1));
        let s2 = simplify(&g, false);
        assert_eq!(s2.num_edges(), 4);
        assert!(s2.has_edge(1, 1));
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = two_communities(3); // vertices 0..3 and 3..6
        let (sub, mapping) = induced_subgraph(&g, &[3, 4, 5]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(mapping, vec![3, 4, 5]);
        // community B was complete on 3 vertices: 6 edges
        assert_eq!(sub.num_edges(), 6);
        assert!(sub.has_no_dangling());
    }

    #[test]
    fn induced_subgraph_fixes_created_dangling() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let (sub, _) = induced_subgraph(&g, &[0, 1]);
        // vertex 1's only edge (to 2) was cut; it must get a self-loop
        assert!(sub.has_edge(1, 1));
        assert!(sub.has_no_dangling());
    }

    #[test]
    fn wcc_on_connected_graph_is_single_component() {
        let g = cycle(10);
        assert_eq!(num_weakly_connected_components(&g), 1);
        let labels = weakly_connected_components(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn wcc_counts_isolated_vertices() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 0)]);
        // {0,1} is one component, 2, 3, 4 are isolated
        assert_eq!(num_weakly_connected_components(&g), 4);
    }

    #[test]
    fn wcc_treats_direction_as_irrelevant() {
        // 0 -> 1 and 2 -> 1: weakly connected even though not strongly
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]);
        assert_eq!(num_weakly_connected_components(&g), 1);
    }

    #[test]
    fn largest_component_found() {
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        edges.push((3, 4));
        let g = DiGraph::from_edges(6, &edges);
        let comp = largest_weakly_connected_component(&g);
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = DiGraph::empty(0);
        assert!(largest_weakly_connected_component(&g).is_empty());
        assert_eq!(num_weakly_connected_components(&g), 0);
    }
}
