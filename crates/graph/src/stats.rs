//! Degree statistics and power-law tail estimation.
//!
//! The FrogWild analysis (Proposition 7) relies on the PageRank vector's tail following
//! a power law with exponent θ ≈ 2.2. This module provides the degree-side diagnostics
//! used by the theory benchmarks: degree summaries, log-binned histograms and a Hill
//! estimator for the tail exponent, applicable both to degree sequences and to PageRank
//! score vectors.

// lint:allow-file(indexing, histograms are sized from the maximum observed value before indexing)

use crate::csr::DiGraph;

/// Summary statistics of a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Number of vertices with degree zero.
    pub zeros: usize,
}

/// Which adjacency direction to summarise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Outgoing edges.
    Out,
    /// Incoming edges.
    In,
}

/// Computes the degree summary of a graph in the given direction.
pub fn degree_summary(graph: &DiGraph, direction: Direction) -> DegreeSummary {
    let mut degrees: Vec<usize> = graph
        .vertices()
        .map(|v| match direction {
            Direction::Out => graph.out_degree(v),
            Direction::In => graph.in_degree(v),
        })
        .collect();
    if degrees.is_empty() {
        return DegreeSummary {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            zeros: 0,
        };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    DegreeSummary {
        min: degrees[0],
        max: degrees[n - 1],
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        median: degrees[n / 2],
        zeros: degrees.iter().take_while(|&&d| d == 0).count(),
    }
}

/// Degree histogram with logarithmic binning: bin `i` counts vertices whose degree lies
/// in `[2^i, 2^(i+1))`. Degree-zero vertices are reported separately in the first
/// element of the returned tuple.
pub fn log_degree_histogram(graph: &DiGraph, direction: Direction) -> (usize, Vec<usize>) {
    let mut zero = 0usize;
    let mut bins: Vec<usize> = Vec::new();
    for v in graph.vertices() {
        let d = match direction {
            Direction::Out => graph.out_degree(v),
            Direction::In => graph.in_degree(v),
        };
        if d == 0 {
            zero += 1;
            continue;
        }
        let bin = (usize::BITS - 1 - d.leading_zeros()) as usize;
        if bin >= bins.len() {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    (zero, bins)
}

/// Hill estimator of the power-law tail exponent θ for a sequence of positive values.
///
/// Uses the `k` largest values. For a distribution with density `∝ x^{-θ}` the estimator
/// converges to θ as `k → ∞`, `k/n → 0`. Returns `None` if fewer than two of the top-`k`
/// values are strictly positive, or if the values are all identical (the estimator would
/// be infinite).
pub fn hill_tail_exponent(values: &[f64], k: usize) -> Option<f64> {
    let mut positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.len() < 2 || k < 2 {
        return None;
    }
    positive.sort_unstable_by(|a, b| b.total_cmp(a));
    let k = k.min(positive.len() - 1);
    let threshold = positive[k];
    if threshold <= 0.0 {
        return None;
    }
    let sum: f64 = positive[..k].iter().map(|&v| (v / threshold).ln()).sum();
    if sum <= 0.0 {
        return None;
    }
    let alpha = k as f64 / sum; // tail index of the CCDF
    Some(alpha + 1.0) // density exponent θ = α + 1
}

/// Convenience wrapper: Hill estimate of the in-degree tail exponent using the top
/// `fraction` of vertices (a typical choice is 0.05).
pub fn in_degree_tail_exponent(graph: &DiGraph, fraction: f64) -> Option<f64> {
    let values: Vec<f64> = graph
        .vertices()
        .map(|v| graph.in_degree(v) as f64)
        .collect();
    let k = ((values.len() as f64 * fraction).ceil() as usize).max(2);
    hill_tail_exponent(&values, k)
}

/// The Gini coefficient of a non-negative value vector — a scale-free measure of how
/// concentrated the values are (0 = perfectly uniform, →1 = all mass on one element).
/// Used in EXPERIMENTS.md to document how skewed the synthetic PageRank vectors are.
pub fn gini_coefficient(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple::{complete, star};
    use crate::generators::{power_law_weights, rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn summary_of_complete_graph_is_uniform() {
        let g = complete(6);
        let s = degree_summary(&g, Direction::Out);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.median, 5);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.zeros, 0);
    }

    #[test]
    fn summary_of_star_shows_hub() {
        let g = star(11);
        let out = degree_summary(&g, Direction::Out);
        assert_eq!(out.max, 10);
        assert_eq!(out.min, 1);
        let inn = degree_summary(&g, Direction::In);
        assert_eq!(inn.max, 10);
    }

    #[test]
    fn empty_graph_summary() {
        let g = DiGraph::empty(0);
        let s = degree_summary(&g, Direction::Out);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn log_histogram_buckets_correctly() {
        // degrees: hub 10 -> bin 3 ([8,16)), leaves 1 -> bin 0
        let g = star(11);
        let (zero, bins) = log_degree_histogram(&g, Direction::Out);
        assert_eq!(zero, 0);
        assert_eq!(bins[0], 10);
        assert_eq!(bins[3], 1);
    }

    #[test]
    fn log_histogram_counts_zero_degree() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let (zero, _) = log_degree_histogram(&g, Direction::Out);
        assert_eq!(zero, 2);
    }

    #[test]
    fn hill_estimator_recovers_synthetic_exponent() {
        // Draw from an exact Pareto via inverse transform: x = u^{-1/(θ-1)}
        let theta = 2.2f64;
        let mut rng = SmallRng::seed_from_u64(10);
        use rand::Rng;
        let values: Vec<f64> = (0..200_000)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                u.powf(-1.0 / (theta - 1.0))
            })
            .collect();
        let est = hill_tail_exponent(&values, 5_000).unwrap();
        assert!(
            (est - theta).abs() < 0.15,
            "estimated {est}, expected {theta}"
        );
    }

    #[test]
    fn hill_estimator_degenerate_inputs() {
        assert!(hill_tail_exponent(&[], 10).is_none());
        assert!(hill_tail_exponent(&[1.0], 10).is_none());
        assert!(hill_tail_exponent(&[0.0, 0.0, 0.0], 2).is_none());
        assert!(hill_tail_exponent(&[2.0, 2.0, 2.0, 2.0], 2).is_none());
    }

    #[test]
    fn power_law_weight_exponent_is_recovered() {
        let w = power_law_weights(50_000, 2.2, 10.0);
        let est = hill_tail_exponent(&w, 2_000).unwrap();
        assert!((est - 2.2).abs() < 0.3, "estimated {est}");
    }

    #[test]
    fn rmat_in_degree_exponent_in_social_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = rmat(20_000, RmatParams::default(), &mut rng);
        let est = in_degree_tail_exponent(&g, 0.02).unwrap();
        // Social graphs live roughly in 1.5..3.5; we only need "heavy-tailed".
        assert!(est > 1.2 && est < 4.5, "estimated {est}");
    }

    #[test]
    fn gini_uniform_is_zero() {
        let g = gini_coefficient(&[3.0, 3.0, 3.0, 3.0]);
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_is_high() {
        let mut values = vec![0.0; 99];
        values.push(100.0);
        let g = gini_coefficient(&values);
        assert!(g > 0.95);
    }

    #[test]
    fn gini_empty_and_zero_vectors() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
    }
}
