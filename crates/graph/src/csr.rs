//! Compressed-sparse-row (CSR) directed graph.
//!
//! [`DiGraph`] is the immutable workhorse structure of the workspace. It stores both the
//! out-adjacency (needed by random walkers and the scatter phase of the engine) and the
//! in-adjacency (needed by the pull-style gather phase of exact PageRank). Vertex ids are
//! dense `u32` values in `0..num_vertices()`, matching how PowerGraph re-numbers vertices
//! at ingress time.

// lint:allow-file(indexing, CSR invariants - monotone offsets and ids below n - are validated at build and load)

use serde::{Deserialize, Serialize};

/// Dense vertex identifier. Graphs in the paper's evaluation have up to 41.6M vertices,
/// comfortably within `u32`.
pub type VertexId = u32;

/// An immutable directed graph in CSR form with both adjacency directions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    /// `out_offsets[v]..out_offsets[v+1]` indexes `out_targets` with the successors of `v`.
    out_offsets: Vec<usize>,
    /// Flattened successor lists, sorted within each vertex's range.
    out_targets: Vec<VertexId>,
    /// `in_offsets[v]..in_offsets[v+1]` indexes `in_sources` with the predecessors of `v`.
    in_offsets: Vec<usize>,
    /// Flattened predecessor lists, sorted within each vertex's range.
    in_sources: Vec<VertexId>,
}

impl DiGraph {
    /// Builds a graph from a vertex count and an edge list.
    ///
    /// Edges may appear in any order and may contain duplicates; duplicates are kept
    /// (multi-edges are legal and treated as parallel edges by the random walk, matching
    /// the weight they would receive in the transition matrix). Use
    /// [`GraphBuilder`](crate::GraphBuilder) for deduplication and dangling-vertex
    /// handling.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= num_vertices`. Use
    /// [`GraphBuilder`](crate::GraphBuilder) for a checked construction path.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        for &(s, d) in edges {
            assert!(
                (s as usize) < num_vertices && (d as usize) < num_vertices,
                "edge ({s}, {d}) out of bounds for {num_vertices} vertices"
            );
        }
        let (out_offsets, out_targets) =
            build_csr(num_vertices, edges.iter().map(|&(s, d)| (s, d)));
        let (in_offsets, in_sources) = build_csr(num_vertices, edges.iter().map(|&(s, d)| (d, s)));
        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// An empty graph with `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        DiGraph {
            out_offsets: vec![0; num_vertices + 1],
            out_targets: Vec::new(),
            in_offsets: vec![0; num_vertices + 1],
            in_sources: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges (counting multiplicities).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v` (number of successors, counting multiplicities).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v` (number of predecessors, counting multiplicities).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Successors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Predecessors of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Whether the directed edge `(src, dst)` exists (at least once).
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.out_neighbors(src).binary_search(&dst).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all directed edges in `(src, dst)` order, grouped by source.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            vertex: 0,
            pos: 0,
        }
    }

    /// Vertices with out-degree zero ("dangling" vertices).
    ///
    /// The paper assumes `d_out(j) > 0` for every vertex; dangling vertices must be fixed
    /// (see [`DanglingPolicy`](crate::DanglingPolicy)) before running PageRank.
    pub fn dangling_vertices(&self) -> Vec<VertexId> {
        self.vertices()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// `true` if every vertex has at least one outgoing edge.
    pub fn has_no_dangling(&self) -> bool {
        self.vertices().all(|v| self.out_degree(v) > 0)
    }

    /// Total memory footprint of the adjacency arrays in bytes (excluding the struct itself).
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<VertexId>()
            + self.in_sources.len() * std::mem::size_of::<VertexId>()
    }

    /// The reverse graph (every edge flipped). `O(|V| + |E|)`, reuses the existing arrays.
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
        }
    }

    /// Collects the full edge list. Mostly useful for tests and re-building transformed graphs.
    pub fn edge_vec(&self) -> Vec<(VertexId, VertexId)> {
        self.edges().collect()
    }

    /// Validates internal CSR invariants. Used by tests and after deserialization.
    ///
    /// Checks that offset arrays are monotone, cover the target arrays exactly, that both
    /// directions contain the same number of edges, and that every adjacency list is sorted.
    pub fn validate(&self) -> Result<(), crate::Error> {
        let n = self.num_vertices();
        if self.in_offsets.len() != n + 1 {
            return Err(crate::Error::graph(format!(
                "in_offsets length {} does not match out_offsets length {}",
                self.in_offsets.len(),
                self.out_offsets.len()
            )));
        }
        if self.out_targets.len() != self.in_sources.len() {
            return Err(crate::Error::graph(format!(
                "edge count mismatch between directions: {} out vs {} in",
                self.out_targets.len(),
                self.in_sources.len()
            )));
        }
        for (name, offsets, targets) in [
            ("out", &self.out_offsets, &self.out_targets),
            ("in", &self.in_offsets, &self.in_sources),
        ] {
            if offsets.first() != Some(&0) || offsets.last() != Some(&targets.len()) {
                return Err(crate::Error::graph(format!(
                    "{name} offsets do not cover target array"
                )));
            }
            for w in offsets.windows(2) {
                if w[0] > w[1] {
                    return Err(crate::Error::graph(format!("{name} offsets not monotone")));
                }
            }
            for v in 0..n {
                let slice = &targets[offsets[v]..offsets[v + 1]];
                if !slice.windows(2).all(|w| w[0] <= w[1]) {
                    return Err(crate::Error::graph(format!(
                        "{name} adjacency of vertex {v} not sorted"
                    )));
                }
                if let Some(&max) = slice.iter().max() {
                    if max as usize >= n {
                        return Err(crate::Error::graph(format!(
                            "{name} adjacency of vertex {v} out of bounds"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Iterator over all edges of a [`DiGraph`] in `(src, dst)` order.
pub struct EdgeIter<'a> {
    graph: &'a DiGraph,
    vertex: usize,
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.num_vertices();
        while self.vertex < n {
            let end = self.graph.out_offsets[self.vertex + 1];
            if self.pos < end {
                let dst = self.graph.out_targets[self.pos];
                self.pos += 1;
                return Some((self.vertex as VertexId, dst));
            }
            self.vertex += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.graph.num_edges() - self.pos;
        (remaining, Some(remaining))
    }
}

impl<'a> ExactSizeIterator for EdgeIter<'a> {}

/// Counting-sort construction of one CSR direction. `O(|V| + |E|)`.
fn build_csr(
    num_vertices: usize,
    edges: impl Iterator<Item = (VertexId, VertexId)> + Clone,
) -> (Vec<usize>, Vec<VertexId>) {
    let mut degrees = vec![0usize; num_vertices];
    let mut num_edges = 0usize;
    for (s, _) in edges.clone() {
        degrees[s as usize] += 1;
        num_edges += 1;
    }
    let mut offsets = Vec::with_capacity(num_vertices + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for &d in &degrees {
        acc += d;
        offsets.push(acc);
    }
    let mut targets = vec![0 as VertexId; num_edges];
    let mut cursor = offsets[..num_vertices].to_vec();
    for (s, d) in edges {
        let c = &mut cursor[s as usize];
        targets[*c] = d;
        *c += 1;
    }
    // Sort each adjacency list so neighbor queries can binary search and iteration order
    // is deterministic regardless of input edge order.
    for v in 0..num_vertices {
        targets[offsets[v]..offsets[v + 1]].sort_unstable();
    }
    (offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let g = DiGraph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn in_neighbors() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(2, 1));
    }

    #[test]
    fn edge_iterator_yields_all_edges_grouped_by_source() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
        assert_eq!(g.edges().len(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(7);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.dangling_vertices().len(), 7);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn dangling_detection() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0)]);
        assert_eq!(g.dangling_vertices(), vec![2]);
        assert!(!g.has_no_dangling());
        let g2 = diamond();
        assert!(g2.has_no_dangling());
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.out_neighbors(3), g.in_neighbors(3));
        assert_eq!(r.in_neighbors(3), g.out_neighbors(3));
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(0, 1));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn duplicate_edges_are_preserved() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
    }

    #[test]
    fn self_loops_count_in_both_directions() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn validate_ok_on_constructed_graphs() {
        assert!(diamond().validate().is_ok());
        assert!(DiGraph::from_edges(1, &[(0, 0)]).validate().is_ok());
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(diamond().memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_panics_on_out_of_bounds() {
        let _ = DiGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn edge_vec_round_trips() {
        let g = diamond();
        let rebuilt = DiGraph::from_edges(g.num_vertices(), &g.edge_vec());
        assert_eq!(g, rebuilt);
    }
}
