//! # frogwild-graph
//!
//! Directed-graph substrate used by the FrogWild PageRank reproduction.
//!
//! The crate provides:
//!
//! * [`DiGraph`] — an immutable, compressed-sparse-row (CSR) directed graph with both
//!   out- and in-adjacency, the representation every other crate in the workspace
//!   consumes.
//! * [`GraphBuilder`] — a mutable edge accumulator that deduplicates, sorts and
//!   validates edges before freezing them into a [`DiGraph`].
//! * [`generators`] — synthetic graph generators (Erdős–Rényi, Chung–Lu power-law,
//!   R-MAT/Kronecker, and small deterministic shapes) used to stand in for the paper's
//!   Twitter and LiveJournal datasets.
//! * [`io`] — SNAP-style edge-list reading and writing so the real datasets can be
//!   dropped in unchanged.
//! * [`stats`] — degree statistics and a power-law tail-exponent estimator
//!   (the paper's analysis assumes the PageRank tail follows a power law with θ ≈ 2.2).
//! * [`sparsify`] — the uniform edge-deletion sparsifier used as a baseline in Figure 5.
//! * [`transform`] — dangling-vertex fix-up, graph reversal and other whole-graph
//!   transforms.
//!
//! All randomized constructions take an explicit [`rand::Rng`] so every experiment in
//! the workspace is reproducible from a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod csr;
pub mod error;
pub mod generators;
pub mod io;
pub mod snapshot;
pub mod sparsify;
pub mod stats;
pub mod transform;

pub use builder::{DanglingPolicy, GraphBuilder};
pub use csr::{DiGraph, EdgeIter, VertexId};
pub use error::Error;

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id that is out of bounds for the declared vertex count.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// The graph contains a vertex with no outgoing edges and the chosen
    /// [`DanglingPolicy`] forbids them.
    DanglingVertex {
        /// The vertex with out-degree zero.
        vertex: VertexId,
    },
    /// An I/O error occurred while reading or writing an edge list.
    Io(std::io::Error),
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// The malformed content.
        content: String,
    },
    /// The requested construction parameters are inconsistent
    /// (for example zero vertices, or a probability outside `[0, 1]`).
    InvalidParameter(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of bounds for graph with {num_vertices} vertices"
            ),
            GraphError::DanglingVertex { vertex } => {
                write!(f, "vertex {vertex} has no outgoing edges")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, content } => {
                write!(f, "could not parse edge-list line {line}: {content:?}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
