//! Compact binary snapshots of graphs.
//!
//! Generating a Twitter-shaped R-MAT graph with millions of edges takes noticeably
//! longer than loading it back from disk, so the benchmark harness snapshots generated
//! graphs between runs. The format is a small, versioned, little-endian binary layout
//! (not `serde`-based: the CSR arrays are written directly so loading is a few large
//! reads followed by an integrity check).

use crate::csr::{DiGraph, VertexId};
use crate::{GraphError, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a snapshot file.
const MAGIC: &[u8; 8] = b"FROGWGR1";

/// Writes a binary snapshot of the graph.
pub fn write_snapshot<W: Write>(graph: &DiGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let n = graph.num_vertices() as u64;
    let m = graph.num_edges() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    // Out-degree sequence (u32 each) followed by the edge targets grouped by source.
    for v in graph.vertices() {
        w.write_all(&(graph.out_degree(v) as u32).to_le_bytes())?;
    }
    for (_, dst) in graph.edges() {
        w.write_all(&dst.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a binary snapshot written by [`write_snapshot`].
pub fn read_snapshot<R: Read>(reader: R) -> Result<DiGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::InvalidParameter(
            "not a frogwild graph snapshot (bad magic)".to_string(),
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;

    let mut degrees = vec![0u32; n];
    let mut buf4 = [0u8; 4];
    for d in degrees.iter_mut() {
        r.read_exact(&mut buf4)?;
        *d = u32::from_le_bytes(buf4);
    }
    let total: usize = degrees.iter().map(|&d| d as usize).sum();
    if total != m {
        return Err(GraphError::InvalidParameter(format!(
            "snapshot corrupt: degree sum {total} does not match edge count {m}"
        )));
    }
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    for (v, &deg) in degrees.iter().enumerate() {
        for _ in 0..deg {
            r.read_exact(&mut buf4)?;
            let dst = u32::from_le_bytes(buf4);
            if dst as usize >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: dst as u64,
                    num_vertices: n as u64,
                });
            }
            edges.push((v as VertexId, dst));
        }
    }
    Ok(DiGraph::from_edges(n, &edges))
}

/// Writes a snapshot to a file path.
pub fn write_snapshot_file<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<()> {
    write_snapshot(graph, std::fs::File::create(path)?)
}

/// Reads a snapshot from a file path.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    read_snapshot(std::fs::File::open(path)?)
}

/// Loads a snapshot if `path` exists, otherwise generates the graph with `generate`,
/// stores the snapshot, and returns it. Used by the benchmark harness so repeated
/// figure runs reuse one generated graph.
pub fn load_or_generate<P, F>(path: P, generate: F) -> Result<DiGraph>
where
    P: AsRef<Path>,
    F: FnOnce() -> DiGraph,
{
    let path = path.as_ref();
    if path.exists() {
        if let Ok(graph) = read_snapshot_file(path) {
            return Ok(graph);
        }
        // fall through: corrupt snapshot gets regenerated
    }
    let graph = generate();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    write_snapshot_file(&graph, path)?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple::{complete, star};
    use crate::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_small_graph() {
        let g = star(7);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let g2 = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_generated_graph() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = rmat(1_000, RmatParams::default(), &mut rng);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let g2 = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
        assert!(g2.validate().is_ok());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_snapshot(&b"NOTAGRAPHFILE...."[..]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter(_)));
    }

    #[test]
    fn rejects_truncated_input() {
        let g = complete(5);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip_and_cache() {
        let dir = std::env::temp_dir().join("frogwild_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("star.bin");
        std::fs::remove_file(&path).ok();

        let mut calls = 0;
        let g = load_or_generate(&path, || {
            calls += 1;
            star(9)
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(g.num_vertices(), 9);

        // Second load must come from the snapshot, not the generator.
        let g2 = load_or_generate(&path, || panic!("generator should not run")).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}
