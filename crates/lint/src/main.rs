//! The `frogwild-lint` binary: scans the workspace (or explicit paths) and
//! reports invariant violations. See `--help` / `--list-rules`.
//!
//! Exit codes: `0` clean (or report-only mode), `1` findings under
//! `--deny-all`, `2` usage or I/O error.

use frogwild_lint::{
    changed_since, parse_baseline, relative_path, render_baseline, render_report, rules,
    run_on_sources, workspace_files, Config, Format,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
frogwild-lint — workspace determinism & panic-freedom static analysis

USAGE:
    frogwild-lint [OPTIONS] [PATHS...]

By default the workspace sources (crates/*/src, src/) under the workspace root
are scanned and findings are *reported* without failing. CI runs `--deny-all`.
Explicit PATHS (files or directories) replace the default scan set; paths
outside crates/ get the strictest (library) rule scope.

OPTIONS:
    --deny-all             Exit non-zero when any finding survives allows and
                           the baseline
    --allow <rule>         Drop one rule from the report (repeatable)
    --baseline <file>      Baseline file of grandfathered findings
                           (default: <root>/crates/lint/baseline.lint)
    --write-baseline       Rewrite the baseline file from this run's findings
    --format <human|csv>   Output format (default: human)
    --changed-since <rev>  Only scan files `git diff --name-only <rev>` (plus
                           untracked files) reports as touched
    --root <dir>           Workspace root (default: nearest ancestor of the
                           current directory containing Cargo.toml)
    --list-rules           Print the rule table and exit
    -h, --help             Print this help and exit
";

struct Args {
    deny_all: bool,
    allow: Vec<String>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    format: Format,
    changed_since: Option<String>,
    root: Option<PathBuf>,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        allow: Vec::new(),
        baseline: None,
        write_baseline: false,
        format: Format::Human,
        changed_since: None,
        root: None,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--deny-all" => args.deny_all = true,
            "--allow" => {
                let rule = value("--allow")?;
                if !rules::known_rule(&rule) {
                    return Err(format!("--allow: unknown rule `{rule}` (see --list-rules)"));
                }
                args.allow.push(rule);
            }
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => args.write_baseline = true,
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "csv" => Format::Csv,
                    other => return Err(format!("--format: expected human|csv, got `{other}`")),
                }
            }
            "--changed-since" => args.changed_since = Some(value("--changed-since")?),
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// Nearest ancestor of the current directory containing a `Cargo.toml`
/// declaring `[workspace]`, falling back to the nearest with any `Cargo.toml`.
fn find_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let mut fallback = None;
    for dir in cwd.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            fallback.get_or_insert_with(|| dir.to_path_buf());
            if std::fs::read_to_string(&manifest)
                .map(|t| t.contains("[workspace]"))
                .unwrap_or(false)
            {
                return Some(dir.to_path_buf());
            }
        }
    }
    fallback
}

fn list_rules() {
    println!("{:<22} CHECKS FOR", "RULE");
    for rule in rules::RULES {
        // Wrap the doc onto the name column by hand; docs are one sentence.
        println!(
            "{:<22} {}",
            rule.name,
            rule.doc.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    println!(
        "\nSuppress one finding with `// lint:allow(rule, reason)` on the same or the\n\
         preceding line, or a whole file with `// lint:allow-file(rule, reason)`.\n\
         The reason is mandatory."
    );
}

fn gather_files(args: &Args, root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = if args.paths.is_empty() {
        workspace_files(root).map_err(|e| format!("scanning workspace sources: {e}"))?
    } else {
        let mut out = Vec::new();
        for p in &args.paths {
            if p.is_dir() {
                collect_dir(p, &mut out).map_err(|e| format!("scanning {}: {e}", p.display()))?;
            } else if p.is_file() {
                out.push(p.clone());
            } else {
                return Err(format!("no such file or directory: {}", p.display()));
            }
        }
        out.sort();
        out
    };
    if let Some(rev) = &args.changed_since {
        let changed = changed_since(root, rev)?;
        files.retain(|f| changed.contains(&relative_path(root, f)));
    }
    Ok(files)
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    if args.list_rules {
        list_rules();
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("no Cargo.toml found above the current directory")?,
    };

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("crates/lint/baseline.lint"));
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        parse_baseline(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    } else {
        Vec::new()
    };

    let files = gather_files(&args, &root)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        sources.push((relative_path(&root, file), text));
    }

    // `--write-baseline` captures what the *rules* see (allows still apply,
    // the old baseline does not — it is being replaced).
    if args.write_baseline {
        let config = Config {
            allow_rules: args.allow.clone(),
            baseline: Vec::new(),
        };
        let report = run_on_sources(&sources, &config);
        std::fs::write(&baseline_path, render_baseline(&report.findings))
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} entr{} to {}",
            report.findings.len(),
            if report.findings.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let config = Config {
        allow_rules: args.allow.clone(),
        baseline,
    };
    let report = run_on_sources(&sources, &config);
    print!("{}", render_report(&report, args.format));

    if args.deny_all && !report.findings.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("frogwild-lint: {message}");
            ExitCode::from(2)
        }
    }
}
