//! A hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The lexer strips comments, string/char literals, and lifetimes, and yields a
//! flat stream of spanned tokens. It is *not* a parser: the rules downstream
//! match shallow token patterns (`ident :: ident`, `. ident (`, `ident [`),
//! which is exactly the level of structure a determinism/panic-freedom pass
//! needs. Two artifacts besides tokens come out of a lex:
//!
//! * **Allow directives** — plain `//` line comments (doc comments are ignored)
//!   whose content starts with `lint:allow(rule, reason)` or
//!   `lint:allow-file(rule, reason)`. Directives are recorded with their line so
//!   findings can be suppressed; malformed directives (missing reason, bad
//!   syntax) are reported by the `allow-syntax` meta rule.
//! * **Test regions** — token ranges covered by a `#[cfg(test)]`-attributed
//!   item (almost always `mod tests { .. }`). Rules skip tokens inside them.

/// Where a token starts, 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `let`, `HashMap`, ...).
    Ident,
    /// Integer/float literal (content dropped beyond the leading digits).
    Number,
    /// Operator or delimiter; multi-char operators (`+=`, `::`, `->`) arrive
    /// as a single token.
    Punct,
    /// String, raw-string, byte-string, or char literal (contents discarded —
    /// a literal can never trigger a rule).
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub span: Span,
}

/// A parsed `lint:allow` comment.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule name inside the parentheses.
    pub rule: String,
    /// `lint:allow-file` (whole file) vs `lint:allow` (same or next line).
    pub file_level: bool,
    /// Line the comment sits on.
    pub line: u32,
}

/// A malformed `lint:allow` comment, surfaced through the `allow-syntax` rule.
#[derive(Clone, Debug)]
pub struct BadAllow {
    pub line: u32,
    pub problem: String,
}

/// Everything a lex produces.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
    pub bad_allows: Vec<BadAllow>,
    /// Parallel to `tokens`: `true` when the token sits inside a
    /// `#[cfg(test)]`-attributed item.
    pub in_test: Vec<bool>,
}

/// Multi-character operators, longest first (maximal munch).
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            // Counting bytes, not chars: columns drift inside multi-byte
            // runes but stay exact for the ASCII code the rules match.
            self.col += 1;
        }
        Some(b)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, returning tokens, allow directives, and test-region marks.
pub fn lex(src: &str) -> LexOutput {
    let mut out = LexOutput::default();
    let mut c = Cursor::new(src);

    while let Some(b) = c.peek(0) {
        let span = c.span();
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => line_comment(&mut c, &mut out),
            b'/' if c.peek(1) == Some(b'*') => block_comment(&mut c),
            b'"' => {
                string_literal(&mut c);
                push(&mut out, TokenKind::Literal, "\"..\"", span);
            }
            b'r' | b'b' if raw_or_byte_literal(&c) => {
                consume_prefixed_literal(&mut c);
                push(&mut out, TokenKind::Literal, "\"..\"", span);
            }
            b'\'' => char_or_lifetime(&mut c, &mut out, span),
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(n) = c.peek(0) {
                    if is_ident_continue(n) {
                        text.push(c.bump().unwrap_or(b'_') as char);
                    } else {
                        break;
                    }
                }
                push(&mut out, TokenKind::Ident, &text, span);
            }
            _ if b.is_ascii_digit() => {
                // Swallow the whole numeric literal including `_`, `.`, type
                // suffixes, and exponent signs (`1e-3`).
                let mut text = String::new();
                let mut prev = b'0';
                while let Some(n) = c.peek(0) {
                    let take = n.is_ascii_alphanumeric()
                        || n == b'_'
                        || (n == b'.' && c.peek(1).is_none_or(|m| m != b'.'))
                        || ((n == b'+' || n == b'-') && (prev == b'e' || prev == b'E'));
                    if !take {
                        break;
                    }
                    prev = n;
                    text.push(c.bump().unwrap_or(b'0') as char);
                }
                push(&mut out, TokenKind::Number, &text, span);
            }
            _ => {
                let mut matched = false;
                for op in OPERATORS {
                    if c.starts_with(op) {
                        for _ in 0..op.len() {
                            c.bump();
                        }
                        push(&mut out, TokenKind::Punct, op, span);
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    c.bump();
                    push(&mut out, TokenKind::Punct, &(b as char).to_string(), span);
                }
            }
        }
    }

    out.in_test = mark_test_regions(&out.tokens);
    out
}

fn push(out: &mut LexOutput, kind: TokenKind, text: &str, span: Span) {
    out.tokens.push(Token {
        kind,
        text: text.to_string(),
        span,
    });
}

/// `//`-comment: records `lint:allow` directives from plain (non-doc) comments.
fn line_comment(c: &mut Cursor<'_>, out: &mut LexOutput) {
    let line = c.line;
    let mut text = String::new();
    while let Some(b) = c.peek(0) {
        if b == b'\n' {
            break;
        }
        text.push(c.bump().unwrap_or(b' ') as char);
    }
    // `///` and `//!` are docs; directive mentions there are prose, not policy.
    let is_doc = text.starts_with("///") || text.starts_with("//!");
    let body = text.trim_start_matches('/').trim();
    if !is_doc && body.starts_with("lint:allow") {
        parse_allow(body, line, out);
    }
}

fn parse_allow(body: &str, line: u32, out: &mut LexOutput) {
    let (file_level, rest) = if let Some(r) = body.strip_prefix("lint:allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("lint:allow") {
        (false, r)
    } else {
        return;
    };
    let inner = rest
        .trim()
        .strip_prefix('(')
        .and_then(|r| r.trim_end().strip_suffix(')'));
    let Some(inner) = inner else {
        out.bad_allows.push(BadAllow {
            line,
            problem: "expected `lint:allow(rule, reason)`".to_string(),
        });
        return;
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        out.bad_allows.push(BadAllow {
            line,
            problem: "missing reason: `lint:allow(rule, reason)` requires one".to_string(),
        });
        return;
    };
    let rule = rule.trim();
    let reason = reason.trim().trim_matches('"').trim();
    if rule.is_empty() || reason.is_empty() {
        out.bad_allows.push(BadAllow {
            line,
            problem: "rule and reason must both be non-empty".to_string(),
        });
        return;
    }
    out.allows.push(AllowDirective {
        rule: rule.to_string(),
        file_level,
        line,
    });
}

/// `/* .. */`, nesting like rustc.
fn block_comment(c: &mut Cursor<'_>) {
    c.bump();
    c.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (c.peek(0), c.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                c.bump();
                c.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                c.bump();
                c.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break,
        }
    }
}

/// `"…"` with escapes.
fn string_literal(c: &mut Cursor<'_>) {
    c.bump();
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br`, `rb`-style literal?
fn raw_or_byte_literal(c: &Cursor<'_>) -> bool {
    match (c.peek(0), c.peek(1)) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(c.peek(2), Some(b'"' | b'#')),
        _ => false,
    }
}

/// Consumes `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`.
fn consume_prefixed_literal(c: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(b) = c.peek(0) {
        match b {
            b'r' => {
                raw = true;
                c.bump();
            }
            b'b' => {
                c.bump();
            }
            _ => break,
        }
    }
    if raw {
        let mut hashes = 0usize;
        while c.peek(0) == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        c.bump(); // opening quote
        loop {
            match c.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && c.peek(0) == Some(b'#') {
                        seen += 1;
                        c.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
    } else {
        match c.peek(0) {
            Some(b'"') => string_literal(c),
            Some(b'\'') => {
                c.bump();
                while let Some(b) = c.bump() {
                    match b {
                        b'\\' => {
                            c.bump();
                        }
                        b'\'' => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime): after the quote, an
/// identifier that is *not* closed by another quote is a lifetime.
fn char_or_lifetime(c: &mut Cursor<'_>, out: &mut LexOutput, span: Span) {
    c.bump(); // the quote
    match c.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: `'\n'`, `'\''`.
            c.bump();
            c.bump();
            if c.peek(0) == Some(b'\'') {
                c.bump();
            } else {
                // Multi-char escape (`'\u{1F600}'`): scan to the closing quote.
                while let Some(b) = c.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
            }
            push(out, TokenKind::Literal, "'.'", span);
        }
        Some(b) if is_ident_start(b) => {
            let mut text = String::from("'");
            while let Some(n) = c.peek(0) {
                if is_ident_continue(n) {
                    text.push(c.bump().unwrap_or(b'_') as char);
                } else {
                    break;
                }
            }
            if c.peek(0) == Some(b'\'') && text.chars().count() == 2 {
                c.bump();
                push(out, TokenKind::Literal, "'.'", span);
            } else {
                push(out, TokenKind::Lifetime, &text, span);
            }
        }
        Some(_) => {
            // `'x'` for non-ident x (e.g. `'/'`).
            c.bump();
            if c.peek(0) == Some(b'\'') {
                c.bump();
            }
            push(out, TokenKind::Literal, "'.'", span);
        }
        None => {}
    }
}

/// Marks tokens covered by a `#[cfg(test)]`-attributed item (the item's
/// attributes included). Handles stacked attributes and both `{}`-bodied and
/// `;`-terminated items.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut marks = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let attr_start = i;
            let Some((attr_end, is_test)) = scan_attribute(tokens, i) else {
                i += 1;
                continue;
            };
            if !is_test {
                i = attr_end;
                continue;
            }
            // Skip any further attributes between the cfg and the item.
            let mut j = attr_end;
            while j < tokens.len()
                && tokens[j].text == "#"
                && tokens.get(j + 1).is_some_and(|t| t.text == "[")
            {
                match scan_attribute(tokens, j) {
                    Some((end, _)) => j = end,
                    None => break,
                }
            }
            let item_end = scan_item(tokens, j);
            for m in marks.iter_mut().take(item_end).skip(attr_start) {
                *m = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    marks
}

/// From `#` at `start`, returns (index past the closing `]`, attr is a
/// `cfg(test)`-style gate). `#[cfg(not(test))]` guards *non*-test code and is
/// deliberately not a gate.
fn scan_attribute(tokens: &[Token], start: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut i = start + 1;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((i + 1, saw_cfg && saw_test && !saw_not));
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            "not" => saw_not = true,
            _ => {}
        }
        i += 1;
    }
    None
}

/// From the first token of an item, returns the index just past its end: the
/// matching `}` of its body, or the `;` that terminates it.
fn scan_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = texts("let x = \"HashMap\"; // HashMap here\n/* HashSet */ y");
        assert_eq!(toks, vec!["let", "x", "=", "\"..\"", ";", "y"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("a /* outer /* inner */ still */ b");
        assert_eq!(toks, vec!["a", "b"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = texts(r####"x r#"embedded " quote"# y"####);
        assert_eq!(toks, vec!["x", "\"..\"", "y"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(toks.contains(&"'a".to_string()));
        assert_eq!(toks.iter().filter(|t| *t == "'.'").count(), 2);
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let toks = texts("a += b; c::d; e -> f; g ..= h");
        for op in ["+=", "::", "->", "..="] {
            assert!(toks.contains(&op.to_string()), "missing {op}");
        }
    }

    #[test]
    fn numeric_literals_swallow_suffixes_and_exponents() {
        let toks = texts("1_000u64 + 1e-3 + 0xFFusize");
        assert_eq!(toks, vec!["1_000u64", "+", "1e-3", "+", "0xFFusize"]);
    }

    #[test]
    fn spans_are_one_based() {
        let out = lex("a\n  b");
        assert_eq!(out.tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(out.tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn allow_directives_parse() {
        let out = lex("// lint:allow(panic, mutex poisoning implies a prior panic)\nx.unwrap()");
        assert_eq!(out.allows.len(), 1);
        assert_eq!(out.allows[0].rule, "panic");
        assert!(!out.allows[0].file_level);
        assert_eq!(out.allows[0].line, 1);
    }

    #[test]
    fn file_level_allow_and_quoted_reason() {
        let out = lex("// lint:allow-file(indexing, \"CSR hot loops\")\n");
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].file_level);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let out = lex("// lint:allow(panic)\n// lint:allow panic, reason\n");
        assert!(out.allows.is_empty());
        assert_eq!(out.bad_allows.len(), 2);
    }

    #[test]
    fn doc_comment_mentions_are_not_directives() {
        let out = lex("/// lint:allow(panic, prose)\n//! lint:allow(panic, prose)\n");
        assert!(out.allows.is_empty());
        assert!(out.bad_allows.is_empty());
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let out = lex("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        let unwrap_idx = out
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(out.in_test[unwrap_idx]);
        let live_idx = out
            .tokens
            .iter()
            .position(|t| t.text == "live")
            .expect("live token");
        assert!(!out.in_test[live_idx]);
    }

    #[test]
    fn cfg_test_with_stacked_attributes_and_semicolon_items() {
        let out = lex("#[cfg(test)]\n#[allow(dead_code)]\nuse std::collections::HashMap;\nlive");
        let hm = out
            .tokens
            .iter()
            .position(|t| t.text == "HashMap")
            .expect("HashMap token");
        assert!(out.in_test[hm]);
        let live = out
            .tokens
            .iter()
            .position(|t| t.text == "live")
            .expect("live token");
        assert!(!out.in_test[live]);
    }

    #[test]
    fn cfg_all_test_is_marked() {
        let out = lex("#[cfg(all(test, feature = \"x\"))]\nmod t { bad }");
        let bad = out
            .tokens
            .iter()
            .position(|t| t.text == "bad")
            .expect("bad token");
        assert!(out.in_test[bad]);
    }
}
