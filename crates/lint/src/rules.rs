//! The rule set: shallow token-pattern checks encoding the project invariants.
//!
//! Every rule is documented in [`RULES`] (`--list-rules` prints the table).
//! Rules never see comments or string contents — the lexer strips them — and
//! skip `#[cfg(test)]` regions. Findings can be suppressed by a
//! `// lint:allow(rule, reason)` on the same or the preceding line, or a
//! `// lint:allow-file(rule, reason)` anywhere in the file.

use crate::lexer::{lex, LexOutput, Token, TokenKind};

/// Machine name + one-line doc for one rule.
pub struct RuleInfo {
    pub name: &'static str,
    pub doc: &'static str,
}

/// The registry, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-container",
        doc: "std HashMap/HashSet/DefaultHasher/RandomState in library code: iteration \
              order is nondeterministic, use BTreeMap/BTreeSet or sorted vecs",
    },
    RuleInfo {
        name: "timing",
        doc: "Instant::now/SystemTime/thread::current clock or thread-identity reads \
              outside the allowlisted timing modules (serve/latency, the obs clock \
              shim, bench, cli)",
    },
    RuleInfo {
        name: "span-guard",
        doc: "`let _ = ...span(...)` drops the tracing SpanGuard immediately, so the \
              span closes before the work it was meant to cover; bind it to a named \
              variable (`let _span = ...`)",
    },
    RuleInfo {
        name: "panic",
        doc: ".unwrap()/.expect()/panic!/unreachable!/todo!/unimplemented! in library \
              code: return a typed frogwild::Error or document with lint:allow",
    },
    RuleInfo {
        name: "indexing",
        doc: "slice/array indexing `x[..]` in library code can panic: prefer .get()/\
              iterators, or document the bounds invariant with lint:allow",
    },
    RuleInfo {
        name: "counter-arith",
        doc: "bare `+=`/`*=` or a narrowing `as` cast on a stat counter in an \
              accumulator file (metrics.rs/session.rs/serve): use saturating_*/try_from",
    },
    RuleInfo {
        name: "non-exhaustive-ctor",
        doc: "a #[non_exhaustive] pub struct/enum in crates/core has no public \
              constructor helper (pub fn returning Self, or Default/From/FromStr impl)",
    },
    RuleInfo {
        name: "allow-syntax",
        doc: "malformed lint:allow comment (missing reason) or one naming an unknown rule",
    },
];

/// Is `name` a registered rule?
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Which crate a file belongs to, for rule scoping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// `crates/core` — all library rules plus the ctor rule.
    Core,
    /// `crates/engine` / `crates/graph` / `crates/obs` — all library rules.
    Engine,
    Graph,
    /// `crates/obs` — library rules; its clock shim is the one timing allowlist
    /// entry, every other module must stay wall-clock free.
    Obs,
    /// `crates/cli`, `crates/bench`, `crates/lint`, the root umbrella crate:
    /// binaries and dev tooling, exempt from the library rules.
    Tool,
    /// Anything else (scratch files, fixtures): treated like `Core`, the
    /// strictest scope, so seeding a violation anywhere trips the lint.
    Unknown,
}

impl Scope {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(path: &str) -> Scope {
        if path.starts_with("crates/core/") {
            Scope::Core
        } else if path.starts_with("crates/engine/") {
            Scope::Engine
        } else if path.starts_with("crates/graph/") {
            Scope::Graph
        } else if path.starts_with("crates/obs/") {
            Scope::Obs
        } else if path.starts_with("crates/cli/")
            || path.starts_with("crates/bench/")
            || path.starts_with("crates/lint/")
            || path.starts_with("src/")
        {
            Scope::Tool
        } else {
            Scope::Unknown
        }
    }

    fn library(self) -> bool {
        matches!(
            self,
            Scope::Core | Scope::Engine | Scope::Graph | Scope::Obs | Scope::Unknown
        )
    }

    fn ctor_rule(self) -> bool {
        matches!(self, Scope::Core | Scope::Unknown)
    }
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// A `#[non_exhaustive]` pub type declaration, pending the crate-level join.
#[derive(Clone, Debug)]
pub struct TypeDecl {
    pub name: String,
    pub path: String,
    pub line: u32,
    /// Suppressed by a lint:allow at the declaration.
    pub allowed: bool,
}

/// Everything one file's analysis produces.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// Declarations feeding the crate-level `non-exhaustive-ctor` join.
    pub non_exhaustive: Vec<TypeDecl>,
    /// Type names this file provides public-constructor evidence for.
    pub ctor_evidence: Vec<String>,
}

/// Keywords that may directly precede `[` without forming an index expression.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Narrowing targets for the lossy-cast half of `counter-arith`.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Timing-rule allowlist: modules whose whole purpose is wall-clock telemetry.
/// Exactly two entries: the serving latency histograms, and the obs crate's clock
/// shim — the single place in the tracing stack allowed to read the host clock.
fn timing_allowlisted(path: &str) -> bool {
    path.ends_with("serve/latency.rs") || path.ends_with("obs/src/clock.rs")
}

/// Does the `counter-arith` rule apply to this file? The accumulator surface:
/// the metrics modules, the session stats fold, and the serving front-end
/// (the `serve/` module directory — `walkindex/serve.rs` is walk math, not
/// counter accumulation, and stays under the general library rules only).
pub fn is_accumulator_file(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    file == "metrics.rs" || file == "session.rs" || path.contains("/serve/")
}

/// Analyzes one file. `path` must be workspace-relative with forward slashes.
pub fn analyze_file(path: &str, scope: Scope, src: &str) -> FileReport {
    let lexed = lex(src);
    let mut report = FileReport::default();

    for bad in &lexed.bad_allows {
        report.findings.push(Finding {
            rule: "allow-syntax",
            path: path.to_string(),
            line: bad.line,
            col: 1,
            message: bad.problem.clone(),
        });
    }
    for allow in &lexed.allows {
        if !known_rule(&allow.rule) {
            report.findings.push(Finding {
                rule: "allow-syntax",
                path: path.to_string(),
                line: allow.line,
                col: 1,
                message: format!("lint:allow names unknown rule `{}`", allow.rule),
            });
        }
    }

    if scope.library() {
        hash_container(path, &lexed, &mut report);
        if !timing_allowlisted(path) {
            timing(path, &lexed, &mut report);
        }
        panic_freedom(path, &lexed, &mut report);
        indexing(path, &lexed, &mut report);
    }
    // A dropped-on-arrival span guard is a tracing bug in any scope, binaries
    // and benches included — the CLI and bench harness open spans too.
    span_guard(path, &lexed, &mut report);
    if scope.library() && is_accumulator_file(path) {
        counter_arith(path, &lexed, &mut report);
    }
    if scope.ctor_rule() {
        collect_non_exhaustive(path, &lexed, &mut report);
    }
    collect_ctor_evidence(&lexed, &mut report);

    // Apply lint:allow suppression (except to allow-syntax itself).
    report.findings.retain(|f| {
        f.rule == "allow-syntax"
            || !lexed.allows.iter().any(|a| {
                a.rule == f.rule && (a.file_level || a.line == f.line || a.line + 1 == f.line)
            })
    });
    report
}

/// Crate-level join for `non-exhaustive-ctor`: every declared type must appear
/// in some file's constructor evidence.
pub fn finish_ctor_rule(decls: &[TypeDecl], evidence: &[String]) -> Vec<Finding> {
    decls
        .iter()
        .filter(|d| !d.allowed && !evidence.iter().any(|e| e == &d.name))
        .map(|d| Finding {
            rule: "non-exhaustive-ctor",
            path: d.path.clone(),
            line: d.line,
            col: 1,
            message: format!(
                "#[non_exhaustive] pub type `{}` has no public constructor helper \
                 (pub fn returning Self, or a Default/From/FromStr impl)",
                d.name
            ),
        })
        .collect()
}

fn live(lexed: &LexOutput) -> impl Iterator<Item = (usize, &Token)> {
    lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| !lexed.in_test.get(*i).copied().unwrap_or(false))
}

fn finding(report: &mut FileReport, rule: &'static str, path: &str, tok: &Token, message: String) {
    report.findings.push(Finding {
        rule,
        path: path.to_string(),
        line: tok.span.line,
        col: tok.span.col,
        message,
    });
}

fn hash_container(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    for (_, tok) in live(lexed) {
        if tok.kind == TokenKind::Ident
            && matches!(
                tok.text.as_str(),
                "HashMap" | "HashSet" | "DefaultHasher" | "RandomState"
            )
        {
            finding(
                report,
                "hash-container",
                path,
                tok,
                format!(
                    "`{}` has nondeterministic iteration order; use BTreeMap/BTreeSet \
                     or a sorted vec",
                    tok.text
                ),
            );
        }
    }
}

fn timing(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in live(lexed) {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let follows = |a: usize, text: &str| toks.get(i + a).is_some_and(|t| t.text == text);
        let hit = match tok.text.as_str() {
            "Instant" => follows(1, "::") && follows(2, "now"),
            "SystemTime" => true,
            "thread" => follows(1, "::") && follows(2, "current"),
            _ => false,
        };
        if hit {
            finding(
                report,
                "timing",
                path,
                tok,
                format!(
                    "`{}` reads the wall clock / thread identity outside an allowlisted \
                     timing module; results must not depend on it",
                    tok.text
                ),
            );
        }
    }
}

fn panic_freedom(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in live(lexed) {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |text: &str| toks.get(i + 1).is_some_and(|t| t.text == text);
        let prev_is_dot = i > 0 && toks[i - 1].text == ".";
        let hit = match tok.text.as_str() {
            "unwrap" | "expect" => prev_is_dot && next_is("("),
            "panic" | "unreachable" | "todo" | "unimplemented" => next_is("!"),
            _ => false,
        };
        if hit {
            finding(
                report,
                "panic",
                path,
                tok,
                format!(
                    "`{}` can panic in library code; return a typed Error or document \
                     the invariant with lint:allow(panic, reason)",
                    tok.text
                ),
            );
        }
    }
}

fn indexing(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in live(lexed) {
        if tok.text != "[" || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let index_expr = match prev.kind {
            TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if index_expr {
            finding(
                report,
                "indexing",
                path,
                tok,
                "indexing can panic on out-of-bounds; use .get()/iterators or document \
                 the bounds invariant with lint:allow(indexing, reason)"
                    .to_string(),
            );
        }
    }
}

/// Flags `let _ = ...span(...)...;` — the `_` pattern drops the returned
/// [`SpanGuard`] immediately, so the span closes before the work it was meant
/// to cover and records (near-)zero duration. The scan walks the initializer
/// up to the statement's top-level `;` looking for a `span` call.
fn span_guard(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in live(lexed) {
        if tok.kind != TokenKind::Ident
            || tok.text != "let"
            || toks.get(i + 1).is_none_or(|t| t.text != "_")
            || toks.get(i + 2).is_none_or(|t| t.text != "=")
        {
            continue;
        }
        let mut depth = 0i32;
        for t in &toks[i + 3..] {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                "span" if t.kind == TokenKind::Ident => {
                    finding(
                        report,
                        "span-guard",
                        path,
                        tok,
                        "`let _ = ...span(...)` drops the span guard immediately and \
                         records an empty span; bind it to a named variable so it \
                         covers the traced work"
                            .to_string(),
                    );
                    break;
                }
                _ => {}
            }
        }
    }
}

fn counter_arith(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in live(lexed) {
        if tok.text == "+=" || tok.text == "*=" {
            if let Some(field) = lhs_field(toks, i) {
                // Float telemetry (everything `*seconds*` here) cannot wrap.
                if field.contains("seconds") || field.contains("factor") {
                    continue;
                }
            }
            finding(
                report,
                "counter-arith",
                path,
                tok,
                format!(
                    "bare `{}` on a stat counter can overflow; use saturating_add/\
                     saturating_mul (PR 7 saturation contract)",
                    tok.text
                ),
            );
        } else if tok.kind == TokenKind::Ident
            && tok.text == "as"
            && toks
                .get(i + 1)
                .is_some_and(|t| NARROW_CASTS.contains(&t.text.as_str()))
        {
            let target = &toks[i + 1].text;
            finding(
                report,
                "counter-arith",
                path,
                tok,
                format!(
                    "narrowing `as {target}` cast in an accumulator file silently \
                     truncates counters; use try_from or widen the target"
                ),
            );
        }
    }
}

/// Walks back from an `op=` token to the field identifier being assigned,
/// skipping one trailing `[...]` index group (`buckets[i] += 1`).
fn lhs_field(toks: &[Token], op: usize) -> Option<String> {
    let mut i = op.checked_sub(1)?;
    if toks[i].text == "]" {
        let mut depth = 1usize;
        while depth > 0 {
            i = i.checked_sub(1)?;
            match toks[i].text.as_str() {
                "]" => depth += 1,
                "[" => depth -= 1,
                _ => {}
            }
        }
        i = i.checked_sub(1)?;
    }
    (toks[i].kind == TokenKind::Ident).then(|| toks[i].text.clone())
}

fn collect_non_exhaustive(path: &str, lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in live(lexed) {
        if tok.text != "non_exhaustive" {
            continue;
        }
        // Walk forward past the closing `]` and any further attributes to the
        // item header; require `pub struct X` / `pub enum X`.
        let mut j = i + 1;
        while j < toks.len() && toks[j].text != "]" {
            j += 1;
        }
        j += 1;
        // Skip stacked attributes (`#[derive(..)]` etc).
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        if toks.get(j).is_none_or(|t| t.text != "pub") {
            continue;
        }
        let mut k = j + 1;
        while k < toks.len() && !matches!(toks[k].text.as_str(), "struct" | "enum") {
            // Past visibility modifiers like `pub(crate)` (which we already
            // treat as non-pub for rule purposes) — bail on anything else.
            if !matches!(toks[k].text.as_str(), "(" | ")" | "crate" | "super" | "in") {
                break;
            }
            k += 1;
        }
        if !toks
            .get(k)
            .is_some_and(|t| matches!(t.text.as_str(), "struct" | "enum"))
        {
            continue;
        }
        let Some(name_tok) = toks.get(k + 1) else {
            continue;
        };
        let allowed = lexed.allows.iter().any(|a| {
            a.rule == "non-exhaustive-ctor"
                && (a.file_level || a.line == tok.span.line || a.line + 1 == tok.span.line)
        });
        report.non_exhaustive.push(TypeDecl {
            name: name_tok.text.clone(),
            path: path.to_string(),
            line: tok.span.line,
            allowed,
        });
    }
}

/// Records, for every `impl` block, whether it provides constructor evidence:
/// an inherent `pub fn` returning `Self`/the type, or a `Default`/`From`/
/// `FromStr` trait impl.
fn collect_ctor_evidence(lexed: &LexOutput, report: &mut FileReport) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.text != "impl" || tok.kind != TokenKind::Ident {
            continue;
        }
        let mut j = i + 1;
        // Skip `impl<...>` generics (the lexer may fuse `>>`).
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        // Header: everything up to `{` / `where`; split on a depth-0 `for`.
        let mut header: Vec<&Token> = Vec::new();
        let mut for_at: Option<usize> = None;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    body_open = Some(j);
                    break;
                }
                "where" if depth == 0 => break,
                ";" if depth == 0 => break,
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "for" if depth == 0 => for_at = Some(header.len()),
                _ => {}
            }
            header.push(&toks[j]);
            j += 1;
        }
        let (trait_part, type_part) = match for_at {
            Some(pos) => (&header[..pos], &header[pos + 1..]),
            None => (&header[..0], &header[..]),
        };
        let Some(type_name) = last_depth0_ident(type_part) else {
            continue;
        };
        if for_at.is_some() {
            if let Some(trait_name) = last_depth0_ident(trait_part) {
                if matches!(trait_name.as_str(), "Default" | "From" | "FromStr") {
                    report.ctor_evidence.push(type_name);
                }
            }
            continue;
        }
        // Inherent impl: scan the body for `pub fn .. -> ..Self/Type..`.
        let Some(open) = body_open else { continue };
        let close = matching_brace(toks, open);
        if inherent_ctor_in_body(toks, open + 1, close, &type_name) {
            report.ctor_evidence.push(type_name);
        }
    }
}

/// The last identifier at angle-depth 0 — the final path segment of a type or
/// trait expression, generics stripped.
fn last_depth0_ident(part: &[&Token]) -> Option<String> {
    let mut depth = 0i32;
    let mut name = None;
    for t in part {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            _ => {
                if depth == 0 && t.kind == TokenKind::Ident {
                    name = Some(t.text.clone());
                }
            }
        }
    }
    name
}

fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

fn inherent_ctor_in_body(toks: &[Token], start: usize, end: usize, type_name: &str) -> bool {
    let mut i = start;
    while i < end {
        if toks[i].text != "pub" {
            i += 1;
            continue;
        }
        // `pub(crate)` and friends are not public API.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "(") {
            i += 1;
            continue;
        }
        while j < end
            && matches!(
                toks[j].text.as_str(),
                "const" | "async" | "unsafe" | "extern"
            )
        {
            j += 1;
        }
        if toks.get(j).is_none_or(|t| t.text != "fn") {
            i += 1;
            continue;
        }
        // Return type: tokens between `->` and the body `{` (or `;`/`where`).
        let mut k = j;
        let mut arrow = None;
        let mut depth = 0i32;
        while k < end {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "->" if depth == 0 => arrow = Some(k),
                "{" | ";" if depth == 0 => break,
                "where" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(a) = arrow {
            let returns = &toks[a + 1..k];
            if returns
                .iter()
                .any(|t| t.text == "Self" || t.text == type_name)
            {
                return true;
            }
        }
        i = k.max(i + 1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, scope: Scope, src: &str) -> Vec<Finding> {
        analyze_file(path, scope, src).findings
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn hash_container_flags_maps_and_hashers() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   use std::hash::RandomState;\nfn f() { let h = DefaultHasher::new(); }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        let hashes: Vec<_> = f.iter().filter(|x| x.rule == "hash-container").collect();
        assert_eq!(hashes.len(), 4);
        assert_eq!(hashes[0].line, 1);
    }

    #[test]
    fn hash_container_ignores_btree_and_test_mods() {
        let src = "use std::collections::BTreeMap;\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; }";
        let f = findings("crates/graph/src/x.rs", Scope::Graph, src);
        assert!(!rules_of(&f).contains(&"hash-container"), "{f:?}");
    }

    #[test]
    fn timing_flags_clock_reads_but_not_type_positions() {
        let src = "fn f(started: Instant) { let t = Instant::now(); \
                   let s = SystemTime::now(); let id = std::thread::current().id(); }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        let timing: Vec<_> = f.iter().filter(|x| x.rule == "timing").collect();
        assert_eq!(timing.len(), 3, "{timing:?}");
    }

    #[test]
    fn timing_allowlists_latency_module_and_tools() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(findings("crates/core/src/serve/latency.rs", Scope::Core, src).is_empty());
        assert!(findings("crates/cli/src/main.rs", Scope::Tool, src).is_empty());
        assert!(findings("crates/bench/src/lib.rs", Scope::Tool, src).is_empty());
    }

    #[test]
    fn timing_allowlists_exactly_the_obs_clock_shim() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(findings("crates/obs/src/clock.rs", Scope::Obs, src).is_empty());
        // Every other obs module stays under the timing rule.
        let f = findings("crates/obs/src/sink.rs", Scope::Obs, src);
        assert!(rules_of(&f).contains(&"timing"), "{f:?}");
    }

    #[test]
    fn span_guard_flags_discarded_guards_in_every_scope() {
        let src = "fn f(sink: &SpanSink) { let _ = sink.span(META, key); }";
        for (path, scope) in [
            ("crates/core/src/session.rs", Scope::Core),
            ("crates/cli/src/main.rs", Scope::Tool),
            ("crates/obs/src/lib.rs", Scope::Obs),
        ] {
            let f = findings(path, scope, src);
            assert!(rules_of(&f).contains(&"span-guard"), "{path}: {f:?}");
        }
    }

    #[test]
    fn span_guard_accepts_named_bindings_and_unrelated_discards() {
        let src = "fn f(sink: &SpanSink) { let _span = sink.span(META, key); \
                   let _ = tx.send(x); let _ = span_meta_count; }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"span-guard"), "{f:?}");
    }

    #[test]
    fn span_guard_scan_stops_at_the_statement_boundary() {
        // The `span` call in the *next* statement must not blame the first `let _`.
        let src = "fn f(sink: &SpanSink) { let _ = unrelated(); \
                   let s = sink.span(META, key); }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"span-guard"), "{f:?}");
    }

    #[test]
    fn panic_rule_flags_methods_and_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); unreachable!(); \
                   todo!(); unimplemented!(); }";
        let f = findings("crates/engine/src/x.rs", Scope::Engine, src);
        assert_eq!(f.iter().filter(|x| x.rule == "panic").count(), 6);
    }

    #[test]
    fn panic_rule_skips_lookalikes() {
        // unwrap_or* are total; `should_panic` is an ident of its own; a path
        // mention of the panic module is not an invocation.
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); x.unwrap_or_default(); \
                   std::panic::catch_unwind(|| 2); }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"panic"), "{f:?}");
    }

    #[test]
    fn indexing_flags_expressions_not_types_or_macros() {
        let src = "fn f(a: [u8; 4], v: &[u64]) -> Vec<u8> { let x = v[0]; let y = g()[1]; \
                   let z = m[0][1]; let w = vec![1, 2]; let s = &v[1..]; a.to_vec() }";
        let f = findings("crates/graph/src/x.rs", Scope::Graph, src);
        // v[0], g()[1], m[0], [1] after m[0], v[1..] — five index expressions.
        assert_eq!(
            f.iter().filter(|x| x.rule == "indexing").count(),
            5,
            "{f:?}"
        );
    }

    #[test]
    fn indexing_skips_patterns_and_attributes() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(x: &[u8]) { if let [a, b] = x { } }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"indexing"), "{f:?}");
    }

    #[test]
    fn counter_arith_flags_bare_add_but_not_float_seconds() {
        let src = "fn f(s: &mut Stats) { s.served += 1; s.busy_seconds += 0.5; \
                   s.buckets[i] += 1; s.total = s.total.saturating_add(2); }";
        let f = findings("crates/core/src/session.rs", Scope::Core, src);
        assert_eq!(
            f.iter().filter(|x| x.rule == "counter-arith").count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn counter_arith_only_applies_to_accumulator_files() {
        let src = "fn f(x: &mut u64) { *x += 1; }";
        let f = findings("crates/core/src/topk.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"counter-arith"), "{f:?}");
        // walkindex/serve.rs is walk math, not the serve/ accumulator module.
        let f = findings("crates/core/src/walkindex/serve.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"counter-arith"), "{f:?}");
        let f = findings("crates/core/src/serve/pool.rs", Scope::Core, src);
        assert!(rules_of(&f).contains(&"counter-arith"), "{f:?}");
    }

    #[test]
    fn counter_arith_flags_narrowing_casts() {
        let src = "fn f(n: u64) -> u32 { n as u32 }\nfn g(n: u64) -> f64 { n as f64 }";
        let f = findings("crates/engine/src/metrics.rs", Scope::Engine, src);
        let casts: Vec<_> = f.iter().filter(|x| x.rule == "counter-arith").collect();
        assert_eq!(casts.len(), 1, "{casts:?}");
        assert!(casts[0].message.contains("as u32"));
    }

    #[test]
    fn ctor_rule_passes_with_pub_fn_returning_self() {
        let src = "#[non_exhaustive]\npub struct Q { pub k: usize }\n\
                   impl Q { pub fn top_k(k: usize) -> Self { Q { k } } }";
        let r = analyze_file("crates/core/src/x.rs", Scope::Core, src);
        let f = finish_ctor_rule(&r.non_exhaustive, &r.ctor_evidence);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ctor_rule_accepts_default_and_from_impls() {
        let src = "#[non_exhaustive]\n#[derive(Debug)]\npub enum E { A }\n\
                   impl Default for E { fn default() -> Self { E::A } }";
        let r = analyze_file("crates/core/src/x.rs", Scope::Core, src);
        let f = finish_ctor_rule(&r.non_exhaustive, &r.ctor_evidence);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ctor_rule_flags_missing_constructor() {
        let src = "#[non_exhaustive]\npub struct R { pub v: u64 }\n\
                   impl R { pub fn value(&self) -> u64 { self.v } }";
        let r = analyze_file("crates/core/src/x.rs", Scope::Core, src);
        let f = finish_ctor_rule(&r.non_exhaustive, &r.ctor_evidence);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "non-exhaustive-ctor");
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("`R`"));
    }

    #[test]
    fn ctor_rule_ignores_pub_crate_fn_and_getters() {
        let src = "#[non_exhaustive]\npub struct R;\n\
                   impl R { pub(crate) fn new() -> Self { R } }";
        let r = analyze_file("crates/core/src/x.rs", Scope::Core, src);
        let f = finish_ctor_rule(&r.non_exhaustive, &r.ctor_evidence);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn ctor_evidence_joins_across_files() {
        let decl = analyze_file(
            "crates/core/src/a.rs",
            Scope::Core,
            "#[non_exhaustive]\npub struct T;",
        );
        let ctor = analyze_file(
            "crates/core/src/b.rs",
            Scope::Core,
            "impl T { pub fn new() -> T { T } }",
        );
        let f = finish_ctor_rule(&decl.non_exhaustive, &ctor.ctor_evidence);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_same_line_and_previous_line_suppress() {
        let src = "fn f() {\n\
                   x.unwrap(); // lint:allow(panic, poisoning implies a prior panic)\n\
                   // lint:allow(panic, checked two lines up)\n\
                   y.unwrap();\n\
                   z.unwrap();\n}";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        let panics: Vec<_> = f.iter().filter(|x| x.rule == "panic").collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].line, 5);
    }

    #[test]
    fn file_level_allow_suppresses_everywhere() {
        let src = "// lint:allow-file(indexing, arena offsets are construction-checked)\n\
                   fn f(v: &[u8]) -> u8 { v[0] }";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert!(!rules_of(&f).contains(&"indexing"), "{f:?}");
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "// lint:allow(indexing, wrong rule)\nx.unwrap();";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert!(rules_of(&f).contains(&"panic"));
    }

    #[test]
    fn malformed_and_unknown_allows_are_reported() {
        let src = "// lint:allow(panic)\n// lint:allow(not-a-rule, reason text)\n";
        let f = findings("crates/core/src/x.rs", Scope::Core, src);
        assert_eq!(
            f.iter().filter(|x| x.rule == "allow-syntax").count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn scope_classification() {
        assert_eq!(Scope::classify("crates/core/src/topk.rs"), Scope::Core);
        assert_eq!(
            Scope::classify("crates/engine/src/engine.rs"),
            Scope::Engine
        );
        assert_eq!(Scope::classify("crates/graph/src/csr.rs"), Scope::Graph);
        assert_eq!(Scope::classify("crates/obs/src/clock.rs"), Scope::Obs);
        assert_eq!(Scope::classify("crates/cli/src/main.rs"), Scope::Tool);
        assert_eq!(Scope::classify("crates/lint/src/rules.rs"), Scope::Tool);
        assert_eq!(Scope::classify("src/lib.rs"), Scope::Tool);
        assert_eq!(Scope::classify("scratch/evil.rs"), Scope::Unknown);
    }
}
