//! `frogwild-lint` — the workspace determinism & panic-freedom static-analysis
//! pass.
//!
//! FrogWild's headline engineering claim is that responses are bit-identical
//! across worker counts, batch sizes, and staleness windows. The dynamic
//! enforcement (golden fingerprints, proptest sweeps) samples a tiny corner of
//! the configuration space; this pass enforces the *classes* of bug statically,
//! for every configuration at once:
//!
//! * **determinism** — no std hash containers or wall-clock/thread-identity
//!   reads in `crates/{core,engine,graph}` library code;
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!`-family/indexing in
//!   library code without a documented `lint:allow(rule, reason)`;
//! * **overflow hygiene** — stat-counter accumulators use `saturating_*` and
//!   never narrow with `as`;
//! * **API hygiene** — every `#[non_exhaustive]` pub type in `crates/core`
//!   keeps a public constructor helper.
//!
//! The analysis is a hand-rolled lexer ([`lexer`]) plus shallow token-pattern
//! rules ([`rules`]) — no external dependencies, no type information. That
//! buys zero-setup CI enforcement at the cost of needing `lint:allow` escape
//! hatches where the rules cannot see an invariant (every allow requires a
//! written reason, which is the point).

pub mod lexer;
pub mod rules;

use rules::{analyze_file, finish_ctor_rule, Finding, Scope};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Driver configuration, assembled by the CLI (or tests).
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Rules to drop from the report entirely (`--allow <rule>`).
    pub allow_rules: Vec<String>,
    /// Baseline entries to subtract (grandfathered findings).
    pub baseline: Vec<BaselineEntry>,
}

/// One grandfathered finding: `rule <TAB> path <TAB> line` in the baseline file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub line: u32,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived allows and the baseline, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Scans `files` (path, source) pairs. Paths must be workspace-relative with
/// forward slashes; the crate-level constructor join groups files by their
/// `crates/<name>/` prefix.
pub fn run_on_sources(files: &[(String, String)], config: &Config) -> Report {
    let mut findings = Vec::new();
    // Constructor-rule state grouped per crate (fixture/scratch files outside
    // `crates/` join a shared "" group, so a fixture pair still links up).
    let mut decls: BTreeMap<String, Vec<rules::TypeDecl>> = BTreeMap::new();
    let mut evidence: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for (path, src) in files {
        let scope = Scope::classify(path);
        let report = analyze_file(path, scope, src);
        findings.extend(report.findings);
        let group = crate_group(path);
        decls
            .entry(group.clone())
            .or_default()
            .extend(report.non_exhaustive);
        evidence
            .entry(group)
            .or_default()
            .extend(report.ctor_evidence);
    }
    for (group, d) in &decls {
        let e = evidence.get(group).map(Vec::as_slice).unwrap_or(&[]);
        findings.extend(finish_ctor_rule(d, e));
    }

    findings.retain(|f| !config.allow_rules.iter().any(|r| r == f.rule));
    findings.retain(|f| {
        !config
            .baseline
            .iter()
            .any(|b| b.rule == f.rule && b.path == f.path && b.line == f.line)
    });
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    Report {
        findings,
        files_scanned: files.len(),
    }
}

fn crate_group(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Collects the `.rs` files the workspace pass scans: `crates/*/src` and the
/// root `src/`, relative to `root`. Test trees (`crates/*/tests`, `tests/`,
/// `examples/`, `benches/`) hold test code by definition and are skipped.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        crates.sort();
        for krate in crates {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative, forward-slash rendering of `path` under `root`.
/// Paths outside the root are returned as given (still forward-slashed).
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Parses a baseline file: one `rule<TAB>path<TAB>line` entry per line,
/// `#`-comments and blank lines skipped.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(ln)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>path<TAB>line`",
                i + 1
            ));
        };
        let ln: u32 = ln
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {}: bad line number `{ln}`", i + 1))?;
        entries.push(BaselineEntry {
            rule: rule.trim().to_string(),
            path: path.trim().to_string(),
            line: ln,
        });
    }
    Ok(entries)
}

/// Renders findings back into baseline-file form (`--write-baseline`).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# frogwild-lint baseline: grandfathered findings, one `rule<TAB>path<TAB>line`\n\
         # per line. CI fails when this file is non-empty — burn entries down, don't\n\
         # add them. Regenerate with `cargo run -p frogwild-lint -- --write-baseline`.\n",
    );
    for f in findings {
        let _ = writeln!(out, "{}\t{}\t{}", f.rule, f.path, f.line);
    }
    out
}

/// Output format for the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Format {
    #[default]
    Human,
    Csv,
}

/// Renders the report in the chosen format.
pub fn render_report(report: &Report, format: Format) -> String {
    let mut out = String::new();
    match format {
        Format::Human => {
            for f in &report.findings {
                let _ = writeln!(
                    out,
                    "{}:{}:{}: {}: {}",
                    f.path, f.line, f.col, f.rule, f.message
                );
            }
            let _ = writeln!(
                out,
                "{} finding{} across {} file{}",
                report.findings.len(),
                if report.findings.len() == 1 { "" } else { "s" },
                report.files_scanned,
                if report.files_scanned == 1 { "" } else { "s" },
            );
        }
        Format::Csv => {
            let _ = writeln!(out, "rule,path,line,col,message");
            for f in &report.findings {
                let _ = writeln!(
                    out,
                    "{},{},{},{},\"{}\"",
                    f.rule,
                    f.path,
                    f.line,
                    f.col,
                    f.message.replace('"', "\"\"")
                );
            }
        }
    }
    out
}

/// Files touched since `rev`, per `git diff --name-only <rev>` plus untracked
/// files — the `--changed-since` scan set.
pub fn changed_since(root: &Path, rev: &str) -> Result<Vec<String>, String> {
    let diff = git_lines(root, &["diff", "--name-only", rev])?;
    let untracked = git_lines(root, &["ls-files", "--others", "--exclude-standard"])?;
    let mut files: Vec<String> = diff.into_iter().chain(untracked).collect();
    files.sort();
    files.dedup();
    Ok(files)
}

fn git_lines(root: &Path, args: &[&str]) -> Result<Vec<String>, String> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .map_err(|e| format!("failed to run git: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "git {} failed: {}",
            args.join(" "),
            String::from_utf8_lossy(&output.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn run_orders_findings_and_counts_files() {
        let files = sources(&[
            ("crates/core/src/b.rs", "fn f() { x.unwrap(); }"),
            ("crates/core/src/a.rs", "use std::collections::HashMap;"),
        ]);
        let report = run_on_sources(&files, &Config::default());
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.findings[0].path, "crates/core/src/a.rs");
        assert_eq!(report.findings[1].path, "crates/core/src/b.rs");
    }

    #[test]
    fn allow_rules_drop_whole_rule() {
        let files = sources(&[("crates/core/src/a.rs", "fn f() { x.unwrap(); }")]);
        let config = Config {
            allow_rules: vec!["panic".to_string()],
            ..Config::default()
        };
        assert!(run_on_sources(&files, &config).findings.is_empty());
    }

    #[test]
    fn baseline_suppresses_exact_matches_only() {
        let files = sources(&[(
            "crates/core/src/a.rs",
            "fn f() { x.unwrap(); }\nfn g() { y.unwrap(); }",
        )]);
        let config = Config {
            baseline: vec![BaselineEntry {
                rule: "panic".to_string(),
                path: "crates/core/src/a.rs".to_string(),
                line: 1,
            }],
            ..Config::default()
        };
        let report = run_on_sources(&files, &config);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn baseline_round_trips() {
        let files = sources(&[(
            "crates/engine/src/x.rs",
            "fn f() { a.unwrap(); let t = Instant::now(); }",
        )]);
        let first = run_on_sources(&files, &Config::default());
        assert_eq!(first.findings.len(), 2);
        let baseline_text = render_baseline(&first.findings);
        let baseline = parse_baseline(&baseline_text).expect("parses");
        assert_eq!(baseline.len(), 2);
        let second = run_on_sources(
            &files,
            &Config {
                baseline,
                ..Config::default()
            },
        );
        assert!(second.findings.is_empty(), "{:?}", second.findings);
    }

    #[test]
    fn baseline_parser_rejects_garbage() {
        assert!(parse_baseline("# comment\n\npanic\tcrates/core/src/a.rs\t3\n").is_ok());
        assert!(parse_baseline("panic crates/core/src/a.rs 3\n").is_err());
        assert!(parse_baseline("panic\tp\tnot-a-number\n").is_err());
    }

    #[test]
    fn ctor_join_spans_files_within_a_crate_but_not_across_crates() {
        let linked = run_on_sources(
            &sources(&[
                ("crates/core/src/a.rs", "#[non_exhaustive]\npub struct T;"),
                ("crates/core/src/b.rs", "impl T { pub fn new() -> T { T } }"),
            ]),
            &Config::default(),
        );
        assert!(linked.findings.is_empty(), "{:?}", linked.findings);

        let unlinked = run_on_sources(
            &sources(&[
                ("crates/core/src/a.rs", "#[non_exhaustive]\npub struct T;"),
                (
                    "crates/graph/src/b.rs",
                    "impl T { pub fn new() -> T { T } }",
                ),
            ]),
            &Config::default(),
        );
        assert_eq!(unlinked.findings.len(), 1);
        assert_eq!(unlinked.findings[0].rule, "non-exhaustive-ctor");
    }

    #[test]
    fn csv_format_escapes_quotes() {
        let report = Report {
            findings: vec![Finding {
                rule: "panic",
                path: "a.rs".to_string(),
                line: 1,
                col: 2,
                message: "uses \"quotes\"".to_string(),
            }],
            files_scanned: 1,
        };
        let csv = render_report(&report, Format::Csv);
        assert!(csv.starts_with("rule,path,line,col,message\n"));
        assert!(csv.contains("panic,a.rs,1,2,\"uses \"\"quotes\"\"\""));
    }

    #[test]
    fn changed_since_runs_against_this_repo_when_git_is_available() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        if !root.join(".git").exists() {
            return; // packaged source, nothing to test against
        }
        match changed_since(root, "HEAD") {
            Ok(files) => {
                for f in files {
                    assert!(!f.contains('\\'), "forward slashes expected: {f}");
                }
            }
            Err(e) => panic!("git diff against HEAD failed: {e}"),
        }
    }
}
