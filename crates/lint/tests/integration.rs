//! Fixture-tree integration tests: the exact findings (rule, line, column) the
//! pass produces over `tests/fixtures/`, allow handling, baseline round-trips,
//! and the `frogwild-lint` binary's exit-code contract.

use frogwild_lint::{parse_baseline, render_baseline, run_on_sources, Config};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Loads every fixture file keyed by its path relative to the manifest dir
/// (`tests/fixtures/...`), matching what the binary reports with
/// `--root <manifest dir>`. The prefix keeps the paths out of `crates/`, which
/// classifies them under the strictest (library) rule scope.
fn fixture_sources() -> Vec<(String, String)> {
    let root = fixture_dir();
    let mut files = Vec::new();
    collect(&root, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let rel = format!(
                "tests/fixtures/{}",
                p.strip_prefix(&root).unwrap().to_string_lossy()
            );
            (rel, std::fs::read_to_string(&p).unwrap())
        })
        .collect()
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn fixture_tree_produces_exactly_the_expected_findings() {
    let report = run_on_sources(&fixture_sources(), &Config::default());
    let got: Vec<(&str, &str, u32, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line, f.col))
        .collect();
    let expected = [
        ("allow-syntax", "tests/fixtures/allowed.rs", 9, 1),
        ("panic", "tests/fixtures/allowed.rs", 9, 7),
        (
            "non-exhaustive-ctor",
            "tests/fixtures/violations/ctor.rs",
            3,
            1,
        ),
        (
            "hash-container",
            "tests/fixtures/violations/determinism.rs",
            2,
            23,
        ),
        (
            "hash-container",
            "tests/fixtures/violations/determinism.rs",
            4,
            19,
        ),
        ("timing", "tests/fixtures/violations/determinism.rs", 6, 16),
        (
            "counter-arith",
            "tests/fixtures/violations/metrics.rs",
            9,
            24,
        ),
        (
            "counter-arith",
            "tests/fixtures/violations/metrics.rs",
            10,
            24,
        ),
        ("panic", "tests/fixtures/violations/panics.rs", 3, 25),
        ("indexing", "tests/fixtures/violations/panics.rs", 4, 15),
        ("panic", "tests/fixtures/violations/panics.rs", 6, 9),
        ("span-guard", "tests/fixtures/violations/spans.rs", 4, 5),
    ];
    assert_eq!(got, expected, "full findings: {:#?}", report.findings);
}

#[test]
fn clean_fixture_has_no_findings_even_under_the_strictest_scope() {
    let sources: Vec<_> = fixture_sources()
        .into_iter()
        .filter(|(p, _)| p.ends_with("clean.rs"))
        .collect();
    assert_eq!(sources.len(), 1);
    let report = run_on_sources(&sources, &Config::default());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn well_formed_allow_suppresses_and_reasonless_allow_does_not() {
    let sources: Vec<_> = fixture_sources()
        .into_iter()
        .filter(|(p, _)| p.ends_with("allowed.rs"))
        .collect();
    let report = run_on_sources(&sources, &Config::default());
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    // The reasoned allow on `g` suppressed its unwrap; `h` keeps both the
    // malformed-allow finding and the unsuppressed panic finding.
    assert_eq!(rules, ["allow-syntax", "panic"]);
    assert!(report.findings.iter().all(|f| f.line == 9));
}

#[test]
fn baseline_round_trips_over_the_fixture_tree() {
    let sources = fixture_sources();
    let first = run_on_sources(&sources, &Config::default());
    assert!(!first.findings.is_empty());
    let baseline = parse_baseline(&render_baseline(&first.findings)).expect("parses");
    let second = run_on_sources(
        &sources,
        &Config {
            baseline,
            ..Config::default()
        },
    );
    assert!(second.findings.is_empty(), "{:?}", second.findings);
}

// ---- binary-level tests -----------------------------------------------------

fn lint_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_frogwild-lint"));
    // Root at the crate dir: fixture paths print relative to it and the default
    // baseline path (<root>/crates/lint/baseline.lint) does not exist, so these
    // runs never read the real workspace baseline.
    cmd.arg("--root").arg(env!("CARGO_MANIFEST_DIR"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn deny_all_fails_on_each_seeded_violation_class_and_passes_on_clean() {
    for file in [
        "violations/determinism.rs",
        "violations/panics.rs",
        "violations/metrics.rs",
        "violations/ctor.rs",
        "violations/spans.rs",
    ] {
        let out = lint_cmd()
            .arg("--deny-all")
            .arg(fixture_dir().join(file))
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "{file} should fail --deny-all");
    }
    let out = lint_cmd()
        .arg("--deny-all")
        .arg(fixture_dir().join("clean.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "clean.rs should pass");
}

#[test]
fn per_rule_allows_turn_a_failing_run_green() {
    let out = lint_cmd()
        .arg("--deny-all")
        .args(["--allow", "hash-container", "--allow", "timing"])
        .arg(fixture_dir().join("violations/determinism.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn unknown_rule_and_unknown_option_are_usage_errors() {
    let out = lint_cmd()
        .args(["--allow", "no-such-rule"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = lint_cmd().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn write_baseline_then_deny_all_round_trips_through_the_binary() {
    let baseline = std::env::temp_dir().join(format!(
        "frogwild-lint-baseline-{}.lint",
        std::process::id()
    ));
    let out = lint_cmd()
        .args(["--write-baseline", "--baseline"])
        .arg(&baseline)
        .arg(fixture_dir())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let out = lint_cmd()
        .args(["--deny-all", "--baseline"])
        .arg(&baseline)
        .arg(fixture_dir())
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&baseline);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn csv_format_emits_header_and_quoted_messages() {
    let out = lint_cmd()
        .args(["--format", "csv"])
        .arg(fixture_dir().join("violations/panics.rs"))
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.starts_with("rule,path,line,col,message\n"),
        "{stdout}"
    );
    assert_eq!(stdout.lines().count(), 4, "{stdout}");
}

#[test]
fn list_rules_names_every_rule() {
    let out = lint_cmd().arg("--list-rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "hash-container",
        "timing",
        "span-guard",
        "panic",
        "indexing",
        "counter-arith",
        "non-exhaustive-ctor",
        "allow-syntax",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn the_workspace_itself_is_clean_under_deny_all() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_frogwild-lint"))
        .arg("--root")
        .arg(root)
        .arg("--deny-all")
        .current_dir(root)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint regressed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
