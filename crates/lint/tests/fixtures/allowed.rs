// Fixture: allow handling — a well-formed allow suppresses its finding, a
// reason-less allow is itself a finding and suppresses nothing.
pub fn g(xs: &[u32]) -> u32 {
    // lint:allow(panic, fixture: first element is guaranteed by the caller)
    *xs.first().unwrap()
}

pub fn h(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(panic)
}
