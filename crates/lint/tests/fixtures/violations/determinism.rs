// Fixture: determinism violations — a std hash container and a wall-clock read.
use std::collections::HashMap;

pub fn pick(map: &HashMap<u32, u32>) -> u64 {
    let _ = map.len();
    std::time::Instant::now().elapsed().as_secs()
}
