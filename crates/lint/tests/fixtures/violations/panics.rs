// Fixture: panic-freedom violations — unwrap, slice indexing, and panic!.
pub fn f(xs: &[u32]) -> u32 {
    let a = *xs.first().unwrap();
    let b = xs[0];
    if a > 3 {
        panic!("boom");
    }
    a + b
}
