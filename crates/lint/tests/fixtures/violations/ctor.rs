// Fixture: API-hygiene violation — a #[non_exhaustive] pub type with no public
// constructor helper anywhere in its group.
#[non_exhaustive]
pub struct Widget {
    pub id: u32,
}
