// Fixture: span-guard violation — the guard is dropped on arrival, so the
// span closes before the work it was supposed to cover.
pub fn traced(sink: &SpanSink, key: SpanKey) -> u64 {
    let _ = sink.span(META, key);
    expensive_work()
}
