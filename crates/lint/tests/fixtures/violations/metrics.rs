// Fixture: overflow-hygiene violations — the file name marks it an accumulator
// file, so bare `+=` and narrowing casts are flagged.
pub struct Stats {
    pub total_ops: u64,
}

impl Stats {
    pub fn bump(&mut self, n: u64) {
        self.total_ops += n;
        let _small = n as u32;
    }
}
