// Fixture: clean library code — saturating arithmetic, no panics, and test-only
// unwraps that the scanner must skip.
pub fn add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_and_indexing_are_fine_in_tests() {
        let v = vec![1, 2];
        assert_eq!(v[0], 1);
        assert_eq!(Some(3).unwrap(), 3);
    }
}
