//! Property-based tests for the engine layer: partitioning and placement invariants
//! hold for arbitrary graphs, machine counts and seeds, and the deterministic
//! randomness primitives behave like proper probabilities.

use frogwild_engine::rng;
use frogwild_engine::{
    GridPartitioner, ObliviousPartitioner, PartitionedGraph, Partitioner, RandomPartitioner,
    SyncPolicy,
};
use frogwild_graph::{DiGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a vertex count and a set of edges valid for it (kept modest so the
/// oblivious partitioner's O(E·M) loop stays fast under shrinking).
fn arb_graph_input() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        (Just(n), proptest::collection::vec(edge, 1..150))
    })
}

fn partitioners() -> Vec<(&'static str, Box<dyn Partitioner>)> {
    vec![
        ("random", Box::new(RandomPartitioner)),
        ("grid", Box::new(GridPartitioner)),
        ("oblivious", Box::new(ObliviousPartitioner)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_partitioner_covers_every_edge_exactly_once(
        (n, edges) in arb_graph_input(),
        machines in 1usize..12,
        seed in any::<u64>(),
    ) {
        let graph = DiGraph::from_edges(n, &edges);
        for (name, partitioner) in partitioners() {
            let assignment = partitioner.assign(&graph, machines, seed);
            prop_assert_eq!(assignment.machines.len(), graph.num_edges(), "{}", name);
            prop_assert!(assignment.machines.iter().all(|m| m.index() < machines), "{}", name);
            prop_assert_eq!(
                assignment.edges_per_machine().iter().sum::<usize>(),
                graph.num_edges(),
                "{}", name
            );
        }
    }

    #[test]
    fn partitioned_graph_layout_is_always_consistent(
        (n, edges) in arb_graph_input(),
        machines in 1usize..12,
        seed in any::<u64>(),
    ) {
        let graph = DiGraph::from_edges(n, &edges);
        for (name, partitioner) in partitioners() {
            let pg = PartitionedGraph::build(&graph, machines, partitioner.as_ref(), seed);
            prop_assert!(pg.validate().is_ok(), "{}: {:?}", name, pg.validate());
            let rf = pg.placement().replication_factor();
            prop_assert!(rf >= 1.0 - 1e-12, "{name}: rf {rf}");
            prop_assert!(rf <= machines as f64 + 1e-12, "{name}: rf {rf}");
            // Every vertex has exactly one master, and it is one of its replicas.
            for v in graph.vertices() {
                let master = pg.placement().master(v);
                prop_assert!(pg.placement().replicas(v).contains(&master));
                prop_assert!(pg.placement().replicas(v).windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn local_shard_edges_reconstruct_the_graph(
        (n, edges) in arb_graph_input(),
        machines in 1usize..8,
        seed in any::<u64>(),
    ) {
        let graph = DiGraph::from_edges(n, &edges);
        let pg = PartitionedGraph::build(&graph, machines, &ObliviousPartitioner, seed);
        let mut reconstructed: Vec<(VertexId, VertexId)> = Vec::new();
        for shard in pg.shards() {
            for local in 0..shard.num_local_vertices() as u32 {
                let src = shard.global_id(local);
                for &dst_local in shard.local_out_neighbors(local) {
                    reconstructed.push((src, shard.global_id(dst_local)));
                }
            }
        }
        reconstructed.sort_unstable();
        let mut expected = graph.edge_vec();
        expected.sort_unstable();
        prop_assert_eq!(reconstructed, expected);
    }

    #[test]
    fn coin_is_deterministic_and_respects_extremes(
        p in 0.0f64..=1.0,
        components in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let a = rng::coin(p, &components);
        let b = rng::coin(p, &components);
        prop_assert_eq!(a, b);
        if p == 0.0 { prop_assert!(!a); }
        if p == 1.0 { prop_assert!(a); }
    }

    #[test]
    fn pick_index_is_in_range_and_deterministic(
        n in 1usize..1000,
        components in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let a = rng::pick_index(n, &components);
        prop_assert!(a < n);
        prop_assert_eq!(a, rng::pick_index(n, &components));
    }

    #[test]
    fn sync_policy_probability_is_consistent(ps in 0.0f64..=1.0) {
        for policy in [SyncPolicy::Independent { ps }, SyncPolicy::AtLeastOneOutEdge { ps }] {
            prop_assert!((policy.probability() - ps).abs() < 1e-15);
            prop_assert!(policy.validate().is_ok());
        }
        prop_assert_eq!(SyncPolicy::frogwild(ps).probability(), if ps >= 1.0 { 1.0 } else { ps });
    }
}
