//! Vertex-cut partitioning: assigning every *edge* to a machine.
//!
//! PowerGraph-style engines split the graph by edges (a *vertex-cut*): each edge lives
//! on exactly one machine, and a vertex is replicated on every machine that owns at
//! least one of its edges. The quality metric is the **replication factor** — the
//! average number of replicas per vertex — because it determines how much master↔mirror
//! traffic every superstep generates (precisely the traffic the paper's `p_s` knob
//! attacks).
//!
//! Five ingress strategies are provided. The first three mirror the options PowerGraph
//! ships; the last two are the strongest published streaming heuristics and are used by
//! the partitioner-ablation benchmark:
//!
//! * [`RandomPartitioner`] — hash each edge to a machine. Simple, highest replication.
//! * [`GridPartitioner`] — constrain each vertex's replicas to a row+column of a
//!   machine grid, bounding the replication factor by `2√M`.
//! * [`ObliviousPartitioner`] — the greedy heuristic from the PowerGraph paper: place
//!   each edge on a machine that already hosts its endpoints when possible, breaking
//!   ties by load. Used by GraphLab's default ingress and therefore the default for the
//!   experiments here.
//! * [`HdrfPartitioner`] — High-Degree Replicated First (Petroni et al.): prefer
//!   splitting the hub endpoint of each edge, keeping the long tail of low-degree
//!   vertices whole.
//! * [`HybridPartitioner`] — PowerLyra-style hybrid cut: co-locate the in-edges of
//!   low-degree vertices, scatter only the hubs.

mod grid;
mod hdrf;
mod hybrid;
mod oblivious;
mod random;

pub use grid::GridPartitioner;
pub use hdrf::HdrfPartitioner;
pub use hybrid::HybridPartitioner;
pub use oblivious::ObliviousPartitioner;
pub use random::{expected_random_replication, RandomPartitioner};

use crate::cluster::MachineId;
use frogwild_graph::DiGraph;

/// Assignment of every edge (in `graph.edges()` iteration order) to a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeAssignment {
    /// `machines[i]` is the machine owning the `i`-th edge of `graph.edges()`.
    pub machines: Vec<MachineId>,
    /// Number of machines the assignment targets.
    pub num_machines: usize,
}

impl EdgeAssignment {
    /// Number of edges assigned to each machine.
    pub fn edges_per_machine(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_machines];
        for m in &self.machines {
            // lint:allow(indexing, machine indices are below num_machines by construction)
            counts[m.index()] += 1;
        }
        counts
    }

    /// The load-imbalance factor: max edges on a machine divided by the mean.
    /// 1.0 means perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let counts = self.edges_per_machine();
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.machines.len() as f64 / self.num_machines as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// A vertex-cut ingress strategy.
pub trait Partitioner {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Assigns every edge of `graph` to one of `num_machines` machines.
    ///
    /// Implementations must be deterministic functions of `(graph, num_machines, seed)`.
    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment;
}

/// The five ingress strategies as a plain value, for builders and CLI flags.
///
/// Each variant maps to the correspondingly named [`Partitioner`] with its default
/// parameters (`λ = 1.1` for HDRF, the default hub threshold for the hybrid cut). The
/// enum itself implements [`Partitioner`] by delegation, so it can be passed anywhere a
/// concrete strategy is expected — most notably
/// [`Session::builder(..).partitioner(..)`](https://docs.rs/frogwild) and the CLI's
/// `--partitioner` option.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// Hash every edge to a machine ([`RandomPartitioner`]).
    Random,
    /// Constrained 2D grid ingress ([`GridPartitioner`]).
    Grid,
    /// PowerGraph's greedy default ([`ObliviousPartitioner`]) — also the default here.
    #[default]
    Oblivious,
    /// High-Degree Replicated First ([`HdrfPartitioner`] with default `λ`).
    Hdrf,
    /// PowerLyra-style hybrid cut ([`HybridPartitioner`] with default threshold).
    Hybrid,
}

impl PartitionerKind {
    /// All five strategies, in ablation order.
    pub const ALL: [PartitionerKind; 5] = [
        PartitionerKind::Random,
        PartitionerKind::Grid,
        PartitionerKind::Oblivious,
        PartitionerKind::Hdrf,
        PartitionerKind::Hybrid,
    ];
}

impl Partitioner for PartitionerKind {
    fn name(&self) -> &'static str {
        match self {
            PartitionerKind::Random => RandomPartitioner.name(),
            PartitionerKind::Grid => GridPartitioner.name(),
            PartitionerKind::Oblivious => ObliviousPartitioner.name(),
            PartitionerKind::Hdrf => HdrfPartitioner::default().name(),
            PartitionerKind::Hybrid => HybridPartitioner::default().name(),
        }
    }

    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment {
        match self {
            PartitionerKind::Random => RandomPartitioner.assign(graph, num_machines, seed),
            PartitionerKind::Grid => GridPartitioner.assign(graph, num_machines, seed),
            PartitionerKind::Oblivious => ObliviousPartitioner.assign(graph, num_machines, seed),
            PartitionerKind::Hdrf => HdrfPartitioner::default().assign(graph, num_machines, seed),
            PartitionerKind::Hybrid => {
                HybridPartitioner::default().assign(graph, num_machines, seed)
            }
        }
    }
}

impl std::fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PartitionerKind {
    type Err = frogwild_graph::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" => Ok(PartitionerKind::Random),
            "grid" => Ok(PartitionerKind::Grid),
            "oblivious" => Ok(PartitionerKind::Oblivious),
            "hdrf" => Ok(PartitionerKind::Hdrf),
            "hybrid" => Ok(PartitionerKind::Hybrid),
            other => Err(frogwild_graph::Error::config(
                "PartitionerKind",
                format!("unknown partitioner {other:?} (expected random, grid, oblivious, hdrf or hybrid)"),
            )),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A mid-sized heavy-tailed test graph shared by the partitioner tests.
    pub fn test_graph() -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(42);
        rmat(800, RmatParams::default(), &mut rng)
    }

    /// Asserts the basic contract every partitioner must satisfy.
    pub fn check_partitioner_contract(p: &dyn Partitioner, machines: usize) {
        let g = test_graph();
        let a = p.assign(&g, machines, 7);
        assert_eq!(
            a.machines.len(),
            g.num_edges(),
            "{}: one machine per edge",
            p.name()
        );
        assert_eq!(a.num_machines, machines);
        assert!(
            a.machines.iter().all(|m| m.index() < machines),
            "{}: machine ids in range",
            p.name()
        );
        // determinism
        let b = p.assign(&g, machines, 7);
        assert_eq!(a, b, "{}: deterministic for fixed seed", p.name());
        // every machine gets at least one edge on this size of graph
        let counts = a.edges_per_machine();
        assert!(
            counts.iter().all(|&c| c > 0),
            "{}: no empty machines on a dense-enough graph (counts {counts:?})",
            p.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_assignment_stats() {
        let a = EdgeAssignment {
            machines: vec![MachineId(0), MachineId(0), MachineId(1), MachineId(1)],
            num_machines: 2,
        };
        assert_eq!(a.edges_per_machine(), vec![2, 2]);
        assert!((a.imbalance() - 1.0).abs() < 1e-12);

        let skewed = EdgeAssignment {
            machines: vec![MachineId(0), MachineId(0), MachineId(0), MachineId(1)],
            num_machines: 2,
        };
        assert_eq!(skewed.edges_per_machine(), vec![3, 1]);
        assert!((skewed.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn partitioner_kind_round_trips_and_delegates() {
        for kind in PartitionerKind::ALL {
            let parsed: PartitionerKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("nonsense".parse::<PartitionerKind>().is_err());
        assert_eq!(PartitionerKind::default(), PartitionerKind::Oblivious);

        let g = test_support::test_graph();
        let by_kind = PartitionerKind::Hdrf.assign(&g, 4, 7);
        let direct = HdrfPartitioner::default().assign(&g, 4, 7);
        assert_eq!(by_kind, direct);
    }

    #[test]
    fn empty_assignment_is_well_defined() {
        let a = EdgeAssignment {
            machines: vec![],
            num_machines: 3,
        };
        assert_eq!(a.edges_per_machine(), vec![0, 0, 0]);
        assert_eq!(a.imbalance(), 1.0);
    }
}
