//! HDRF — High-Degree (are) Replicated First streaming edge placement.
//!
//! HDRF (Petroni et al., CIKM 2015) is the best-known streaming vertex-cut heuristic for
//! power-law graphs: when an edge must split one of its endpoints across machines, it
//! prefers to split the endpoint with the *higher* (partial) degree, because high-degree
//! vertices will inevitably be replicated anyway, while low-degree vertices can often be
//! kept whole. On the heavy-tailed graphs the FrogWild paper targets this yields
//! noticeably lower replication factors than both random and plain greedy placement,
//! which directly lowers the mirror-synchronization traffic the `p_s` knob then reduces
//! further — the ablation benchmark quantifies how the two savings compose.

// lint:allow-file(indexing, per-machine score tables indexed by machine ids below num_machines)

use super::{EdgeAssignment, Partitioner};
use crate::cluster::MachineId;
use crate::rng;
use frogwild_graph::DiGraph;

/// The HDRF streaming partitioner.
///
/// For every streamed edge `(u, v)` and every machine `p`, HDRF scores
///
/// ```text
/// C(u, v, p) = C_rep(u, v, p) + λ · C_bal(p)
/// ```
///
/// where the replication term rewards machines that already host a replica of `u` or
/// `v`, weighted so that the *lower*-degree endpoint counts more (keeping it whole), and
/// the balance term rewards lightly loaded machines. The edge goes to the
/// highest-scoring machine; ties are broken by a seed-derived hash so the assignment is
/// a pure function of `(graph, num_machines, seed)`.
#[derive(Clone, Copy, Debug)]
pub struct HdrfPartitioner {
    /// Balance weight `λ`. The HDRF paper recommends values slightly above 1; larger
    /// values trade replication factor for better load balance.
    pub lambda: f64,
}

impl Default for HdrfPartitioner {
    fn default() -> Self {
        HdrfPartitioner { lambda: 1.1 }
    }
}

impl Partitioner for HdrfPartitioner {
    fn name(&self) -> &'static str {
        "hdrf"
    }

    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment {
        assert!(num_machines > 0, "need at least one machine");
        assert!(self.lambda >= 0.0, "lambda must be non-negative");
        let n = graph.num_vertices();
        let words = num_machines.div_ceil(64);
        // Replica bitsets, one u64-word group per vertex (same layout as the oblivious
        // partitioner; clusters here are small so `words` is almost always 1).
        let mut replicas = vec![0u64; n * words];
        // Partial degrees: how many streamed edges have touched each vertex so far. HDRF
        // is defined over these rather than the final degrees so it stays a one-pass
        // streaming algorithm.
        let mut partial_degree = vec![0u32; n];
        let mut load = vec![0usize; num_machines];

        let mut machines = Vec::with_capacity(graph.num_edges());
        for (idx, (u, v)) in graph.edges().enumerate() {
            let ui = u as usize;
            let vi = v as usize;
            partial_degree[ui] += 1;
            partial_degree[vi] += 1;
            let du = partial_degree[ui] as f64;
            let dv = partial_degree[vi] as f64;
            // Normalised degrees: θ(u) + θ(v) = 1.
            let theta_u = du / (du + dv);
            let theta_v = 1.0 - theta_u;

            let max_load = load.iter().copied().max().unwrap_or(0) as f64;
            let min_load = load.iter().copied().min().unwrap_or(0) as f64;
            let balance_denominator = 1.0 + max_load - min_load;
            let tie_seed = rng::mix(&[seed, idx as u64]);

            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            let mut best_tie = 0u64;
            for (p, &load_p) in load.iter().enumerate() {
                let word = p / 64;
                let bit = 1u64 << (p % 64);
                let hosts_u = replicas[ui * words + word] & bit != 0;
                let hosts_v = replicas[vi * words + word] & bit != 0;
                // g(u, p) = 1 + (1 - θ(u)) when p already hosts u: splitting the
                // low-degree endpoint is penalised more than splitting the hub.
                let rep_score = if hosts_u { 1.0 + (1.0 - theta_u) } else { 0.0 }
                    + if hosts_v { 1.0 + (1.0 - theta_v) } else { 0.0 };
                let bal_score = (max_load - load_p as f64) / balance_denominator;
                let score = rep_score + self.lambda * bal_score;
                let tie = rng::mix(&[tie_seed, p as u64]);
                if score > best_score || (score == best_score && tie < best_tie) {
                    best = p;
                    best_score = score;
                    best_tie = tie;
                }
            }

            load[best] += 1;
            let word = best / 64;
            let bit = 1u64 << (best % 64);
            replicas[ui * words + word] |= bit;
            replicas[vi * words + word] |= bit;
            machines.push(MachineId::from(best));
        }

        EdgeAssignment {
            machines,
            num_machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{check_partitioner_contract, test_graph};
    use super::super::RandomPartitioner;
    use super::*;
    use crate::placement::PartitionedGraph;

    #[test]
    fn satisfies_partitioner_contract() {
        check_partitioner_contract(&HdrfPartitioner::default(), 8);
        check_partitioner_contract(&HdrfPartitioner::default(), 24);
    }

    #[test]
    fn replication_is_lower_than_random() {
        let g = test_graph();
        let hdrf = PartitionedGraph::build(&g, 16, &HdrfPartitioner::default(), 3);
        let random = PartitionedGraph::build(&g, 16, &RandomPartitioner, 3);
        assert!(
            hdrf.placement().replication_factor() < random.placement().replication_factor(),
            "hdrf {} vs random {}",
            hdrf.placement().replication_factor(),
            random.placement().replication_factor()
        );
    }

    #[test]
    fn load_stays_balanced() {
        let g = test_graph();
        let a = HdrfPartitioner::default().assign(&g, 8, 3);
        assert!(a.imbalance() < 1.5, "imbalance {}", a.imbalance());
    }

    #[test]
    fn larger_lambda_improves_balance() {
        let g = test_graph();
        let relaxed = HdrfPartitioner { lambda: 0.1 }.assign(&g, 12, 3);
        let strict = HdrfPartitioner { lambda: 4.0 }.assign(&g, 12, 3);
        assert!(
            strict.imbalance() <= relaxed.imbalance() + 1e-9,
            "strict {} vs relaxed {}",
            strict.imbalance(),
            relaxed.imbalance()
        );
    }

    #[test]
    fn single_machine_case() {
        let g = test_graph();
        let a = HdrfPartitioner::default().assign(&g, 1, 3);
        assert!(a.machines.iter().all(|m| m.index() == 0));
    }

    #[test]
    fn many_machines_exercise_multiword_bitsets() {
        let g = test_graph();
        let a = HdrfPartitioner::default().assign(&g, 96, 3);
        assert_eq!(a.num_machines, 96);
        assert!(a.machines.iter().all(|m| m.index() < 96));
    }

    #[test]
    #[should_panic(expected = "lambda must be non-negative")]
    fn rejects_negative_lambda() {
        let g = test_graph();
        let _ = HdrfPartitioner { lambda: -1.0 }.assign(&g, 4, 1);
    }
}
