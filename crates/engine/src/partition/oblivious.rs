//! Greedy ("oblivious") edge placement — PowerGraph's default ingress heuristic.

// lint:allow-file(indexing, per-machine load tables indexed by machine ids below num_machines)

use super::{EdgeAssignment, Partitioner};
use crate::cluster::MachineId;
use crate::rng;
use frogwild_graph::DiGraph;

/// Greedy vertex-cut placement following the PowerGraph heuristic:
///
/// For each edge `(u, v)` in arrival order, with `A(u)`/`A(v)` the machine sets already
/// hosting a replica of `u`/`v`:
///
/// 1. if `A(u) ∩ A(v)` is non-empty, place the edge on the least-loaded machine of the
///    intersection;
/// 2. else if both sets are non-empty, place the edge on the least-loaded machine of
///    `A(u) ∪ A(v)`;
/// 3. else if exactly one set is non-empty, use its least-loaded machine;
/// 4. else place the edge on the globally least-loaded machine.
///
/// Ties are broken deterministically by a seed-derived hash so that the assignment is a
/// pure function of `(graph, num_machines, seed)`.
///
/// In addition a **load-balance cap** is enforced, as production ingress
/// implementations do: if the greedy choice is already carrying more than
/// `BALANCE_SLACK ×` the average load, the edge falls back to the globally
/// least-loaded machine instead. Without the cap the pure greedy rule degenerates on
/// graphs streamed in source order (all of a vertex's edges chase its first replica),
/// which would distort the replication/traffic trade-off the experiments measure.
///
/// This is the strategy GraphLab's default ingress uses and therefore the default for
/// every experiment in the workspace; it yields the lowest replication factor of the
/// three partitioners, which in turn sets the master↔mirror traffic that the paper's
/// `p_s` parameter reduces.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObliviousPartitioner;

/// Maximum tolerated ratio between the chosen machine's load and the average load
/// before the balance fallback kicks in.
const BALANCE_SLACK: f64 = 1.25;

impl Partitioner for ObliviousPartitioner {
    fn name(&self) -> &'static str {
        "oblivious"
    }

    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment {
        assert!(num_machines > 0, "need at least one machine");
        let n = graph.num_vertices();
        // Replica bitsets as u64 words; clusters in this workspace are ≤ 64 machines,
        // fall back to multiple words if ever needed.
        let words = num_machines.div_ceil(64);
        let mut replicas = vec![0u64; n * words];
        let mut load = vec![0usize; num_machines];

        let best_in =
            |mask_of: &dyn Fn(usize) -> u64, load: &[usize], tie_seed: u64| -> Option<usize> {
                let mut best: Option<usize> = None;
                for m in 0..num_machines {
                    let word = m / 64;
                    let bit = m % 64;
                    if mask_of(word) & (1u64 << bit) == 0 {
                        continue;
                    }
                    best = Some(match best {
                        None => m,
                        Some(b) => {
                            if load[m] < load[b]
                                || (load[m] == load[b]
                                    && rng::mix(&[tie_seed, m as u64])
                                        < rng::mix(&[tie_seed, b as u64]))
                            {
                                m
                            } else {
                                b
                            }
                        }
                    });
                }
                best
            };

        let mut machines = Vec::with_capacity(graph.num_edges());
        for (idx, (u, v)) in graph.edges().enumerate() {
            let ui = u as usize * words;
            let vi = v as usize * words;
            let tie_seed = rng::mix(&[seed, idx as u64]);

            let inter = |w: usize| replicas[ui + w] & replicas[vi + w];
            let union = |w: usize| replicas[ui + w] | replicas[vi + w];
            let u_only = |w: usize| replicas[ui + w];
            let v_only = |w: usize| replicas[vi + w];
            let all = |_w: usize| u64::MAX;

            let has_u = (0..words).any(|w| replicas[ui + w] != 0);
            let has_v = (0..words).any(|w| replicas[vi + w] != 0);
            let has_inter = (0..words).any(|w| replicas[ui + w] & replicas[vi + w] != 0);

            let mut chosen = if has_inter {
                best_in(&inter, &load, tie_seed)
            } else if has_u && has_v {
                best_in(&union, &load, tie_seed)
            } else if has_u {
                best_in(&u_only, &load, tie_seed)
            } else if has_v {
                best_in(&v_only, &load, tie_seed)
            } else {
                best_in(&all, &load, tie_seed)
            }
            // lint:allow(panic, the candidate set always contains every machine as a fallback)
            .expect("at least one machine is always available");

            // Balance cap: if the greedy pick is already overloaded relative to the
            // average, fall back to the globally least-loaded machine.
            let average = (idx as f64 + 1.0) / num_machines as f64;
            if load[chosen] as f64 > BALANCE_SLACK * average + 1.0 {
                // lint:allow(panic, a cluster has at least one machine by construction)
                chosen = best_in(&all, &load, tie_seed).expect("cluster is non-empty");
            }

            load[chosen] += 1;
            let word = chosen / 64;
            let bit = chosen % 64;
            replicas[ui + word] |= 1u64 << bit;
            replicas[vi + word] |= 1u64 << bit;
            machines.push(MachineId::from(chosen));
        }

        EdgeAssignment {
            machines,
            num_machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{check_partitioner_contract, test_graph};
    use super::super::RandomPartitioner;
    use super::*;
    use crate::placement::PartitionedGraph;

    #[test]
    fn satisfies_partitioner_contract() {
        check_partitioner_contract(&ObliviousPartitioner, 8);
        check_partitioner_contract(&ObliviousPartitioner, 24);
    }

    #[test]
    fn replication_is_lower_than_random() {
        let g = test_graph();
        let greedy = PartitionedGraph::build(&g, 16, &ObliviousPartitioner, 3);
        let random = PartitionedGraph::build(&g, 16, &RandomPartitioner, 3);
        assert!(
            greedy.placement().replication_factor() < random.placement().replication_factor(),
            "oblivious {} vs random {}",
            greedy.placement().replication_factor(),
            random.placement().replication_factor()
        );
    }

    #[test]
    fn load_stays_balanced() {
        let g = test_graph();
        let a = ObliviousPartitioner.assign(&g, 8, 3);
        assert!(a.imbalance() < 1.6, "imbalance {}", a.imbalance());
    }

    #[test]
    fn many_machines_still_work() {
        // more machines than 64-bit word boundary exercises the multi-word path
        let g = test_graph();
        let a = ObliviousPartitioner.assign(&g, 96, 3);
        assert_eq!(a.num_machines, 96);
        assert!(a.machines.iter().all(|m| m.index() < 96));
    }

    #[test]
    fn single_machine_case() {
        let g = test_graph();
        let a = ObliviousPartitioner.assign(&g, 1, 3);
        assert!(a.machines.iter().all(|m| m.index() == 0));
    }
}
