//! Random (hashed) edge placement.

use super::{EdgeAssignment, Partitioner};
use crate::cluster::MachineId;
use crate::rng;
use frogwild_graph::DiGraph;

/// Assigns each edge to a machine by hashing the edge endpoints with the seed.
///
/// This is PowerGraph's `random` ingress: embarrassingly parallel and perfectly
/// load-balanced in expectation, but with the highest replication factor of the
/// available strategies (a vertex of degree `d` is expected to appear on
/// `M(1 - (1 - 1/M)^d)` machines).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPartitioner;

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment {
        assert!(num_machines > 0, "need at least one machine");
        let machines = graph
            .edges()
            .enumerate()
            .map(|(idx, (src, dst))| {
                // Include the edge index so parallel (duplicate) edges can land on
                // different machines, matching how a real ingress streams edges.
                let h = rng::mix(&[seed, src as u64, dst as u64, idx as u64]);
                MachineId::from((h % num_machines as u64) as usize)
            })
            .collect();
        EdgeAssignment {
            machines,
            num_machines,
        }
    }
}

/// Expected replication factor for random edge placement on a graph with the given
/// degree sequence: `E[replicas(v)] = M (1 - (1 - 1/M)^{deg(v)})`, summed over vertices
/// and divided by `n`. Exposed so tests and reports can compare measured vs expected.
pub fn expected_random_replication(graph: &DiGraph, num_machines: usize) -> f64 {
    let m = num_machines as f64;
    let n = graph.num_vertices().max(1) as f64;
    let total: f64 = graph
        .vertices()
        .map(|v| {
            let deg = (graph.out_degree(v) + graph.in_degree(v)) as f64;
            if deg == 0.0 {
                // isolated vertices still get a master replica
                1.0
            } else {
                m * (1.0 - (1.0 - 1.0 / m).powf(deg))
            }
        })
        .sum();
    total / n
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{check_partitioner_contract, test_graph};
    use super::*;

    #[test]
    fn satisfies_partitioner_contract() {
        check_partitioner_contract(&RandomPartitioner, 8);
        check_partitioner_contract(&RandomPartitioner, 1);
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let g = test_graph();
        let a = RandomPartitioner.assign(&g, 8, 1);
        let b = RandomPartitioner.assign(&g, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let g = test_graph();
        let a = RandomPartitioner.assign(&g, 8, 3);
        assert!(a.imbalance() < 1.25, "imbalance {}", a.imbalance());
    }

    #[test]
    fn single_machine_gets_everything() {
        let g = test_graph();
        let a = RandomPartitioner.assign(&g, 1, 3);
        assert_eq!(a.edges_per_machine(), vec![g.num_edges()]);
    }

    #[test]
    fn expected_replication_bounds() {
        let g = test_graph();
        let expected = expected_random_replication(&g, 8);
        // between 1 (no replication) and the machine count
        assert!(expected > 1.0 && expected <= 8.0, "expected {expected}");
    }
}
