//! Grid-constrained (2D) edge placement.

use super::{EdgeAssignment, Partitioner};
use crate::cluster::MachineId;
use crate::rng;
use frogwild_graph::DiGraph;

/// Grid / constrained random vertex-cut.
///
/// Machines are arranged in an `rows × cols` grid. Every vertex is hashed to a grid
/// cell; its *constraint set* is the union of that cell's row and column. An edge is
/// placed on a machine in the intersection of its endpoints' constraint sets (which is
/// always non-empty and has at most two candidates for distinct cells), choosing the
/// less-loaded candidate. This bounds the replication factor of any vertex by
/// `rows + cols - 1 ≈ 2√M`, trading a small amount of balance for much less replication
/// than fully random placement.
#[derive(Clone, Copy, Debug, Default)]
pub struct GridPartitioner;

/// Chooses grid dimensions `rows × cols = machines` with `rows ≤ cols` and the two as
/// close as possible (falls back to `1 × machines` for primes).
fn grid_dims(machines: usize) -> (usize, usize) {
    let mut best = (1, machines);
    let mut r = 1usize;
    while r * r <= machines {
        if machines.is_multiple_of(r) {
            best = (r, machines / r);
        }
        r += 1;
    }
    best
}

impl Partitioner for GridPartitioner {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment {
        assert!(num_machines > 0, "need at least one machine");
        let (_rows, cols) = grid_dims(num_machines);
        let cell = |v: u64| -> (usize, usize) {
            let h = rng::mix(&[seed, 0xC0FFEE, v]);
            let idx = (h % num_machines as u64) as usize;
            (idx / cols, idx % cols)
        };
        let mut load = vec![0usize; num_machines];
        let machines = graph
            .edges()
            .map(|(src, dst)| {
                let (sr, sc) = cell(src as u64);
                let (dr, dc) = cell(dst as u64);
                // Candidates in the intersection of the two constraint sets: the grid
                // cells (sr, dc) and (dr, sc). For vertices in the same row or column
                // these coincide or fall inside both sets anyway.
                let cand_a = sr * cols + dc;
                let cand_b = dr * cols + sc;
                // lint:allow(indexing, grid candidates are machine ids below num_machines)
                let chosen = if load[cand_a] <= load[cand_b] {
                    cand_a
                } else {
                    cand_b
                };
                // lint:allow(indexing, grid candidates are machine ids below num_machines)
                load[chosen] += 1;
                MachineId::from(chosen.min(num_machines - 1))
            })
            .collect();
        EdgeAssignment {
            machines,
            num_machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{check_partitioner_contract, test_graph};
    use super::super::RandomPartitioner;
    use super::*;
    use crate::placement::PartitionedGraph;

    #[test]
    fn grid_dims_factorizations() {
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(24), (4, 6));
        assert_eq!(grid_dims(7), (1, 7));
        assert_eq!(grid_dims(1), (1, 1));
    }

    #[test]
    fn satisfies_partitioner_contract() {
        check_partitioner_contract(&GridPartitioner, 16);
        check_partitioner_contract(&GridPartitioner, 12);
    }

    #[test]
    fn replication_is_lower_than_random() {
        let g = test_graph();
        let grid = PartitionedGraph::build(&g, 16, &GridPartitioner, 9);
        let random = PartitionedGraph::build(&g, 16, &RandomPartitioner, 9);
        assert!(
            grid.placement().replication_factor() < random.placement().replication_factor(),
            "grid {} vs random {}",
            grid.placement().replication_factor(),
            random.placement().replication_factor()
        );
    }

    #[test]
    fn replication_respects_grid_bound() {
        let g = test_graph();
        let pg = PartitionedGraph::build(&g, 16, &GridPartitioner, 5);
        // every vertex's replica set must fit within a row + column: 4 + 4 - 1 = 7
        let max_replicas = g
            .vertices()
            .map(|v| pg.placement().replicas(v).len())
            .max()
            .unwrap();
        assert!(max_replicas <= 7, "max replicas {max_replicas}");
    }

    #[test]
    fn reasonably_balanced() {
        let g = test_graph();
        let a = GridPartitioner.assign(&g, 16, 11);
        assert!(a.imbalance() < 2.0, "imbalance {}", a.imbalance());
    }
}
