//! Hybrid vertex-cut (PowerLyra-style) edge placement.
//!
//! PowerLyra's observation is that vertex-cuts only pay off for *high*-degree vertices:
//! replicating a ten-follower account across sixteen machines buys no parallelism and
//! costs fifteen synchronization messages per superstep. The hybrid cut therefore treats
//! the two populations differently:
//!
//! * edges pointing at a **low in-degree** destination are placed by hashing the
//!   destination, so all of a low-degree vertex's in-edges (the edges PageRank gathers
//!   over) live on one machine and the vertex needs no mirrors for the gather phase;
//! * edges pointing at a **high in-degree** destination fall back to hashing the source,
//!   accepting replication for the hubs where it genuinely buys parallelism.
//!
//! On heavy-tailed graphs this cuts the replication factor of the long tail to ≈ 1 while
//! keeping hub edges spread out — the partitioner-ablation benchmark compares it against
//! random, oblivious and HDRF placement under both full and partial synchronization.

use super::{EdgeAssignment, Partitioner};
use crate::cluster::MachineId;
use crate::rng;
use frogwild_graph::DiGraph;

/// The hybrid-cut partitioner.
#[derive(Clone, Copy, Debug)]
pub struct HybridPartitioner {
    /// In-degree above which a destination vertex is treated as a hub and its in-edges
    /// are scattered by source hash. PowerLyra's default is 100; the synthetic graphs
    /// used here are smaller, so the default threshold is lower.
    pub degree_threshold: usize,
}

impl Default for HybridPartitioner {
    fn default() -> Self {
        HybridPartitioner {
            degree_threshold: 48,
        }
    }
}

impl Partitioner for HybridPartitioner {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn assign(&self, graph: &DiGraph, num_machines: usize, seed: u64) -> EdgeAssignment {
        assert!(num_machines > 0, "need at least one machine");
        let machines = graph
            .edges()
            .map(|(src, dst)| {
                let hub = graph.in_degree(dst) > self.degree_threshold;
                let h = if hub {
                    // High-degree destination: spread its in-edges by source.
                    rng::mix(&[seed, 0x48_55_42, src as u64])
                } else {
                    // Low-degree destination: co-locate all of its in-edges.
                    rng::mix(&[seed, 0x4C_4F_57, dst as u64])
                };
                MachineId::from((h % num_machines as u64) as usize)
            })
            .collect();
        EdgeAssignment {
            machines,
            num_machines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{check_partitioner_contract, test_graph};
    use super::super::RandomPartitioner;
    use super::*;
    use crate::placement::PartitionedGraph;

    #[test]
    fn satisfies_partitioner_contract() {
        check_partitioner_contract(&HybridPartitioner::default(), 8);
        check_partitioner_contract(&HybridPartitioner::default(), 24);
    }

    #[test]
    fn low_degree_vertices_keep_their_in_edges_together() {
        let g = test_graph();
        let p = HybridPartitioner::default();
        let a = p.assign(&g, 16, 7);
        // Collect, for every low-degree destination, the set of machines its in-edges
        // landed on; the hybrid rule forces that set to a single machine.
        let mut owner: Vec<Option<MachineId>> = vec![None; g.num_vertices()];
        for ((_, dst), &machine) in g.edges().zip(a.machines.iter()) {
            if g.in_degree(dst) > p.degree_threshold {
                continue;
            }
            match owner[dst as usize] {
                None => owner[dst as usize] = Some(machine),
                Some(prev) => assert_eq!(
                    prev, machine,
                    "low-degree vertex {dst} has in-edges on two machines"
                ),
            }
        }
    }

    #[test]
    fn replication_is_lower_than_random_on_power_law_graphs() {
        let g = test_graph();
        let hybrid = PartitionedGraph::build(&g, 16, &HybridPartitioner::default(), 3);
        let random = PartitionedGraph::build(&g, 16, &RandomPartitioner, 3);
        assert!(
            hybrid.placement().replication_factor() < random.placement().replication_factor(),
            "hybrid {} vs random {}",
            hybrid.placement().replication_factor(),
            random.placement().replication_factor()
        );
    }

    #[test]
    fn zero_threshold_degenerates_to_source_hashing() {
        let g = test_graph();
        let all_hubs = HybridPartitioner {
            degree_threshold: 0,
        }
        .assign(&g, 8, 5);
        // Every destination counts as a hub, so all edges of one source land together.
        let mut owner: Vec<Option<MachineId>> = vec![None; g.num_vertices()];
        for ((src, _), &machine) in g.edges().zip(all_hubs.machines.iter()) {
            match owner[src as usize] {
                None => owner[src as usize] = Some(machine),
                Some(prev) => assert_eq!(prev, machine),
            }
        }
    }

    #[test]
    fn huge_threshold_degenerates_to_destination_hashing() {
        let g = test_graph();
        let all_low = HybridPartitioner {
            degree_threshold: usize::MAX,
        }
        .assign(&g, 8, 5);
        let mut owner: Vec<Option<MachineId>> = vec![None; g.num_vertices()];
        for ((_, dst), &machine) in g.edges().zip(all_low.machines.iter()) {
            match owner[dst as usize] {
                None => owner[dst as usize] = Some(machine),
                Some(prev) => assert_eq!(prev, machine),
            }
        }
    }

    #[test]
    fn deterministic_in_seed_and_sensitive_to_it() {
        let g = test_graph();
        let p = HybridPartitioner::default();
        assert_eq!(p.assign(&g, 8, 1), p.assign(&g, 8, 1));
        assert_ne!(p.assign(&g, 8, 1), p.assign(&g, 8, 2));
    }

    #[test]
    fn single_machine_case() {
        let g = test_graph();
        let a = HybridPartitioner::default().assign(&g, 1, 3);
        assert!(a.machines.iter().all(|m| m.index() == 0));
    }
}
