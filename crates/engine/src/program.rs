//! The gather–apply–scatter (GAS) vertex-program abstraction.
//!
//! A [`VertexProgram`] describes what each vertex does during a superstep. The engine
//! drives it through the PowerGraph execution model:
//!
//! 1. **message delivery** — signals emitted by `scatter` in the previous superstep are
//!    combined per destination vertex and delivered to the destination's *master*;
//! 2. **gather** — for programs that request it, each machine computes a partial
//!    accumulation over its locally-owned edges of every active vertex and sends the
//!    partial result to the vertex's master;
//! 3. **apply** — the master updates the authoritative vertex state;
//! 4. **sync** — the new state is pushed to mirrors, each mirror included only with
//!    probability `p_s` (the paper's partial-synchronization knob);
//! 5. **scatter** — every *participating* replica (the master's machine plus the synced
//!    mirrors) runs `scatter_replica` over the out-edges it owns locally, emitting
//!    signals for the next superstep.
//!
//! The split of `scatter` into per-replica calls (rather than per-edge calls) is what
//! lets the FrogWild program reproduce the paper's implementation exactly: the master
//! divides its surviving frogs across the participating replicas, and each replica then
//! spreads its allotment over its local out-edges.

use frogwild_graph::VertexId;
use rand::rngs::SmallRng;

use crate::cluster::MachineId;

/// Which edges a phase of the program touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDirection {
    /// The phase is skipped entirely.
    None,
    /// The phase runs over in-edges.
    In,
    /// The phase runs over out-edges.
    Out,
}

/// Context available to [`VertexProgram::apply`], executed at the vertex's master.
pub struct ApplyContext<'a> {
    /// Current superstep index (0-based).
    pub superstep: usize,
    /// Total number of vertices in the graph.
    pub num_vertices: usize,
    /// Global out-degree of the vertex being applied.
    pub out_degree: u32,
    /// Deterministic per-(vertex, superstep) random number generator.
    pub rng: &'a mut SmallRng,
}

/// Context available to [`VertexProgram::scatter_replica`], executed on every
/// participating replica of an active vertex.
pub struct ScatterContext<'a> {
    /// Current superstep index (0-based).
    pub superstep: usize,
    /// Machine executing this scatter call.
    pub machine: MachineId,
    /// Rank of this replica among the participating replicas of the vertex this
    /// superstep (0-based, in ascending machine order).
    pub replica_rank: usize,
    /// Total number of replicas participating for this vertex this superstep
    /// (the master's machine plus every synchronized mirror).
    pub num_participating: usize,
    /// Global out-degree of the vertex (over the whole graph).
    pub global_out_degree: u32,
    /// Number of out-edges of the vertex owned by this machine.
    pub local_out_degree: usize,
    /// The synchronization probability currently in force (1.0 under full sync). The
    /// FrogWild binomial scatter uses it to keep the expected number of emitted frogs
    /// equal to the number of live frogs.
    pub sync_probability: f64,
    /// Deterministic per-(vertex, machine, superstep) random number generator.
    pub rng: &'a mut SmallRng,
}

/// A vertex program executed by the engine. See the module docs for the execution
/// model. All associated types must be cheap to clone; the engine clones states when
/// synchronizing mirrors (which is exactly the traffic it accounts for).
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state. Held authoritatively at the master, cached at mirrors.
    type State: Clone + Default + Send + Sync;
    /// Signal messages sent vertex-to-vertex by scatter.
    type Message: Clone + Send + Sync;
    /// Partial gather accumulator sent mirror-to-master.
    type Accum: Clone + Send + Sync;

    /// Combines two messages destined for the same vertex. Must be associative and
    /// commutative (the engine combines in machine order, which is deterministic but
    /// arbitrary).
    fn combine_messages(&self, a: Self::Message, b: Self::Message) -> Self::Message;

    /// Combines two partial gather accumulations.
    fn combine_accums(&self, a: Self::Accum, b: Self::Accum) -> Self::Accum;

    /// Which edges gather runs over ([`EdgeDirection::None`] disables the phase).
    fn gather_direction(&self) -> EdgeDirection {
        EdgeDirection::None
    }

    /// Gather over a single edge owned by the executing machine. For
    /// [`EdgeDirection::In`], `(src, dst)` is an in-edge of the active vertex `dst`;
    /// `src_state`/`dst_state` are the machine's cached replica states.
    /// `src_out_degree` is the *global* out-degree of `src` (PageRank divides by it).
    #[allow(unused_variables)]
    fn gather_edge(
        &self,
        src: VertexId,
        dst: VertexId,
        src_state: &Self::State,
        dst_state: &Self::State,
        src_out_degree: u32,
    ) -> Option<Self::Accum> {
        None
    }

    /// Updates the authoritative state at the master. `accum` is the combined gather
    /// result (if the gather phase ran and produced anything), `message` the combined
    /// incoming signal (if any).
    fn apply(
        &self,
        ctx: &mut ApplyContext<'_>,
        vertex: VertexId,
        state: &mut Self::State,
        accum: Option<Self::Accum>,
        message: Option<Self::Message>,
    );

    /// Whether the vertex should run scatter this superstep given its freshly applied
    /// state. Returning `false` skips synchronization and scatter entirely for this
    /// vertex (saving the associated network traffic). Use this for *structural*
    /// conditions ("no live walkers left"); for convergence gating, implement
    /// [`VertexProgram::delta`] and let the executor compare it against its tolerance.
    #[allow(unused_variables)]
    fn needs_scatter(&self, vertex: VertexId, state: &Self::State) -> bool {
        true
    }

    /// How much the vertex state changed during the last apply, as a non-negative
    /// magnitude the executor compares against its configured `tolerance`: a vertex
    /// whose delta is `<= tolerance` skips synchronization and scatter this superstep
    /// and drops out of the frontier (the delta-gating idiom of production PageRank
    /// implementations).
    ///
    /// The default returns `f64::INFINITY`, which is never `<=` any finite tolerance,
    /// so programs that do not opt in are never gated and behave exactly as before.
    #[allow(unused_variables)]
    fn delta(&self, old: &Self::State, new: &Self::State) -> f64 {
        f64::INFINITY
    }

    /// Scatter executed once per participating replica of an active vertex.
    /// `local_out_neighbors` lists the global ids of the out-neighbors reachable
    /// through edges owned by the executing machine; `emit(dst, msg)` queues a signal
    /// for `dst` (delivered to its master at the start of the next superstep).
    fn scatter_replica(
        &self,
        ctx: &mut ScatterContext<'_>,
        vertex: VertexId,
        state: &Self::State,
        local_out_neighbors: &[VertexId],
        emit: &mut dyn FnMut(VertexId, Self::Message),
    );

    /// Size in bytes of one serialized vertex state, used for network accounting of the
    /// master→mirror synchronization. Defaults to the in-memory size.
    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self::State>()
    }

    /// Size in bytes of one serialized signal message.
    fn message_bytes(&self) -> usize {
        std::mem::size_of::<Self::Message>()
    }

    /// Size in bytes of one serialized gather accumulator.
    fn accum_bytes(&self) -> usize {
        std::mem::size_of::<Self::Accum>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal program used to check the trait's default implementations.
    struct Noop;

    impl VertexProgram for Noop {
        type State = u32;
        type Message = u64;
        type Accum = f64;

        fn combine_messages(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn combine_accums(&self, a: f64, b: f64) -> f64 {
            a + b
        }
        fn apply(
            &self,
            _ctx: &mut ApplyContext<'_>,
            _vertex: VertexId,
            state: &mut u32,
            _accum: Option<f64>,
            message: Option<u64>,
        ) {
            *state += message.unwrap_or(0) as u32;
        }
        fn scatter_replica(
            &self,
            _ctx: &mut ScatterContext<'_>,
            _vertex: VertexId,
            _state: &u32,
            local_out_neighbors: &[VertexId],
            emit: &mut dyn FnMut(VertexId, u64),
        ) {
            for &dst in local_out_neighbors {
                emit(dst, 1);
            }
        }
    }

    #[test]
    fn default_sizes_match_types() {
        let p = Noop;
        assert_eq!(p.state_bytes(), 4);
        assert_eq!(p.message_bytes(), 8);
        assert_eq!(p.accum_bytes(), 8);
    }

    #[test]
    fn default_gather_is_disabled() {
        let p = Noop;
        assert_eq!(p.gather_direction(), EdgeDirection::None);
        assert!(p.gather_edge(0, 1, &0, &0, 3).is_none());
        assert!(p.needs_scatter(0, &0));
    }

    #[test]
    fn default_delta_is_infinite_so_gating_never_triggers() {
        let p = Noop;
        let d = p.delta(&0, &7);
        assert_eq!(d, f64::INFINITY);
        // Never `<=` any finite tolerance, however large.
        assert!(d > 1e300);
    }
}
