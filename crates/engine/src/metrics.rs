//! Cost accounting: network traffic, per-machine work, and a simulated cluster-time
//! model.
//!
//! The paper's Figure 1 reports four panels per configuration — time per iteration,
//! total time, network bytes sent, and CPU time. Wall-clock on the real 24-node EC2
//! cluster cannot be reproduced on a single host, so the engine accounts the underlying
//! quantities exactly (bytes crossing machine boundaries, per-machine work operations)
//! and converts them to time through an explicit, documented [`CostModel`]. The *shape*
//! of the paper's results (orderings, ratios, scaling trends) depends only on these
//! counts, not on the absolute constants.

use serde::{Deserialize, Serialize};

/// Network traffic counters.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Total bytes sent across machine boundaries.
    pub bytes_sent: u64,
    /// Total number of point-to-point messages sent across machine boundaries
    /// (after per-machine combining).
    pub messages_sent: u64,
    /// Bytes sent by each machine.
    pub bytes_per_machine: Vec<u64>,
}

impl NetworkStats {
    /// Creates counters for a cluster of `num_machines`.
    pub fn new(num_machines: usize) -> Self {
        NetworkStats {
            bytes_sent: 0,
            messages_sent: 0,
            bytes_per_machine: vec![0; num_machines],
        }
    }

    /// Records `bytes` sent by `from_machine` to a different machine. Counters
    /// saturate: a long-lived accumulation pins at the ceiling, never wraps.
    pub fn record(&mut self, from_machine: usize, bytes: u64) {
        debug_assert!(from_machine < self.bytes_per_machine.len());
        self.bytes_sent = self.bytes_sent.saturating_add(bytes);
        self.messages_sent = self.messages_sent.saturating_add(1);
        if let Some(per) = self.bytes_per_machine.get_mut(from_machine) {
            *per = per.saturating_add(bytes);
        }
    }

    /// Merges another counter into this one (used when aggregating per-superstep stats).
    pub fn merge(&mut self, other: &NetworkStats) {
        self.bytes_sent = self.bytes_sent.saturating_add(other.bytes_sent);
        self.messages_sent = self.messages_sent.saturating_add(other.messages_sent);
        if self.bytes_per_machine.len() < other.bytes_per_machine.len() {
            self.bytes_per_machine
                .resize(other.bytes_per_machine.len(), 0);
        }
        for (a, b) in self
            .bytes_per_machine
            .iter_mut()
            .zip(&other.bytes_per_machine)
        {
            *a = a.saturating_add(*b);
        }
    }

    /// The largest per-machine byte count — the bottleneck link in a superstep.
    pub fn max_machine_bytes(&self) -> u64 {
        self.bytes_per_machine.iter().copied().max().unwrap_or(0)
    }
}

/// Per-machine computational work counters ("CPU usage" in the paper's terminology).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkStats {
    /// Edge gather operations executed.
    pub gather_ops: u64,
    /// Vertex apply operations executed.
    pub apply_ops: u64,
    /// Edge scatter operations executed (per emitted or considered out-edge).
    pub scatter_ops: u64,
    /// Mirror synchronizations performed (state copies pushed over the network).
    pub sync_ops: u64,
    /// Mirror synchronizations *skipped* because of partial synchronization.
    pub skipped_syncs: u64,
    /// Active vertices that scheduled no scatter this superstep, either because the
    /// program's `needs_scatter` declined structurally or because the vertex's delta
    /// fell at or below the executor's tolerance (delta gating).
    pub skipped_scatters: u64,
    /// Work operations per machine (gather + apply + scatter attributed to the machine
    /// that executed them).
    pub ops_per_machine: Vec<u64>,
}

impl WorkStats {
    /// Creates counters for a cluster of `num_machines`.
    pub fn new(num_machines: usize) -> Self {
        WorkStats {
            ops_per_machine: vec![0; num_machines],
            ..WorkStats::default()
        }
    }

    /// Total work operations across all machines. Saturating: three pinned
    /// counters must not wrap back past zero when summed.
    pub fn total_ops(&self) -> u64 {
        self.gather_ops
            .saturating_add(self.apply_ops)
            .saturating_add(self.scatter_ops)
    }

    /// The busiest machine's operation count — the compute critical path of a superstep.
    pub fn max_machine_ops(&self) -> u64 {
        self.ops_per_machine.iter().copied().max().unwrap_or(0)
    }

    /// Merges another counter into this one. Saturating, like
    /// [`NetworkStats::merge`].
    pub fn merge(&mut self, other: &WorkStats) {
        self.gather_ops = self.gather_ops.saturating_add(other.gather_ops);
        self.apply_ops = self.apply_ops.saturating_add(other.apply_ops);
        self.scatter_ops = self.scatter_ops.saturating_add(other.scatter_ops);
        self.sync_ops = self.sync_ops.saturating_add(other.sync_ops);
        self.skipped_syncs = self.skipped_syncs.saturating_add(other.skipped_syncs);
        self.skipped_scatters = self.skipped_scatters.saturating_add(other.skipped_scatters);
        if self.ops_per_machine.len() < other.ops_per_machine.len() {
            self.ops_per_machine.resize(other.ops_per_machine.len(), 0);
        }
        for (a, b) in self.ops_per_machine.iter_mut().zip(&other.ops_per_machine) {
            *a = a.saturating_add(*b);
        }
    }
}

/// Converts counted work and traffic into simulated seconds.
///
/// Default constants are calibrated to commodity hardware of the paper's era
/// (m3.xlarge-class machines on 1 GbE): ~10 ns per edge/vertex operation, 1 Gbit/s
/// usable per-machine bandwidth, 1 ms per-superstep barrier/latency overhead. The
/// absolute values only shift every series by a constant factor; comparisons between
/// algorithms use the same model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds of CPU time per work operation (gather/apply/scatter op).
    pub seconds_per_op: f64,
    /// Usable network bandwidth per machine, bytes per second.
    pub bytes_per_second: f64,
    /// Fixed per-superstep overhead (barrier, scheduling), seconds.
    pub superstep_overhead: f64,
    /// Per-message fixed overhead in bytes (headers, vertex ids, routing).
    pub message_header_bytes: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seconds_per_op: 10e-9,
            bytes_per_second: 125_000_000.0, // 1 Gbit/s
            superstep_overhead: 1e-3,
            message_header_bytes: 12,
        }
    }
}

impl CostModel {
    /// Simulated wall-clock seconds for one superstep: the busiest machine's compute
    /// time plus the bottleneck link's transfer time plus the barrier overhead.
    /// (Compute and communication are *not* overlapped, matching the synchronous
    /// engine the paper modifies.)
    pub fn superstep_seconds(&self, work: &WorkStats, net: &NetworkStats) -> f64 {
        let compute = work.max_machine_ops() as f64 * self.seconds_per_op;
        let transfer = net.max_machine_bytes() as f64 / self.bytes_per_second;
        compute + transfer + self.superstep_overhead
    }

    /// Simulated aggregate CPU seconds (summed over machines, like the paper's
    /// "CPU usage" panel which can exceed wall-clock time).
    pub fn cpu_seconds(&self, work: &WorkStats) -> f64 {
        work.total_ops() as f64 * self.seconds_per_op
    }

    /// Simulated seconds a **single machine** spends on one superstep: its own
    /// operations, its own outbound traffic, and the per-superstep scheduling
    /// overhead. This is the per-machine term the bounded-staleness executor
    /// pipelines (each machine advances on its own clock, gated only by the
    /// staleness watermark); the synchronous model instead takes the
    /// component-wise maxima across machines — see
    /// [`CostModel::superstep_seconds`].
    pub fn machine_superstep_seconds(&self, ops: u64, bytes: u64) -> f64 {
        ops as f64 * self.seconds_per_op
            + bytes as f64 / self.bytes_per_second
            + self.superstep_overhead
    }

    /// Simulated wall-clock seconds for one superstep on a **heterogeneous** cluster:
    /// machine `m` executes its operations `speed_factors[m]` times slower than the
    /// baseline (1.0 = nominal speed, 2.0 = half as fast). The synchronous barrier means
    /// the slowest machine sets the pace, so a single straggler inflates every
    /// superstep — the straggler-sensitivity ablation quantifies how much of that
    /// inflation each algorithm feels.
    ///
    /// Missing entries (machines beyond `speed_factors.len()`) run at nominal speed.
    ///
    /// # Panics
    ///
    /// Panics if any provided speed factor is not strictly positive.
    pub fn superstep_seconds_hetero(
        &self,
        work: &WorkStats,
        net: &NetworkStats,
        speed_factors: &[f64],
    ) -> f64 {
        assert!(
            speed_factors.iter().all(|&s| s > 0.0),
            "speed factors must be strictly positive"
        );
        let factor = |m: usize| speed_factors.get(m).copied().unwrap_or(1.0);
        let compute = work
            .ops_per_machine
            .iter()
            .enumerate()
            .map(|(m, &ops)| ops as f64 * self.seconds_per_op * factor(m))
            .fold(0.0f64, f64::max);
        let transfer = net
            .bytes_per_machine
            .iter()
            .enumerate()
            .map(|(m, &bytes)| bytes as f64 / self.bytes_per_second * factor(m))
            .fold(0.0f64, f64::max);
        compute + transfer + self.superstep_overhead
    }
}

/// Metrics for a single superstep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SuperstepMetrics {
    /// Superstep index (0-based).
    pub superstep: usize,
    /// Number of active vertices at the start of the superstep (the frontier size).
    pub active_vertices: usize,
    /// Messages delivered to master inboxes at the end of the superstep, after
    /// per-machine combining — local deliveries included, unlike
    /// [`NetworkStats::messages_sent`] which counts only cross-machine traffic.
    pub routed_messages: u64,
    /// Network counters for the superstep.
    pub network: NetworkStats,
    /// Work counters for the superstep.
    pub work: WorkStats,
    /// Simulated wall-clock seconds for the superstep.
    pub simulated_seconds: f64,
    /// Real (host) seconds the simulator spent executing the superstep.
    pub host_seconds: f64,
    /// Messages sitting in the bounded-staleness staging inbox at the end of this
    /// superstep whose delivery is deferred *past* the next superstep's drain point.
    /// Always 0 under synchronous execution (`staleness = 0`), where every message
    /// becomes visible exactly one superstep after it was produced.
    pub inbox_depth: u64,
    /// Summed delivery lag, in supersteps, of the messages drained at the start of
    /// this superstep — how late each arrived relative to synchronous delivery.
    /// Always 0 under synchronous execution.
    pub staleness_lag: u64,
    /// Simulated barrier-wait seconds this superstep avoided relative to the
    /// synchronous cost model: the difference between the barriered superstep time
    /// and the pipelined watermark advance. Always 0 under synchronous execution.
    pub barrier_wait_avoided_seconds: f64,
}

/// Aggregated metrics for a full run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-superstep metrics in execution order.
    pub supersteps: Vec<SuperstepMetrics>,
    /// Replication factor of the partitioning used.
    pub replication_factor: f64,
    /// Number of machines in the simulated cluster.
    pub num_machines: usize,
    /// Per-machine finish times on the pipelined watermark clock (simulated
    /// seconds), indexed by machine — the run's straggler profile. Empty for
    /// synchronous runs (`staleness = 0`), where every machine finishes each
    /// superstep together at the barrier.
    pub machine_finish_seconds: Vec<f64>,
}

impl RunMetrics {
    /// Total bytes sent over the whole run.
    pub fn total_bytes(&self) -> u64 {
        self.supersteps.iter().map(|s| s.network.bytes_sent).sum()
    }

    /// Total messages sent over the whole run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.network.messages_sent)
            .sum()
    }

    /// Total work operations over the whole run.
    pub fn total_ops(&self) -> u64 {
        self.supersteps.iter().map(|s| s.work.total_ops()).sum()
    }

    /// Total simulated wall-clock seconds.
    pub fn total_simulated_seconds(&self) -> f64 {
        self.supersteps.iter().map(|s| s.simulated_seconds).sum()
    }

    /// Total simulated CPU seconds under `model`.
    pub fn total_cpu_seconds(&self, model: &CostModel) -> f64 {
        self.supersteps
            .iter()
            .map(|s| model.cpu_seconds(&s.work))
            .sum()
    }

    /// Total real (host) seconds spent executing.
    pub fn total_host_seconds(&self) -> f64 {
        self.supersteps.iter().map(|s| s.host_seconds).sum()
    }

    /// Mean simulated seconds per superstep ("time per iteration" in Figure 1a).
    pub fn seconds_per_superstep(&self) -> f64 {
        if self.supersteps.is_empty() {
            0.0
        } else {
            self.total_simulated_seconds() / self.supersteps.len() as f64
        }
    }

    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total mirror synchronizations skipped thanks to partial synchronization.
    pub fn total_skipped_syncs(&self) -> u64 {
        self.supersteps.iter().map(|s| s.work.skipped_syncs).sum()
    }

    /// Total mirror synchronizations performed.
    pub fn total_syncs(&self) -> u64 {
        self.supersteps.iter().map(|s| s.work.sync_ops).sum()
    }

    /// Total scatter operations over the whole run.
    pub fn total_scatter_ops(&self) -> u64 {
        self.supersteps.iter().map(|s| s.work.scatter_ops).sum()
    }

    /// Total scatters skipped (structural `needs_scatter` plus delta gating).
    pub fn total_skipped_scatters(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.work.skipped_scatters)
            .sum()
    }

    /// Total messages routed to master inboxes, local deliveries included.
    pub fn total_routed_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.routed_messages).sum()
    }

    /// Sum of per-superstep frontier sizes (active vertices processed over the run).
    pub fn total_active_vertices(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.active_vertices as u64)
            .sum()
    }

    /// Total delivery lag (supersteps late versus synchronous delivery) accumulated
    /// by all drained messages over the run. 0 for synchronous runs.
    pub fn total_staleness_lag(&self) -> u64 {
        self.supersteps.iter().map(|s| s.staleness_lag).sum()
    }

    /// Deepest staging-inbox backlog observed at the end of any superstep. 0 for
    /// synchronous runs.
    pub fn max_inbox_depth(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.inbox_depth)
            .max()
            .unwrap_or(0)
    }

    /// Total simulated barrier-wait seconds avoided by bounded-staleness overlap
    /// over the run. 0 for synchronous runs.
    pub fn total_barrier_wait_avoided_seconds(&self) -> f64 {
        self.supersteps
            .iter()
            .map(|s| s.barrier_wait_avoided_seconds)
            .sum()
    }

    /// Re-prices the whole run on a heterogeneous cluster where machine `m` runs
    /// `speed_factors[m]` times slower than nominal (see
    /// [`CostModel::superstep_seconds_hetero`]). Because the per-superstep counters are
    /// retained, the same run can be re-evaluated under any straggler scenario without
    /// re-executing the engine.
    pub fn total_simulated_seconds_hetero(&self, model: &CostModel, speed_factors: &[f64]) -> f64 {
        self.supersteps
            .iter()
            .map(|s| model.superstep_seconds_hetero(&s.work, &s.network, speed_factors))
            .sum()
    }

    /// Ratio between the busiest and the average machine's total work over the run —
    /// 1.0 means perfectly balanced compute.
    pub fn work_imbalance(&self) -> f64 {
        if self.num_machines == 0 {
            return 1.0;
        }
        let mut per_machine = vec![0u64; self.num_machines];
        for step in &self.supersteps {
            for (acc, &ops) in per_machine.iter_mut().zip(&step.work.ops_per_machine) {
                *acc = acc.saturating_add(ops);
            }
        }
        let max = per_machine.iter().copied().max().unwrap_or(0) as f64;
        let total: u64 = per_machine.iter().sum();
        let mean = total as f64 / self.num_machines as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_record_and_merge() {
        let mut a = NetworkStats::new(2);
        a.record(0, 100);
        a.record(1, 50);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.bytes_per_machine, vec![100, 50]);
        assert_eq!(a.max_machine_bytes(), 100);

        let mut b = NetworkStats::new(2);
        b.record(1, 25);
        a.merge(&b);
        assert_eq!(a.bytes_sent, 175);
        assert_eq!(a.bytes_per_machine, vec![100, 75]);
    }

    #[test]
    fn work_totals_and_merge() {
        let mut w = WorkStats::new(2);
        w.gather_ops = 10;
        w.apply_ops = 5;
        w.scatter_ops = 20;
        w.ops_per_machine = vec![30, 5];
        assert_eq!(w.total_ops(), 35);
        assert_eq!(w.max_machine_ops(), 30);

        let mut other = WorkStats::new(2);
        other.scatter_ops = 7;
        other.skipped_syncs = 3;
        other.skipped_scatters = 4;
        other.ops_per_machine = vec![0, 7];
        w.merge(&other);
        assert_eq!(w.scatter_ops, 27);
        assert_eq!(w.skipped_syncs, 3);
        assert_eq!(w.skipped_scatters, 4);
        assert_eq!(w.ops_per_machine, vec![30, 12]);
    }

    #[test]
    fn counters_saturate_near_u64_max() {
        // A long-lived serving session must degrade to pinned counters, never
        // wrap (or panic in debug builds) mid-stream.
        let mut net = NetworkStats::new(1);
        net.bytes_sent = u64::MAX - 10;
        net.bytes_per_machine[0] = u64::MAX - 10;
        net.record(0, 100);
        assert_eq!(net.bytes_sent, u64::MAX);
        assert_eq!(net.bytes_per_machine[0], u64::MAX);
        let mut other = NetworkStats::new(1);
        other.bytes_sent = u64::MAX;
        other.messages_sent = u64::MAX;
        other.bytes_per_machine[0] = 7;
        net.merge(&other);
        assert_eq!(net.bytes_sent, u64::MAX);
        assert_eq!(net.messages_sent, u64::MAX);
        assert_eq!(net.bytes_per_machine[0], u64::MAX);

        let mut w = WorkStats::new(1);
        w.gather_ops = u64::MAX - 1;
        w.scatter_ops = u64::MAX;
        w.ops_per_machine[0] = u64::MAX - 2;
        let mut o = WorkStats::new(1);
        o.gather_ops = 5;
        o.apply_ops = 3;
        o.ops_per_machine = vec![100];
        w.merge(&o);
        assert_eq!(w.gather_ops, u64::MAX);
        assert_eq!(w.ops_per_machine[0], u64::MAX);
        // The pinned per-kind counters must not wrap when totalled either.
        assert_eq!(w.total_ops(), u64::MAX);

        let mut run = RunMetrics {
            num_machines: 1,
            ..RunMetrics::default()
        };
        run.supersteps.push(SuperstepMetrics {
            work: w.clone(),
            ..SuperstepMetrics::default()
        });
        run.supersteps.push(SuperstepMetrics {
            work: w,
            ..SuperstepMetrics::default()
        });
        assert!((run.work_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_model_superstep_time_components() {
        let model = CostModel::default();
        let mut work = WorkStats::new(1);
        work.ops_per_machine = vec![1_000_000];
        work.apply_ops = 1_000_000;
        let mut net = NetworkStats::new(1);
        net.bytes_per_machine = vec![125_000_000];
        net.bytes_sent = 125_000_000;
        let t = model.superstep_seconds(&work, &net);
        // 1e6 ops * 10ns = 0.01s; 125MB at 1Gbit/s = 1s; +1ms overhead
        assert!((t - (0.01 + 1.0 + 0.001)).abs() < 1e-9, "t = {t}");
        assert!((model.cpu_seconds(&work) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn run_metrics_aggregation() {
        let model = CostModel::default();
        let mut run = RunMetrics {
            num_machines: 2,
            replication_factor: 1.5,
            ..RunMetrics::default()
        };
        for i in 0..3 {
            let mut net = NetworkStats::new(2);
            net.record(0, 1000);
            let mut work = WorkStats::new(2);
            work.apply_ops = 10;
            work.scatter_ops = 7;
            work.sync_ops = 4;
            work.skipped_syncs = 6;
            work.skipped_scatters = 2;
            work.ops_per_machine = vec![10, 0];
            let simulated = model.superstep_seconds(&work, &net);
            run.supersteps.push(SuperstepMetrics {
                superstep: i,
                active_vertices: 10,
                routed_messages: 5,
                network: net,
                work,
                simulated_seconds: simulated,
                inbox_depth: 3 + i as u64,
                staleness_lag: 2,
                barrier_wait_avoided_seconds: 0.5,
                ..SuperstepMetrics::default()
            });
        }
        assert_eq!(run.total_bytes(), 3000);
        assert_eq!(run.total_messages(), 3);
        assert_eq!(run.total_ops(), 51);
        assert_eq!(run.num_supersteps(), 3);
        assert_eq!(run.total_syncs(), 12);
        assert_eq!(run.total_skipped_syncs(), 18);
        assert_eq!(run.total_scatter_ops(), 21);
        assert_eq!(run.total_skipped_scatters(), 6);
        assert_eq!(run.total_routed_messages(), 15);
        assert_eq!(run.total_active_vertices(), 30);
        assert_eq!(run.total_staleness_lag(), 6);
        assert_eq!(run.max_inbox_depth(), 5);
        assert!((run.total_barrier_wait_avoided_seconds() - 1.5).abs() < 1e-12);
        assert!(run.total_simulated_seconds() > 0.0);
        assert!(run.seconds_per_superstep() > 0.0);
        assert!(run.total_cpu_seconds(&model) > 0.0);
    }

    #[test]
    fn empty_run_metrics() {
        let run = RunMetrics::default();
        assert_eq!(run.total_bytes(), 0);
        assert_eq!(run.seconds_per_superstep(), 0.0);
        assert_eq!(run.work_imbalance(), 1.0);
        assert_eq!(run.total_staleness_lag(), 0);
        assert_eq!(run.max_inbox_depth(), 0);
        assert_eq!(run.total_barrier_wait_avoided_seconds(), 0.0);
    }

    #[test]
    fn per_machine_superstep_seconds_never_exceed_the_barriered_maxima() {
        let model = CostModel::default();
        // One machine is compute-heavy, the other network-heavy: the synchronous
        // model charges max(ops) + max(bytes), the per-machine term charges each
        // machine its own combined cost, so every machine's clock advances by no
        // more than the barriered superstep time.
        let mut work = WorkStats::new(2);
        work.ops_per_machine = vec![1_000_000, 10_000];
        work.apply_ops = 1_010_000;
        let mut net = NetworkStats::new(2);
        net.bytes_per_machine = vec![1_000, 125_000_000];
        net.bytes_sent = 125_001_000;
        let sync = model.superstep_seconds(&work, &net);
        for m in 0..2 {
            let own =
                model.machine_superstep_seconds(work.ops_per_machine[m], net.bytes_per_machine[m]);
            assert!(own <= sync, "machine {m}: {own} > {sync}");
        }
        // And the components reconcile: 1e6 ops * 10ns + 1kB at 1Gbit/s + 1ms.
        let m0 = model.machine_superstep_seconds(1_000_000, 1_000);
        assert!((m0 - (0.01 + 1_000.0 / 125_000_000.0 + 0.001)).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_superstep_time_is_set_by_the_straggler() {
        let model = CostModel::default();
        let mut work = WorkStats::new(2);
        work.ops_per_machine = vec![1_000_000, 1_000_000];
        work.apply_ops = 2_000_000;
        let net = NetworkStats::new(2);

        let uniform = model.superstep_seconds_hetero(&work, &net, &[1.0, 1.0]);
        let homogeneous = model.superstep_seconds(&work, &net);
        assert!((uniform - homogeneous).abs() < 1e-12);

        // Slowing down one machine by 4x inflates the barrier-to-barrier time by ~4x
        // of the compute component, even though half the work is unaffected.
        let straggler = model.superstep_seconds_hetero(&work, &net, &[1.0, 4.0]);
        let expected = 1_000_000.0 * model.seconds_per_op * 4.0 + model.superstep_overhead;
        assert!(
            (straggler - expected).abs() < 1e-12,
            "straggler {straggler}"
        );
        // Missing entries default to nominal speed.
        let partial = model.superstep_seconds_hetero(&work, &net, &[2.0]);
        assert!(partial > uniform && partial < straggler);
    }

    #[test]
    #[should_panic(expected = "speed factors must be strictly positive")]
    fn heterogeneous_model_rejects_zero_speed() {
        let model = CostModel::default();
        let work = WorkStats::new(1);
        let net = NetworkStats::new(1);
        let _ = model.superstep_seconds_hetero(&work, &net, &[0.0]);
    }

    #[test]
    fn run_metrics_hetero_and_imbalance() {
        let model = CostModel::default();
        let mut run = RunMetrics {
            num_machines: 2,
            replication_factor: 1.0,
            ..RunMetrics::default()
        };
        let mut work = WorkStats::new(2);
        work.apply_ops = 300;
        work.ops_per_machine = vec![200, 100];
        let net = NetworkStats::new(2);
        let simulated = model.superstep_seconds(&work, &net);
        run.supersteps.push(SuperstepMetrics {
            superstep: 0,
            active_vertices: 10,
            routed_messages: 0,
            network: net,
            work,
            simulated_seconds: simulated,
            ..SuperstepMetrics::default()
        });

        // max = 200, mean = 150
        assert!((run.work_imbalance() - 200.0 / 150.0).abs() < 1e-12);
        let nominal = run.total_simulated_seconds_hetero(&model, &[1.0, 1.0]);
        assert!((nominal - run.total_simulated_seconds()).abs() < 1e-12);
        let slowed = run.total_simulated_seconds_hetero(&model, &[10.0, 1.0]);
        assert!(slowed > nominal);
    }
}
