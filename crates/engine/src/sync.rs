//! Partial mirror synchronization — the paper's core engine modification.
//!
//! After `apply` updates a vertex's master state, PowerGraph pushes the new state to all
//! mirrors at the superstep barrier. FrogWild's patch exposes a probability `p_s`: each
//! mirror is synchronized independently with probability `p_s`, and mirrors that were
//! not synchronized stay idle for the following scatter phase (their out-edges are
//! effectively *erased* for one step — Appendix A's edge-erasure model).
//!
//! [`SyncPolicy`] captures the three behaviours used in the paper:
//!
//! * [`SyncPolicy::Full`] — unmodified PowerGraph (`p_s = 1`).
//! * [`SyncPolicy::Independent`] — Example 9, every mirror flips an independent coin.
//! * [`SyncPolicy::AtLeastOneOutEdge`] — Example 10 (the variant the paper's
//!   implementation and experiments use): coins are independent, but if the resulting
//!   participating set has no out-edges at all while the vertex does have out-edges,
//!   one replica owning out-edges is force-synchronized so walkers are never stranded.
//!
//! Partial synchronization is orthogonal to the executor's *bounded-staleness* axis
//! ([`EngineConfig::staleness`](crate::EngineConfig::staleness)): `p_s` decides **how
//! many** mirrors see a master update (a spatial thinning, trading network bytes for
//! edge erasure), while staleness decides **when** a cross-machine message becomes
//! visible (a temporal relaxation, trading freshness for barrier overlap). The two
//! compose — a stale run still thins its mirror broadcasts by `p_s` — and both are
//! deterministic given the seed, so every combination is reproducible.

use serde::{Deserialize, Serialize};

/// Policy controlling which mirrors of an active vertex are synchronized each superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Synchronize every mirror (the default PowerGraph behaviour, `p_s = 1`).
    #[default]
    Full,
    /// Synchronize each mirror independently with probability `ps` (Example 9).
    /// Walkers on a vertex none of whose out-edge-owning replicas were synchronized are
    /// stuck for that step (they scatter nothing and remain where they are).
    Independent {
        /// Per-mirror synchronization probability in `[0, 1]`.
        ps: f64,
    },
    /// Like [`SyncPolicy::Independent`], but if no participating replica owns an
    /// out-edge (and the vertex has out-edges), one out-edge-owning replica is
    /// force-synchronized (Example 10, "At Least One Out-Edge Per Node").
    AtLeastOneOutEdge {
        /// Per-mirror synchronization probability in `[0, 1]`.
        ps: f64,
    },
}

impl SyncPolicy {
    /// The synchronization probability this policy applies to each mirror.
    pub fn probability(&self) -> f64 {
        match *self {
            SyncPolicy::Full => 1.0,
            SyncPolicy::Independent { ps } | SyncPolicy::AtLeastOneOutEdge { ps } => ps,
        }
    }

    /// `true` when the policy guarantees that a vertex with out-edges always has at
    /// least one participating replica that owns out-edges.
    pub fn guarantees_out_edge(&self) -> bool {
        matches!(
            self,
            SyncPolicy::Full | SyncPolicy::AtLeastOneOutEdge { .. }
        )
    }

    /// Validates the policy's probability.
    pub fn validate(&self) -> Result<(), frogwild_graph::Error> {
        let p = self.probability();
        if (0.0..=1.0).contains(&p) {
            Ok(())
        } else {
            Err(frogwild_graph::Error::config(
                "SyncPolicy",
                format!("synchronization probability {p} outside [0, 1]"),
            ))
        }
    }

    /// Convenience constructor matching the paper's description: the default
    /// experiments use the at-least-one-out-edge model with the given `p_s`;
    /// `p_s >= 1` short-circuits to full synchronization.
    pub fn frogwild(ps: f64) -> Self {
        if ps >= 1.0 {
            SyncPolicy::Full
        } else {
            SyncPolicy::AtLeastOneOutEdge { ps }
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Full => write!(f, "full"),
            SyncPolicy::Independent { ps } => write!(f, "independent(ps={ps})"),
            SyncPolicy::AtLeastOneOutEdge { ps } => write!(f, "at-least-one(ps={ps})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_accessor() {
        assert_eq!(SyncPolicy::Full.probability(), 1.0);
        assert_eq!(SyncPolicy::Independent { ps: 0.4 }.probability(), 0.4);
        assert_eq!(SyncPolicy::AtLeastOneOutEdge { ps: 0.1 }.probability(), 0.1);
    }

    #[test]
    fn guarantees() {
        assert!(SyncPolicy::Full.guarantees_out_edge());
        assert!(SyncPolicy::AtLeastOneOutEdge { ps: 0.5 }.guarantees_out_edge());
        assert!(!SyncPolicy::Independent { ps: 0.5 }.guarantees_out_edge());
    }

    #[test]
    fn validation() {
        assert!(SyncPolicy::Full.validate().is_ok());
        assert!(SyncPolicy::Independent { ps: 0.0 }.validate().is_ok());
        assert!(SyncPolicy::Independent { ps: 1.0 }.validate().is_ok());
        assert!(SyncPolicy::Independent { ps: 1.5 }.validate().is_err());
        assert!(SyncPolicy::AtLeastOneOutEdge { ps: -0.1 }
            .validate()
            .is_err());
    }

    #[test]
    fn frogwild_constructor_short_circuits_full() {
        assert_eq!(SyncPolicy::frogwild(1.0), SyncPolicy::Full);
        assert_eq!(
            SyncPolicy::frogwild(0.4),
            SyncPolicy::AtLeastOneOutEdge { ps: 0.4 }
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(SyncPolicy::Full.to_string(), "full");
        assert_eq!(
            SyncPolicy::Independent { ps: 0.7 }.to_string(),
            "independent(ps=0.7)"
        );
        assert!(SyncPolicy::AtLeastOneOutEdge { ps: 0.1 }
            .to_string()
            .contains("at-least-one"));
    }
}
