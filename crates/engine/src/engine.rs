//! The superstep engine executing vertex programs over a partitioned graph —
//! synchronous (BSP) by default, bounded-staleness asynchronous when
//! [`EngineConfig::staleness`] is raised above zero.
//!
//! Each superstep proceeds through the phases described in [`crate::program`]:
//! gather → apply → sync → scatter → message routing. All cross-machine data movement
//! is accounted in [`RunMetrics`]; the partial-synchronization policy decides which
//! mirrors receive fresh state and may therefore participate in scatter.
//!
//! Inter-machine messages flow through a **bounded-staleness staging inbox**: a
//! message produced in superstep `t` on the channel from machine `a` to machine `b`
//! becomes visible at superstep `t + 1 + d`, where the delay `d ∈ [0, staleness]` is
//! a counter-mode hash of `(seed, t, a, b)` — a fixed, configuration-only function,
//! never a function of thread scheduling. Same-machine deliveries are always
//! immediate. A machine may therefore begin gather/apply for superstep `t` once its
//! inbox holds every message due by `t`, which by construction includes everything
//! produced at or before `t − 1 − staleness`: the engine's per-machine progress
//! watermark. Messages are drained in `(visibility superstep, production order)`
//! order — production order being `(sending machine, destination key)` — so results
//! are bit-identical across worker counts and batch sizes for any fixed staleness
//! bound, and `staleness = 0` reproduces the synchronous engine bit-for-bit.
//!
//! The superstep operates on an explicit [`Frontier`] — the sorted set of vertices
//! activated by last superstep's messages. Two mechanisms shrink it: programs can
//! decline scatter structurally via `needs_scatter`, and the executor *delta-gates*
//! convergence — after apply it asks the program for `delta(old, new)` and drops any
//! vertex whose delta is at or below [`EngineConfig::tolerance`] out of the frontier,
//! skipping its synchronization and scatter entirely (the production PageRank idiom of
//! gating scatter on `delta > tolerance`). `tolerance = 0` never gates a vertex that
//! still changes, and reproduces the ungated engine bit-for-bit.
//!
//! Execution is scheduled as sharded work batches: each phase's per-machine task lists
//! are cut into contiguous key ranges and served by a small worker pool whose size is
//! independent of the simulated machine count ([`EngineConfig::workers`]). Workers only
//! *read* shared state; every cache write happens in a serial commit step between
//! phases, and batch results are re-assembled in canonical (machine, range) order. All
//! random decisions go through counter-mode hashes of `(seed, superstep, vertex,
//! machine)`, so any worker count, batch size, or serial execution produces identical
//! results for identical configurations.

// lint:allow-file(indexing, hot path: every index derives from shard-local offsets validated at build time)

use std::collections::{btree_map, BTreeMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use frogwild_graph::VertexId;
use frogwild_obs::{span_meta, SpanKey, SpanSink, Tracer};

use crate::cluster::MachineId;
use crate::metrics::{CostModel, NetworkStats, RunMetrics, SuperstepMetrics, WorkStats};
use crate::placement::{PartitionedGraph, Shard};
use crate::program::{ApplyContext, EdgeDirection, ScatterContext, VertexProgram};
use crate::rng;
use crate::sync::SyncPolicy;

/// Domain-separation tags for the deterministic randomness streams.
const TAG_APPLY: u64 = 0xA111;
const TAG_SYNC: u64 = 0x5C2;
const TAG_SCATTER: u64 = 0x5CA3;
const TAG_FORCE: u64 = 0xF0C4;
const TAG_STALE: u64 = 0x57A1;

/// Per-machine superstep results: the (vertex, payload) pairs a machine produced,
/// plus the number of work operations it performed.
type PerMachine<T> = Vec<(Vec<(VertexId, T)>, u64)>;

/// Trace-timeline lanes (the `lane` component of [`SpanKey`]) for the engine's
/// phases. Distinct lanes keep records of distinct sinks totally ordered even when
/// they share `(superstep, machine, batch)`.
const LANE_STEP: u16 = 0;
const LANE_GATHER: u16 = 1;
const LANE_APPLY: u16 = 2;
const LANE_SYNC: u16 = 3;
const LANE_SCATTER: u16 = 4;
const LANE_ROUTE: u16 = 5;
const LANE_WATERMARK: u16 = 6;

/// Default number of tasks per work batch when [`EngineConfig::batch_size`] is 0.
const DEFAULT_BATCH_SIZE: usize = 512;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Mirror synchronization policy (the paper's `p_s`).
    pub sync_policy: SyncPolicy,
    /// Cost model converting counted work and traffic into simulated time.
    pub cost_model: CostModel,
    /// Maximum number of supersteps to execute.
    pub max_supersteps: usize,
    /// Seed for all engine randomness.
    pub seed: u64,
    /// If `true`, phase work batches are served by a multi-threaded worker pool;
    /// if `false`, everything runs on the calling thread. Results are bit-identical
    /// either way.
    pub parallel: bool,
    /// Delta-gating threshold: after apply, a vertex whose `program.delta(old, new)`
    /// is `<= tolerance` skips synchronization and scatter and drops out of the
    /// frontier. `0.0` (the default) reproduces the ungated engine bit-for-bit for
    /// every shipped program.
    pub tolerance: f64,
    /// Worker threads serving work batches when `parallel` is set. `0` (the default)
    /// sizes the pool from the host's available parallelism; the thread count is
    /// independent of the simulated machine count.
    pub workers: usize,
    /// Number of tasks per work batch (a contiguous key range of one machine's task
    /// list). `0` (the default) picks a built-in size. Smaller batches balance better;
    /// larger batches have less scheduling overhead. The result is identical for any
    /// value.
    pub batch_size: usize,
    /// Bounded staleness for inter-machine messages, in supersteps. `0` (the default)
    /// is fully synchronous BSP: every message produced in superstep `t` is visible
    /// at `t + 1`, bit-for-bit identical to the barriered executor. With `staleness =
    /// s > 0`, each cross-machine channel's messages from superstep `t` arrive at a
    /// deterministically delayed superstep in `[t + 1, t + 1 + s]` (hash of `(seed,
    /// t, sender, receiver)`), machines overlap supersteps up to `s` deep, and
    /// simulated time switches to a pipelined per-machine watermark model. Results
    /// remain bit-identical across worker counts and batch sizes for any fixed `s`.
    /// Delays near the superstep horizon are clamped so late messages are still
    /// delivered in the final superstep rather than lost.
    pub staleness: usize,
    /// Structured-tracing handle. The default ([`Tracer::disabled`]) records nothing
    /// and costs nothing; an enabled tracer records per-phase spans keyed by
    /// `(superstep, machine, batch)` — tracing never changes results, only observes
    /// them.
    pub tracer: Tracer,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sync_policy: SyncPolicy::Full,
            cost_model: CostModel::default(),
            max_supersteps: 100,
            seed: 0xF20C,
            parallel: false,
            tolerance: 0.0,
            workers: 0,
            batch_size: 0,
            staleness: 0,
            tracer: Tracer::disabled(),
        }
    }
}

/// The engine's active set for one superstep: a sorted, deduplicated list of vertices
/// that received a message (or were explicitly activated) and will run apply this
/// superstep. The frontier shrinks as vertices go quiet — structurally via
/// `needs_scatter`, or through delta gating when their state stops changing — which is
/// what makes later supersteps cheaper than the first.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    vertices: Vec<VertexId>,
}

impl Frontier {
    /// A frontier containing every vertex of an `num_vertices`-vertex graph.
    pub fn all(num_vertices: usize) -> Self {
        Frontier {
            vertices: (0..num_vertices as VertexId).collect(),
        }
    }

    /// Builds a frontier from an arbitrary list of vertices, sorting and deduplicating.
    pub fn from_unsorted(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        Frontier { vertices }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the frontier is empty (the engine is quiescent).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The active vertices in ascending order.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Iterates the active vertices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }
}

/// A contiguous range of one machine's phase task list, executed as a unit by the
/// worker pool (the key-range scheduling idiom: each batch touches one shard only,
/// so workers never contend on a machine's data).
#[derive(Clone, Copy, Debug)]
struct BatchRange {
    machine: usize,
    start: usize,
    end: usize,
}

/// Cuts per-machine task counts into batches of at most `batch_size` tasks.
fn make_batches(counts: &[usize], batch_size: usize) -> Vec<BatchRange> {
    let mut batches = Vec::new();
    for (machine, &count) in counts.iter().enumerate() {
        let mut start = 0;
        while start < count {
            let end = (start + batch_size).min(count);
            batches.push(BatchRange {
                machine,
                start,
                end,
            });
            start = end;
        }
    }
    batches
}

/// How the first superstep's active set is formed.
pub enum InitialActivation<M> {
    /// Every vertex is active in superstep 0 with no incoming message
    /// (how the standard PageRank starts).
    AllVertices,
    /// The listed messages are delivered before superstep 0; their recipients form the
    /// initial active set (how FrogWild seeds its walkers). Delivery is local — it does
    /// not count as network traffic, matching the paper's implementation where each
    /// machine births its own share of the walkers.
    Messages(Vec<(VertexId, M)>),
}

/// Result of an engine run.
pub struct EngineOutput<S> {
    /// Final state of every vertex, indexed by vertex id (taken from the masters).
    pub states: Vec<S>,
    /// Cost metrics of the run.
    pub metrics: RunMetrics,
}

/// Work prepared centrally for one machine's apply phase.
struct ApplyTask<P: VertexProgram> {
    local: u32,
    vertex: VertexId,
    accum: Option<P::Accum>,
    message: Option<P::Message>,
}

/// Work prepared centrally for one machine's scatter phase.
struct ScatterTask {
    local: u32,
    vertex: VertexId,
    replica_rank: usize,
    num_participating: usize,
}

/// A state refresh a machine must apply to its mirror cache before scattering.
struct SyncReceive<S> {
    local: u32,
    state: S,
}

/// One combined message leaving a superstep's routing phase, addressed to the master
/// replica of its destination vertex. Routing emits these in canonical order —
/// sending machine ascending, destination vertex ascending within a sender — which
/// is also the order they are staged and later drained.
struct RoutedMessage<M> {
    /// Machine whose scatter produced the message.
    sender: usize,
    /// Machine mastering the destination vertex.
    machine: usize,
    /// Local index of the destination vertex on `machine`.
    local: u32,
    message: M,
}

/// A message waiting in the bounded-staleness staging inbox for its visibility
/// superstep.
struct StagedMessage<M> {
    machine: usize,
    local: u32,
    message: M,
    /// Supersteps of delay relative to synchronous (next-superstep) delivery.
    lag: u64,
}

/// Result of draining the staging inbox at the top of a superstep.
struct DrainResult {
    /// Vertices activated by newly delivered messages (unsorted).
    activations: Vec<VertexId>,
    /// Summed delivery lag of the drained messages, in supersteps.
    lag: u64,
}

/// The synchronous engine. Borrows the partitioned graph; owns the program and config.
pub struct Engine<'g, P: VertexProgram> {
    graph: &'g PartitionedGraph,
    program: P,
    config: EngineConfig,
}

impl<'g, P: VertexProgram> Engine<'g, P> {
    /// Creates an engine for `program` over `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`](frogwild_graph::Error::InvalidConfig) when the
    /// configured synchronization policy carries a probability outside `[0, 1]`.
    pub fn new(
        graph: &'g PartitionedGraph,
        program: P,
        config: EngineConfig,
    ) -> Result<Self, frogwild_graph::Error> {
        config.sync_policy.validate()?;
        Ok(Engine {
            graph,
            program,
            config,
        })
    }

    /// Access to the program (e.g. to read configuration back out).
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Runs the program to completion (quiescence or `max_supersteps`) and returns the
    /// final per-vertex states plus the run metrics.
    pub fn run(&self, initial: InitialActivation<P::Message>) -> EngineOutput<P::State> {
        let num_machines = self.graph.num_machines();
        let num_vertices = self.graph.num_vertices();

        // Replica state caches: caches[machine][local index].
        let mut caches: Vec<Vec<P::State>> = self
            .graph
            .shards()
            .iter()
            .map(|s| vec![P::State::default(); s.num_local_vertices()])
            .collect();

        // Message inboxes: inboxes[machine] maps local index (of a locally mastered
        // vertex) to the combined incoming message.
        let mut inboxes: Vec<BTreeMap<u32, P::Message>> =
            (0..num_machines).map(|_| BTreeMap::new()).collect();

        // Initial frontier.
        let mut frontier: Frontier = match initial {
            InitialActivation::AllVertices => Frontier::all(num_vertices),
            InitialActivation::Messages(messages) => {
                let mut seen: Vec<(VertexId, P::Message)> = messages;
                // Combine per destination, then deliver to masters locally.
                seen.sort_by_key(|(v, _)| *v);
                let mut active = Vec::new();
                let mut iter = seen.into_iter();
                let mut current: Option<(VertexId, P::Message)> = iter.next();
                while let Some((v, msg)) = current.take() {
                    let mut combined = msg;
                    loop {
                        match iter.next() {
                            Some((v2, m2)) if v2 == v => {
                                combined = self.program.combine_messages(combined, m2);
                            }
                            next => {
                                current = next;
                                break;
                            }
                        }
                    }
                    let master = self.graph.placement().master(v);
                    let local = self
                        .graph
                        .shard(master)
                        .local_index(v)
                        .expect("master shard holds the vertex"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
                    inboxes[master.index()].insert(local, combined);
                    active.push(v);
                    if current.is_none() {
                        break;
                    }
                }
                Frontier::from_unsorted(active)
            }
        };

        let mut metrics = RunMetrics {
            replication_factor: self.graph.placement().replication_factor(),
            num_machines,
            ..RunMetrics::default()
        };

        // The bounded-staleness staging inbox: routed messages wait here keyed by the
        // superstep at which they become visible, in production order within a key.
        // The drain schedule is a pure function of the configuration — worker counts
        // and batch sizes never reorder it.
        let mut staged: BTreeMap<usize, Vec<StagedMessage<P::Message>>> = BTreeMap::new();
        // Pipelined clock for staleness > 0: per-machine finish times plus the
        // history of global watermarks (the time by which *every* machine had
        // finished a given superstep) that gate how far ahead any machine may run.
        let mut finish_times = vec![0.0f64; num_machines];
        let mut watermarks: Vec<(usize, f64)> = Vec::new();

        // One sink for the serial driver loop; per-batch sinks are created inside
        // the worker closures. Inert (no allocation, no clock reads) when tracing
        // is disabled.
        let loop_sink = self.config.tracer.sink();

        let mut superstep = 0usize;
        while superstep < self.config.max_supersteps {
            if frontier.is_empty() {
                // Quiescent right now, but messages may still be in flight: jump to
                // the earliest staged visibility instead of idling through empty
                // supersteps. No staged work at all means the run is finished.
                match staged.keys().next().copied() {
                    Some(next) if next < self.config.max_supersteps => superstep = next,
                    _ => break,
                }
            }
            // Drain everything due at this superstep into the machine inboxes; newly
            // delivered messages activate their destination vertices.
            let drained = self.drain_staged(superstep, &mut staged, &mut inboxes);
            if !drained.activations.is_empty() {
                let mut vertices = std::mem::take(&mut frontier.vertices);
                vertices.extend(drained.activations);
                frontier = Frontier::from_unsorted(vertices);
            }

            let mut step_span = loop_sink.span(
                span_meta!("superstep"),
                SpanKey::new(superstep as u64, 0, 0, LANE_STEP),
            );
            let start = Instant::now(); // lint:allow(timing, host-seconds telemetry only; never feeds results)
            let (mut step_metrics, routed) =
                self.superstep(superstep, &frontier, &mut caches, &mut inboxes, &loop_sink);
            step_metrics.host_seconds = start.elapsed().as_secs_f64();
            step_metrics.staleness_lag = drained.lag;

            // Stage this superstep's routed messages for delivery. Messages whose
            // visibility lies past the superstep horizon can never be drained; they
            // are dropped exactly like the synchronous engine drops messages routed
            // by the final superstep.
            for r in routed {
                let visible = self.visibility(superstep, r.sender, r.machine);
                if visible >= self.config.max_supersteps {
                    continue;
                }
                staged.entry(visible).or_default().push(StagedMessage {
                    machine: r.machine,
                    local: r.local,
                    message: r.message,
                    lag: (visible - (superstep + 1)) as u64,
                });
            }
            step_metrics.inbox_depth = staged
                .range(superstep + 2..)
                .map(|(_, batch)| batch.len() as u64)
                .sum();

            // Simulated time. Synchronous runs keep the barriered cost model
            // untouched; under staleness the machines pipeline — each starts a
            // superstep at max(own finish time, watermark of superstep
            // `t - 1 - staleness`) — and the superstep is charged the global
            // watermark's advance, so the per-superstep times still sum to the
            // run's makespan.
            if self.config.staleness > 0 {
                let sync_seconds = step_metrics.simulated_seconds;
                let gate = watermarks
                    .iter()
                    .rev()
                    .find(|(step, _)| step + 1 + self.config.staleness <= superstep)
                    .map(|&(_, w)| w)
                    .unwrap_or(0.0);
                let mut new_watermark = 0.0f64;
                for (m, finish) in finish_times.iter_mut().enumerate() {
                    let own = self.config.cost_model.machine_superstep_seconds(
                        step_metrics.work.ops_per_machine[m],
                        step_metrics.network.bytes_per_machine[m],
                    );
                    *finish = finish.max(gate) + own;
                    new_watermark = new_watermark.max(*finish);
                    if loop_sink.is_enabled() {
                        // Per-machine watermark progress: when machine `m` finishes
                        // this superstep on the pipelined simulated clock.
                        let finish_us = (*finish * 1e6) as u64;
                        let own_us = (own * 1e6) as u64;
                        loop_sink.event_with(
                            span_meta!("watermark"),
                            SpanKey::new(superstep as u64, m as u32 + 1, 0, LANE_WATERMARK),
                            &[("finish_us", finish_us), ("own_us", own_us)],
                        );
                    }
                }
                let previous = watermarks.last().map(|&(_, w)| w).unwrap_or(0.0);
                step_metrics.simulated_seconds = new_watermark - previous;
                step_metrics.barrier_wait_avoided_seconds =
                    (sync_seconds - step_metrics.simulated_seconds).max(0.0);
                watermarks.push((superstep, new_watermark));
            }

            step_span.counter("frontier", step_metrics.active_vertices as u64);
            step_span.counter("routed", step_metrics.routed_messages);
            step_span.counter("inbox_depth", step_metrics.inbox_depth);
            step_span.counter("staleness_lag", step_metrics.staleness_lag);
            step_span.counter_seconds("simulated", step_metrics.simulated_seconds);
            step_span.wall_counter_seconds("host", step_metrics.host_seconds);
            if self.config.staleness > 0 {
                step_span.counter_seconds(
                    "barrier_wait_avoided",
                    step_metrics.barrier_wait_avoided_seconds,
                );
            }
            drop(step_span);

            metrics.supersteps.push(step_metrics);
            frontier = Frontier::default();
            superstep += 1;
        }
        if self.config.staleness > 0 {
            // The straggler profile: when each machine crossed the finish line on
            // the pipelined watermark clock (empty for synchronous runs, whose
            // machines finish every superstep together by construction).
            metrics.machine_finish_seconds = finish_times;
        }

        // Collect final states from the masters.
        let placement = self.graph.placement();
        let states: Vec<P::State> = (0..num_vertices as VertexId)
            .map(|v| {
                let m = placement.master(v);
                let local = self.graph.shard(m).local_index(v).expect("master replica"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
                caches[m.index()][local as usize].clone()
            })
            .collect();

        EngineOutput { states, metrics }
    }

    /// The superstep at which a message produced in `superstep` on the channel from
    /// machine `sender` to machine `receiver` becomes visible. Synchronous runs and
    /// same-machine deliveries are always next-superstep; otherwise the channel's
    /// delay is a counter-mode hash of `(seed, superstep, sender, receiver)` in
    /// `[0, staleness]`, clamped so deliveries still land within the superstep
    /// horizon (late walkers are absorbed in the final superstep, not lost).
    fn visibility(&self, superstep: usize, sender: usize, receiver: usize) -> usize {
        let base = superstep + 1;
        let staleness = self.config.staleness;
        if staleness == 0 || sender == receiver || base >= self.config.max_supersteps {
            return base;
        }
        let delay = rng::pick_index(
            staleness + 1,
            &[
                self.config.seed,
                superstep as u64,
                sender as u64,
                receiver as u64,
                TAG_STALE,
            ],
        );
        (base + delay).min(self.config.max_supersteps - 1)
    }

    /// Drains every staged message due at `superstep` into the machine inboxes, in
    /// `(visibility superstep, production order)` order — the fixed drain schedule
    /// that makes bounded-staleness runs deterministic. Returns the activated
    /// vertices and the summed delivery lag.
    fn drain_staged(
        &self,
        superstep: usize,
        staged: &mut BTreeMap<usize, Vec<StagedMessage<P::Message>>>,
        inboxes: &mut [BTreeMap<u32, P::Message>],
    ) -> DrainResult {
        let mut activations = Vec::new();
        let mut lag = 0u64;
        while staged
            .first_key_value()
            .is_some_and(|(&key, _)| key <= superstep)
        {
            let Some((_, batch)) = staged.pop_first() else {
                break;
            };
            for staged_msg in batch {
                lag += staged_msg.lag;
                match inboxes[staged_msg.machine].entry(staged_msg.local) {
                    btree_map::Entry::Occupied(mut e) => {
                        let combined = self
                            .program
                            .combine_messages(e.get().clone(), staged_msg.message);
                        e.insert(combined);
                    }
                    btree_map::Entry::Vacant(e) => {
                        e.insert(staged_msg.message);
                        let vertex = self
                            .graph
                            .shard(MachineId::from(staged_msg.machine))
                            .global_id(staged_msg.local);
                        activations.push(vertex);
                    }
                }
            }
        }
        DrainResult { activations, lag }
    }

    /// Executes one superstep; returns its metrics and the routed messages in
    /// canonical production order, ready for staged delivery.
    fn superstep(
        &self,
        superstep: usize,
        frontier: &Frontier,
        caches: &mut [Vec<P::State>],
        inboxes: &mut [BTreeMap<u32, P::Message>],
        sink: &SpanSink,
    ) -> (SuperstepMetrics, Vec<RoutedMessage<P::Message>>) {
        let num_machines = self.graph.num_machines();
        let placement = self.graph.placement();
        let mut net = NetworkStats::new(num_machines);
        let mut work = WorkStats::new(num_machines);
        let batch_size = if self.config.batch_size > 0 {
            self.config.batch_size
        } else {
            DEFAULT_BATCH_SIZE
        };
        let active = frontier.as_slice();
        let step = superstep as u64;

        // ------------------------------------------------------------------ gather --
        let mut gather_span =
            sink.span(span_meta!("gather"), SpanKey::new(step, 0, 0, LANE_GATHER));
        let mut accums: Vec<BTreeMap<u32, P::Accum>> =
            (0..num_machines).map(|_| BTreeMap::new()).collect();
        if self.program.gather_direction() == EdgeDirection::In {
            // Which local vertices must gather on each machine.
            let mut gather_tasks: Vec<Vec<u32>> = vec![Vec::new(); num_machines];
            for &v in active {
                for &m in placement.replicas(v) {
                    if let Some(local) = self.graph.shard(m).local_index(v) {
                        if self.graph.shard(m).local_in_degree(local) > 0 {
                            gather_tasks[m.index()].push(local);
                        }
                    }
                }
            }
            // Read-only key-range batches; results re-assembled per machine in batch
            // order, which is exactly the order a single pass over the task list
            // would produce.
            let counts: Vec<usize> = gather_tasks.iter().map(Vec::len).collect();
            let batches = make_batches(&counts, batch_size);
            let results: PerMachine<P::Accum> = {
                let caches_ro: &[Vec<P::State>] = caches;
                self.run_batched(&batches, |i, b| {
                    let batch_sink = self.config.tracer.sink();
                    let mut batch_span = batch_sink.span(
                        span_meta!("gather_batch"),
                        SpanKey::new(step, b.machine as u32 + 1, i as u32 + 1, LANE_GATHER),
                    );
                    let shard = self.graph.shard(MachineId::from(b.machine));
                    let result = gather_machine(
                        &self.program,
                        self.graph,
                        shard,
                        &caches_ro[b.machine],
                        &gather_tasks[b.machine][b.start..b.end],
                    );
                    batch_span.counter("tasks", (b.end - b.start) as u64);
                    batch_span.counter("edge_ops", result.1);
                    result
                })
            };
            let mut per_machine: PerMachine<P::Accum> =
                (0..num_machines).map(|_| (Vec::new(), 0)).collect();
            for (b, (partials, ops)) in batches.iter().zip(results) {
                per_machine[b.machine].0.extend(partials);
                per_machine[b.machine].1 += ops;
            }
            for (machine, (partials, ops)) in per_machine.into_iter().enumerate() {
                work.gather_ops += ops;
                work.ops_per_machine[machine] += ops;
                for (vertex, accum) in partials {
                    let master = placement.master(vertex);
                    if master.index() != machine {
                        net.record(
                            machine,
                            (self.program.accum_bytes()
                                + self.config.cost_model.message_header_bytes)
                                as u64,
                        );
                    }
                    let local = self
                        .graph
                        .shard(master)
                        .local_index(vertex)
                        .expect("master replica"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
                    match accums[master.index()].entry(local) {
                        btree_map::Entry::Occupied(mut e) => {
                            let combined = self.program.combine_accums(e.get().clone(), accum);
                            e.insert(combined);
                        }
                        btree_map::Entry::Vacant(e) => {
                            e.insert(accum);
                        }
                    }
                }
            }
        }

        gather_span.counter("edge_ops", work.gather_ops);
        drop(gather_span);

        // ------------------------------------------------------------------- apply --
        let mut apply_span = sink.span(span_meta!("apply"), SpanKey::new(step, 0, 0, LANE_APPLY));
        let mut apply_tasks: Vec<Vec<ApplyTask<P>>> =
            (0..num_machines).map(|_| Vec::new()).collect();
        for &v in active {
            let master = placement.master(v);
            let local = self
                .graph
                .shard(master)
                .local_index(v)
                .expect("master replica"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
            let accum = accums[master.index()].remove(&local);
            let message = inboxes[master.index()].remove(&local);
            apply_tasks[master.index()].push(ApplyTask {
                local,
                vertex: v,
                accum,
                message,
            });
        }
        // Workers compute fresh states (and their deltas) against the read-only
        // caches; the commit below writes them back serially, so any worker count
        // observes identical inputs.
        let apply_counts: Vec<usize> = apply_tasks.iter().map(Vec::len).collect();
        let apply_batches = make_batches(&apply_counts, batch_size);
        let applied: Vec<Vec<(u32, P::State, f64)>> = {
            let caches_ro: &[Vec<P::State>] = caches;
            self.run_batched(&apply_batches, |i, b| {
                let batch_sink = self.config.tracer.sink();
                let mut batch_span = batch_sink.span(
                    span_meta!("apply_batch"),
                    SpanKey::new(step, b.machine as u32 + 1, i as u32 + 1, LANE_APPLY),
                );
                let result = apply_batch(
                    &self.program,
                    self.graph,
                    &caches_ro[b.machine],
                    &apply_tasks[b.machine][b.start..b.end],
                    superstep,
                    self.config.seed,
                );
                batch_span.counter("tasks", (b.end - b.start) as u64);
                result
            })
        };
        // Serial commit: write fresh states, record each vertex's delta in apply-task
        // order (one task per active vertex, so the sync loop below can read them back
        // with per-machine cursors).
        let mut deltas: Vec<Vec<f64>> = (0..num_machines).map(|_| Vec::new()).collect();
        for (b, results) in apply_batches.iter().zip(applied) {
            for (local, state, delta) in results {
                caches[b.machine][local as usize] = state;
                deltas[b.machine].push(delta);
            }
        }
        for (machine, &ops) in apply_counts.iter().enumerate() {
            work.apply_ops += ops as u64;
            work.ops_per_machine[machine] += ops as u64;
        }
        apply_span.counter("tasks", active.len() as u64);
        drop(apply_span);

        // ----------------------------------------------------- sync decision (central) --
        let mut sync_span = sink.span(span_meta!("sync"), SpanKey::new(step, 0, 0, LANE_SYNC));
        let ps = self.config.sync_policy.probability();
        let tolerance = self.config.tolerance;
        let mut sync_receives: Vec<Vec<SyncReceive<P::State>>> =
            (0..num_machines).map(|_| Vec::new()).collect();
        let mut scatter_tasks: Vec<Vec<ScatterTask>> =
            (0..num_machines).map(|_| Vec::new()).collect();
        let mut delta_cursors = vec![0usize; num_machines];

        for &v in active {
            let master = placement.master(v);
            let master_local = self
                .graph
                .shard(master)
                .local_index(v)
                .expect("master replica"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
            let delta = {
                let cursor = &mut delta_cursors[master.index()];
                let d = deltas[master.index()][*cursor];
                *cursor += 1;
                d
            };
            let master_state = &caches[master.index()][master_local as usize];
            // The scatter gate: structurally quiet vertices and delta-gated
            // (converged) vertices schedule no synchronization and no scatter, so
            // they fall out of the frontier. A program that does not implement
            // `delta` reports infinity, which no finite tolerance gates.
            if !self.program.needs_scatter(v, master_state) || delta <= tolerance {
                work.skipped_scatters += 1;
                continue;
            }
            let replicas = placement.replicas(v);
            // Decide which replicas are synchronized (and hence may scatter).
            let mut participating: Vec<MachineId> = Vec::with_capacity(replicas.len());
            for &r in replicas {
                if r == master {
                    participating.push(r);
                    continue;
                }
                let synced = match self.config.sync_policy {
                    SyncPolicy::Full => true,
                    SyncPolicy::Independent { .. } | SyncPolicy::AtLeastOneOutEdge { .. } => {
                        rng::coin(
                            ps,
                            &[
                                self.config.seed,
                                superstep as u64,
                                v as u64,
                                r.index() as u64,
                                TAG_SYNC,
                            ],
                        )
                    }
                };
                if synced {
                    participating.push(r);
                    work.sync_ops += 1;
                    work.ops_per_machine[master.index()] += 1;
                    net.record(
                        master.index(),
                        (self.program.state_bytes() + self.config.cost_model.message_header_bytes)
                            as u64,
                    );
                } else {
                    work.skipped_syncs += 1;
                }
            }

            // "At least one out-edge per node": if no participating replica owns an
            // out-edge while the vertex does have out-edges, force-sync one replica
            // that does.
            if self.config.sync_policy.guarantees_out_edge() && self.graph.out_degree(v) > 0 {
                let has_out = |m: MachineId| {
                    let shard = self.graph.shard(m);
                    shard
                        .local_index(v)
                        .map(|l| shard.local_out_degree(l) > 0)
                        .unwrap_or(false)
                };
                if !participating.iter().any(|&m| has_out(m)) {
                    let candidates: Vec<MachineId> =
                        replicas.iter().copied().filter(|&m| has_out(m)).collect();
                    if !candidates.is_empty() {
                        let pick = candidates[rng::pick_index(
                            candidates.len(),
                            &[self.config.seed, superstep as u64, v as u64, TAG_FORCE],
                        )];
                        participating.push(pick);
                        if pick != master {
                            work.sync_ops += 1;
                            work.skipped_syncs = work.skipped_syncs.saturating_sub(1);
                            work.ops_per_machine[master.index()] += 1;
                            net.record(
                                master.index(),
                                (self.program.state_bytes()
                                    + self.config.cost_model.message_header_bytes)
                                    as u64,
                            );
                        }
                        participating.sort_unstable();
                    }
                }
            }

            // Queue state refreshes for participating non-master machines.
            for &m in &participating {
                if m == master {
                    continue;
                }
                let local = self
                    .graph
                    .shard(m)
                    .local_index(v)
                    .expect("replica exists on participating machine"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
                sync_receives[m.index()].push(SyncReceive {
                    local,
                    state: master_state.clone(),
                });
            }

            // Scatter tasks: participating replicas that own at least one out-edge.
            let scatterers: Vec<MachineId> = participating
                .iter()
                .copied()
                .filter(|&m| {
                    let shard = self.graph.shard(m);
                    shard
                        .local_index(v)
                        .map(|l| shard.local_out_degree(l) > 0)
                        .unwrap_or(false)
                })
                .collect();
            let num_participating = scatterers.len();
            for (rank, &m) in scatterers.iter().enumerate() {
                let local = self.graph.shard(m).local_index(v).expect("replica"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
                scatter_tasks[m.index()].push(ScatterTask {
                    local,
                    vertex: v,
                    replica_rank: rank,
                    num_participating,
                });
            }
        }

        // ----------------------------------------------------- sync apply + scatter --
        // Serial commit of the mirror refreshes (each targets a distinct local slot),
        // then read-only scatter batches over the now-consistent caches.
        for (machine, receives) in sync_receives.into_iter().enumerate() {
            for recv in receives {
                caches[machine][recv.local as usize] = recv.state;
            }
        }
        sync_span.counter("sync_ops", work.sync_ops);
        sync_span.counter("skipped_syncs", work.skipped_syncs);
        sync_span.counter("skipped_scatters", work.skipped_scatters);
        drop(sync_span);

        let mut scatter_span = sink.span(
            span_meta!("scatter"),
            SpanKey::new(step, 0, 0, LANE_SCATTER),
        );
        let scatter_counts: Vec<usize> = scatter_tasks.iter().map(Vec::len).collect();
        let scatter_batches = make_batches(&scatter_counts, batch_size);
        let batch_results: PerMachine<P::Message> = {
            let caches_ro: &[Vec<P::State>] = caches;
            self.run_batched(&scatter_batches, |i, b| {
                let batch_sink = self.config.tracer.sink();
                let mut batch_span = batch_sink.span(
                    span_meta!("scatter_batch"),
                    SpanKey::new(step, b.machine as u32 + 1, i as u32 + 1, LANE_SCATTER),
                );
                let shard = self.graph.shard(MachineId::from(b.machine));
                let result = scatter_batch(
                    &self.program,
                    self.graph,
                    shard,
                    &caches_ro[b.machine],
                    &scatter_tasks[b.machine][b.start..b.end],
                    superstep,
                    self.config.seed,
                    ps,
                );
                batch_span.counter("tasks", (b.end - b.start) as u64);
                batch_span.counter("edge_ops", result.1);
                result
            })
        };
        let mut scatter_results: PerMachine<P::Message> =
            (0..num_machines).map(|_| (Vec::new(), 0)).collect();
        for (b, (emitted, ops)) in scatter_batches.iter().zip(batch_results) {
            scatter_results[b.machine].0.extend(emitted);
            scatter_results[b.machine].1 += ops;
        }

        scatter_span.counter(
            "tasks",
            scatter_counts.iter().map(|&c| c as u64).sum::<u64>(),
        );
        drop(scatter_span);

        // ----------------------------------------------------------- route messages --
        let mut route_span = sink.span(span_meta!("route"), SpanKey::new(step, 0, 0, LANE_ROUTE));
        let mut routed: Vec<RoutedMessage<P::Message>> = Vec::new();
        for (machine, (outbox, ops)) in scatter_results.into_iter().enumerate() {
            work.scatter_ops += ops;
            work.ops_per_machine[machine] += ops;
            // Combine per destination within the sending machine (walkers headed to the
            // same vertex travel as one message — the paper's first optimization).
            let mut combined: Vec<(VertexId, P::Message)> = outbox;
            combined.sort_by_key(|(v, _)| *v);
            let mut merged: Vec<(VertexId, P::Message)> = Vec::with_capacity(combined.len());
            for (v, msg) in combined {
                match merged.last_mut() {
                    Some((lv, lm)) if *lv == v => {
                        *lm = self.program.combine_messages(lm.clone(), msg);
                    }
                    _ => merged.push((v, msg)),
                }
            }
            for (dst, msg) in merged {
                let master = placement.master(dst);
                if master.index() != machine {
                    net.record(
                        machine,
                        (self.program.message_bytes() + self.config.cost_model.message_header_bytes)
                            as u64,
                    );
                }
                let local = self
                    .graph
                    .shard(master)
                    .local_index(dst)
                    .expect("master replica"); // lint:allow(panic, placement invariant: the shard indexes its vertex)
                routed.push(RoutedMessage {
                    sender: machine,
                    machine: master.index(),
                    local,
                    message: msg,
                });
            }
        }

        route_span.counter("messages", routed.len() as u64);
        drop(route_span);

        let simulated_seconds = self.config.cost_model.superstep_seconds(&work, &net);
        let step_metrics = SuperstepMetrics {
            superstep,
            active_vertices: frontier.len(),
            routed_messages: routed.len() as u64,
            network: net,
            work,
            simulated_seconds,
            ..SuperstepMetrics::default()
        };
        (step_metrics, routed)
    }

    /// Number of worker threads serving work batches.
    fn worker_count(&self) -> usize {
        if !self.config.parallel {
            return 1;
        }
        if self.config.workers > 0 {
            return self.config.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Executes `f` over every batch — serially, or on the worker pool with workers
    /// pulling batches off a shared counter. `f` receives the batch's canonical index
    /// (its position in `batches` — the deterministic identity trace spans key on,
    /// never the OS thread) alongside the range. Results come back in batch order
    /// regardless of which worker ran what, so scheduling never changes observable
    /// output.
    fn run_batched<T, F>(&self, batches: &[BatchRange], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &BatchRange) -> T + Sync,
    {
        let workers = self.worker_count().min(batches.len());
        if workers <= 1 {
            return batches.iter().enumerate().map(|(i, b)| f(i, b)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
            let next = &next;
            let f = &f;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= batches.len() {
                                break;
                            }
                            out.push((i, f(i, &batches[i])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked")) // lint:allow(panic, re-raises a worker thread panic)
                .collect()
        });
        indexed.sort_unstable_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, t)| t).collect()
    }
}

/// Per-machine gather: partial accumulations over locally-owned in-edges of the listed
/// local vertices. Returns `(vertex, partial)` pairs plus the number of edge operations.
fn gather_machine<P: VertexProgram>(
    program: &P,
    graph: &PartitionedGraph,
    shard: &Shard,
    cache: &[P::State],
    locals: &[u32],
) -> (Vec<(VertexId, P::Accum)>, u64) {
    let mut out = Vec::new();
    let mut ops = 0u64;
    for &local in locals {
        let vertex = shard.global_id(local);
        let dst_state = &cache[local as usize];
        let mut acc: Option<P::Accum> = None;
        for &src_local in shard.local_in_neighbors(local) {
            ops += 1;
            let src = shard.global_id(src_local);
            let src_state = &cache[src_local as usize];
            if let Some(partial) =
                program.gather_edge(src, vertex, src_state, dst_state, graph.out_degree(src))
            {
                acc = Some(match acc {
                    None => partial,
                    Some(existing) => program.combine_accums(existing, partial),
                });
            }
        }
        if let Some(acc) = acc {
            out.push((vertex, acc));
        }
    }
    (out, ops)
}

/// One apply batch: runs `apply` for a range of locally-mastered active vertices
/// against the read-only cache, producing `(local, fresh state, delta)` triples for
/// the serial commit. The delta is the program's convergence magnitude for the
/// executor's tolerance gate.
fn apply_batch<P: VertexProgram>(
    program: &P,
    graph: &PartitionedGraph,
    cache: &[P::State],
    tasks: &[ApplyTask<P>],
    superstep: usize,
    seed: u64,
) -> Vec<(u32, P::State, f64)> {
    let mut out = Vec::with_capacity(tasks.len());
    for task in tasks {
        let old = &cache[task.local as usize];
        let mut fresh = old.clone();
        let mut task_rng =
            rng::derived_rng(&[seed, superstep as u64, task.vertex as u64, TAG_APPLY]);
        let mut ctx = ApplyContext {
            superstep,
            num_vertices: graph.num_vertices(),
            out_degree: graph.out_degree(task.vertex),
            rng: &mut task_rng,
        };
        program.apply(
            &mut ctx,
            task.vertex,
            &mut fresh,
            task.accum.clone(),
            task.message.clone(),
        );
        let delta = program.delta(old, &fresh);
        out.push((task.local, fresh, delta));
    }
    out
}

/// One scatter batch: runs `scatter_replica` for a range of scatter tasks against the
/// read-only cache (mirror refreshes are committed before scatter starts). Returns the
/// emitted messages and the number of edge operations considered.
#[allow(clippy::too_many_arguments)]
fn scatter_batch<P: VertexProgram>(
    program: &P,
    graph: &PartitionedGraph,
    shard: &Shard,
    cache: &[P::State],
    tasks: &[ScatterTask],
    superstep: usize,
    seed: u64,
    sync_probability: f64,
) -> (Vec<(VertexId, P::Message)>, u64) {
    let mut outbox: Vec<(VertexId, P::Message)> = Vec::new();
    let mut ops = 0u64;
    for task in tasks {
        let local_neighbors: Vec<VertexId> = shard
            .local_out_neighbors(task.local)
            .iter()
            .map(|&l| shard.global_id(l))
            .collect();
        ops += local_neighbors.len() as u64;
        let mut task_rng = rng::derived_rng(&[
            seed,
            superstep as u64,
            task.vertex as u64,
            shard.machine.index() as u64,
            TAG_SCATTER,
        ]);
        let mut ctx = ScatterContext {
            superstep,
            machine: shard.machine,
            replica_rank: task.replica_rank,
            num_participating: task.num_participating,
            global_out_degree: graph.out_degree(task.vertex),
            local_out_degree: local_neighbors.len(),
            sync_probability,
            rng: &mut task_rng,
        };
        let state = &cache[task.local as usize];
        program.scatter_replica(
            &mut ctx,
            task.vertex,
            state,
            &local_neighbors,
            &mut |dst, msg| {
                outbox.push((dst, msg));
            },
        );
    }
    (outbox, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::ObliviousPartitioner;
    use frogwild_graph::generators::simple::{cycle, star};
    use frogwild_graph::generators::{rmat, RmatParams};
    use frogwild_graph::DiGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A token-passing program: each vertex forwards the tokens it received to its
    /// out-neighbors; at the final step tokens are absorbed into `arrived`. On any
    /// graph with full out-edge coverage the total arrived count equals the number of
    /// tokens injected, which pins down the engine's message routing, splitting and
    /// activation logic.
    struct TokenForward {
        steps: usize,
    }

    #[derive(Clone, Default)]
    struct TokenState {
        /// Tokens this vertex will forward during the current superstep's scatter.
        forwarding: u64,
        /// Tokens absorbed at the final step.
        arrived: u64,
    }

    impl VertexProgram for TokenForward {
        type State = TokenState;
        type Message = u64;
        type Accum = ();

        fn combine_messages(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn combine_accums(&self, _a: (), _b: ()) {}

        fn apply(
            &self,
            ctx: &mut ApplyContext<'_>,
            _vertex: VertexId,
            state: &mut TokenState,
            _accum: Option<()>,
            message: Option<u64>,
        ) {
            let incoming = message.unwrap_or(0);
            if ctx.superstep + 1 >= self.steps {
                state.arrived += incoming;
                state.forwarding = 0;
            } else {
                state.forwarding = incoming;
            }
        }

        fn needs_scatter(&self, _vertex: VertexId, state: &TokenState) -> bool {
            state.forwarding > 0
        }

        // Equivalent to `needs_scatter` at tolerance 0 (`x as f64 <= 0` iff `x == 0`),
        // and lets tests gate away low-token vertices with a positive tolerance.
        fn delta(&self, _old: &TokenState, new: &TokenState) -> f64 {
            new.forwarding as f64
        }

        fn scatter_replica(
            &self,
            ctx: &mut ScatterContext<'_>,
            _vertex: VertexId,
            state: &TokenState,
            local_out_neighbors: &[VertexId],
            emit: &mut dyn FnMut(VertexId, u64),
        ) {
            // Split the tokens across the participating replicas, then evenly across
            // this replica's local out-edges (remainder to the first edges).
            if local_out_neighbors.is_empty() {
                return;
            }
            let share = split_share(state.forwarding, ctx.num_participating, ctx.replica_rank);
            if share == 0 {
                return;
            }
            let per_edge = share / local_out_neighbors.len() as u64;
            let mut remainder = share % local_out_neighbors.len() as u64;
            for &dst in local_out_neighbors {
                let mut amount = per_edge;
                if remainder > 0 {
                    amount += 1;
                    remainder -= 1;
                }
                if amount > 0 {
                    emit(dst, amount);
                }
            }
        }
    }

    /// Evenly splits `total` across `parts`, returning the share of `index`.
    fn split_share(total: u64, parts: usize, index: usize) -> u64 {
        let parts = parts as u64;
        let base = total / parts;
        let extra = total % parts;
        base + if (index as u64) < extra { 1 } else { 0 }
    }

    fn partitioned(graph: &DiGraph, machines: usize) -> PartitionedGraph {
        PartitionedGraph::build(graph, machines, &ObliviousPartitioner, 99)
    }

    fn total_tokens(states: &[TokenState]) -> u64 {
        states.iter().map(|s| s.arrived).sum()
    }

    #[test]
    fn tokens_are_conserved_on_a_cycle() {
        let graph = cycle(50);
        let pg = partitioned(&graph, 4);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 10 },
            EngineConfig {
                max_supersteps: 10,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let initial = vec![(0u32, 1000u64), (25u32, 500u64)];
        let out = engine.run(InitialActivation::Messages(initial));
        assert_eq!(total_tokens(&out.states), 1500);
        assert_eq!(out.metrics.num_supersteps(), 10);
    }

    #[test]
    fn tokens_move_along_the_cycle() {
        let graph = cycle(10);
        let pg = partitioned(&graph, 2);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 3 },
            EngineConfig {
                max_supersteps: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 7u64)]));
        // The tokens are injected at vertex 0, forwarded twice, and absorbed at the
        // final superstep two hops downstream.
        assert_eq!(out.states[2].arrived, 7);
        assert_eq!(total_tokens(&out.states), 7);
    }

    #[test]
    fn engine_stops_when_quiescent() {
        let graph = cycle(10);
        let pg = partitioned(&graph, 2);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 2 },
            EngineConfig {
                max_supersteps: 50,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 5u64)]));
        // steps=2 means the program stops scattering after superstep 1; one more
        // superstep delivers the final messages and then the engine finds no work.
        assert!(out.metrics.num_supersteps() <= 3);
    }

    #[test]
    fn no_initial_messages_means_no_work() {
        let graph = cycle(10);
        let pg = partitioned(&graph, 2);
        let engine = Engine::new(&pg, TokenForward { steps: 5 }, EngineConfig::default()).unwrap();
        let out = engine.run(InitialActivation::Messages(vec![]));
        assert_eq!(out.metrics.num_supersteps(), 0);
        assert_eq!(total_tokens(&out.states), 0);
    }

    #[test]
    fn single_machine_run_has_no_network_traffic() {
        let graph = cycle(30);
        let pg = partitioned(&graph, 1);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 5 },
            EngineConfig {
                max_supersteps: 5,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 100u64)]));
        assert_eq!(out.metrics.total_bytes(), 0);
        assert_eq!(total_tokens(&out.states), 100);
    }

    #[test]
    fn multi_machine_run_counts_network_traffic() {
        let graph = cycle(30);
        let pg = partitioned(&graph, 6);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 5 },
            EngineConfig {
                max_supersteps: 5,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 100u64)]));
        assert!(out.metrics.total_bytes() > 0);
        assert!(out.metrics.total_messages() > 0);
        assert!(out.metrics.total_simulated_seconds() > 0.0);
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let mut rng = SmallRng::seed_from_u64(5);
        let graph = rmat(300, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 4);
        let run = |parallel: bool| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 6 },
                EngineConfig {
                    max_supersteps: 6,
                    parallel,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![
                (0u32, 5000u64),
                (7u32, 300u64),
            ]))
        };
        let serial = run(false);
        let parallel = run(true);
        let serial_tokens: Vec<u64> = serial
            .states
            .iter()
            .map(|s| s.arrived + s.forwarding)
            .collect();
        let parallel_tokens: Vec<u64> = parallel
            .states
            .iter()
            .map(|s| s.arrived + s.forwarding)
            .collect();
        assert_eq!(serial_tokens, parallel_tokens);
        assert_eq!(serial.metrics.total_bytes(), parallel.metrics.total_bytes());
        assert_eq!(serial.metrics.total_ops(), parallel.metrics.total_ops());
    }

    #[test]
    fn partial_sync_reduces_synchronizations_and_traffic() {
        let graph = star(400);
        let pg = partitioned(&graph, 8);
        let run = |policy: SyncPolicy| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 4 },
                EngineConfig {
                    max_supersteps: 4,
                    sync_policy: policy,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![(0u32, 10_000u64)]))
        };
        let full = run(SyncPolicy::Full);
        let partial = run(SyncPolicy::AtLeastOneOutEdge { ps: 0.1 });
        assert!(partial.metrics.total_syncs() < full.metrics.total_syncs());
        assert!(partial.metrics.total_bytes() < full.metrics.total_bytes());
        assert_eq!(full.metrics.total_skipped_syncs(), 0);
        assert!(partial.metrics.total_skipped_syncs() > 0);
        // tokens are conserved regardless of the sync policy
        assert_eq!(total_tokens(&full.states), 10_000);
        assert_eq!(total_tokens(&partial.states), 10_000);
    }

    #[test]
    fn all_vertices_activation_applies_everyone() {
        let graph = cycle(12);
        let pg = partitioned(&graph, 3);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 1 },
            EngineConfig {
                max_supersteps: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::AllVertices);
        assert_eq!(out.metrics.supersteps[0].active_vertices, 12);
        assert_eq!(out.metrics.supersteps[0].work.apply_ops, 12);
    }

    #[test]
    fn frontier_sorts_dedups_and_reports_size() {
        let f = Frontier::from_unsorted(vec![5, 1, 3, 1, 5]);
        assert_eq!(f.as_slice(), &[1, 3, 5]);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        let all = Frontier::all(4);
        assert_eq!(all.as_slice(), &[0, 1, 2, 3]);
        assert!(Frontier::from_unsorted(Vec::new()).is_empty());
    }

    #[test]
    fn zero_tolerance_matches_the_ungated_run_exactly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let graph = rmat(400, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 5);
        let run = |tolerance: f64| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 5 },
                EngineConfig {
                    max_supersteps: 5,
                    tolerance,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![(0u32, 9000u64)]))
        };
        let gated = run(0.0);
        let baseline = run(0.0);
        let tokens = |out: &EngineOutput<TokenState>| {
            out.states
                .iter()
                .map(|s| (s.arrived, s.forwarding))
                .collect::<Vec<_>>()
        };
        assert_eq!(tokens(&gated), tokens(&baseline));
        assert_eq!(gated.metrics.total_bytes(), baseline.metrics.total_bytes());
        assert_eq!(gated.metrics.total_ops(), baseline.metrics.total_ops());
        assert_eq!(
            gated.metrics.total_routed_messages(),
            baseline.metrics.total_routed_messages()
        );
    }

    #[test]
    fn positive_tolerance_gates_low_delta_vertices_out_of_the_frontier() {
        let mut rng = SmallRng::seed_from_u64(23);
        let graph = rmat(400, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 4);
        let run = |tolerance: f64| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 8 },
                EngineConfig {
                    max_supersteps: 8,
                    tolerance,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![(0u32, 2_000u64)]))
        };
        let ungated = run(0.0);
        let gated = run(3.0); // vertices forwarding <= 3 tokens go quiet
        assert!(
            gated.metrics.total_skipped_scatters() > ungated.metrics.total_skipped_scatters(),
            "gated {} vs ungated {}",
            gated.metrics.total_skipped_scatters(),
            ungated.metrics.total_skipped_scatters()
        );
        assert!(gated.metrics.total_scatter_ops() < ungated.metrics.total_scatter_ops());
        assert!(gated.metrics.total_routed_messages() < ungated.metrics.total_routed_messages());
        // Gated vertices can still be re-activated by messages from elsewhere, so the
        // frontier never grows but need not shrink strictly on a dense graph.
        assert!(gated.metrics.total_active_vertices() <= ungated.metrics.total_active_vertices());
        // A positive tolerance is an approximation knob: small parcels stop moving,
        // so the gated run delivers at most what the ungated run delivers.
        assert!(total_tokens(&gated.states) <= total_tokens(&ungated.states));
        assert!(total_tokens(&gated.states) > 0);
    }

    #[test]
    fn worker_pool_and_batch_size_never_change_results() {
        let mut rng = SmallRng::seed_from_u64(31);
        let graph = rmat(500, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 6);
        let run = |parallel: bool, workers: usize, batch_size: usize| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 6 },
                EngineConfig {
                    max_supersteps: 6,
                    sync_policy: SyncPolicy::AtLeastOneOutEdge { ps: 0.5 },
                    parallel,
                    workers,
                    batch_size,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![
                (0u32, 40_000u64),
                (3u32, 1_000u64),
            ]))
        };
        let baseline = run(false, 0, 0);
        let tokens = |out: &EngineOutput<TokenState>| {
            out.states
                .iter()
                .map(|s| (s.arrived, s.forwarding))
                .collect::<Vec<_>>()
        };
        for (parallel, workers, batch_size) in
            [(true, 2, 7), (true, 3, 64), (true, 8, 1), (false, 0, 13)]
        {
            let other = run(parallel, workers, batch_size);
            assert_eq!(
                tokens(&baseline),
                tokens(&other),
                "workers={workers} batch={batch_size}"
            );
            assert_eq!(baseline.metrics.total_bytes(), other.metrics.total_bytes());
            assert_eq!(baseline.metrics.total_ops(), other.metrics.total_ops());
            assert_eq!(
                baseline.metrics.total_routed_messages(),
                other.metrics.total_routed_messages()
            );
        }
    }

    #[test]
    fn staleness_zero_runs_are_bit_identical_to_the_default_config() {
        let mut rng = SmallRng::seed_from_u64(17);
        let graph = rmat(400, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 5);
        let run = |staleness: usize| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 6 },
                EngineConfig {
                    max_supersteps: 6,
                    sync_policy: SyncPolicy::AtLeastOneOutEdge { ps: 0.6 },
                    staleness,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![(0u32, 8_000u64)]))
        };
        let sync = run(0);
        let explicit = run(0);
        let tokens = |out: &EngineOutput<TokenState>| {
            out.states
                .iter()
                .map(|s| (s.arrived, s.forwarding))
                .collect::<Vec<_>>()
        };
        assert_eq!(tokens(&sync), tokens(&explicit));
        assert_eq!(sync.metrics.total_bytes(), explicit.metrics.total_bytes());
        assert_eq!(sync.metrics.total_staleness_lag(), 0);
        assert_eq!(sync.metrics.max_inbox_depth(), 0);
        assert_eq!(sync.metrics.total_barrier_wait_avoided_seconds(), 0.0);
    }

    #[test]
    fn tokens_are_conserved_under_staleness() {
        let mut rng = SmallRng::seed_from_u64(29);
        let graph = rmat(350, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 6);
        for staleness in [1usize, 2, 5] {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 8 },
                EngineConfig {
                    max_supersteps: 8,
                    staleness,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            let out = engine.run(InitialActivation::Messages(vec![
                (0u32, 10_000u64),
                (9u32, 500u64),
            ]));
            // Deliveries near the horizon are clamped into the final superstep, so
            // no token is ever lost to a late channel.
            assert_eq!(
                total_tokens(&out.states),
                10_500,
                "staleness {staleness} lost tokens"
            );
            // Superstep indices stay strictly increasing even when empty supersteps
            // are fast-forwarded over.
            assert!(out
                .metrics
                .supersteps
                .windows(2)
                .all(|w| w[0].superstep < w[1].superstep));
        }
    }

    #[test]
    fn fixed_staleness_is_bit_identical_across_worker_counts() {
        let mut rng = SmallRng::seed_from_u64(37);
        let graph = rmat(500, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 6);
        let run = |parallel: bool, workers: usize, batch_size: usize| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 7 },
                EngineConfig {
                    max_supersteps: 7,
                    sync_policy: SyncPolicy::AtLeastOneOutEdge { ps: 0.5 },
                    staleness: 2,
                    parallel,
                    workers,
                    batch_size,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![
                (0u32, 40_000u64),
                (3u32, 1_000u64),
            ]))
        };
        let baseline = run(false, 0, 0);
        let tokens = |out: &EngineOutput<TokenState>| {
            out.states
                .iter()
                .map(|s| (s.arrived, s.forwarding))
                .collect::<Vec<_>>()
        };
        for (parallel, workers, batch_size) in [(true, 2, 7), (true, 3, 64), (true, 8, 1)] {
            let other = run(parallel, workers, batch_size);
            assert_eq!(
                tokens(&baseline),
                tokens(&other),
                "workers={workers} batch={batch_size}"
            );
            assert_eq!(baseline.metrics.total_bytes(), other.metrics.total_bytes());
            assert_eq!(baseline.metrics.total_ops(), other.metrics.total_ops());
            assert_eq!(
                baseline.metrics.total_staleness_lag(),
                other.metrics.total_staleness_lag()
            );
            assert_eq!(
                baseline.metrics.max_inbox_depth(),
                other.metrics.max_inbox_depth()
            );
        }
    }

    #[test]
    fn staleness_defers_deliveries_and_avoids_barrier_wait() {
        let mut rng = SmallRng::seed_from_u64(41);
        let graph = rmat(400, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 8);
        let run = |staleness: usize| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 8 },
                EngineConfig {
                    max_supersteps: 8,
                    staleness,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![(0u32, 20_000u64)]))
        };
        let stale = run(2);
        // With eight machines and two supersteps of slack, some channel is delayed…
        assert!(stale.metrics.total_staleness_lag() > 0);
        assert!(stale.metrics.max_inbox_depth() > 0);
        // …and the pipelined clock beats the barriered one on at least part of the run.
        assert!(stale.metrics.total_barrier_wait_avoided_seconds() > 0.0);
        // The per-superstep simulated times are watermark increments: non-negative,
        // summing to the run's makespan.
        assert!(stale
            .metrics
            .supersteps
            .iter()
            .all(|s| s.simulated_seconds >= 0.0));
    }

    #[test]
    fn metrics_record_replication_factor() {
        let graph = star(100);
        let pg = partitioned(&graph, 8);
        let engine = Engine::new(&pg, TokenForward { steps: 1 }, EngineConfig::default()).unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 1u64)]));
        assert!(out.metrics.replication_factor >= 1.0);
        assert_eq!(out.metrics.num_machines, 8);
    }
}
