//! The synchronous (BSP) engine executing vertex programs over a partitioned graph.
//!
//! Each superstep proceeds through the phases described in [`crate::program`]:
//! gather → apply → sync → scatter → message routing. All cross-machine data movement
//! is accounted in [`RunMetrics`]; the partial-synchronization policy decides which
//! mirrors receive fresh state and may therefore participate in scatter.
//!
//! Two execution modes are provided. The default single-threaded mode processes
//! machines one after another; the multi-threaded mode runs the per-machine phases on
//! one worker thread per simulated machine, joining at phase barriers. Both modes make
//! every random decision through counter-mode hashes of `(seed, superstep, vertex,
//! machine)`, so they produce identical results for identical configurations.

use std::collections::HashMap;
use std::time::Instant;

use frogwild_graph::VertexId;

use crate::cluster::MachineId;
use crate::metrics::{CostModel, NetworkStats, RunMetrics, SuperstepMetrics, WorkStats};
use crate::placement::{PartitionedGraph, Shard};
use crate::program::{ApplyContext, EdgeDirection, ScatterContext, VertexProgram};
use crate::rng;
use crate::sync::SyncPolicy;

/// Domain-separation tags for the deterministic randomness streams.
const TAG_APPLY: u64 = 0xA111;
const TAG_SYNC: u64 = 0x5C2;
const TAG_SCATTER: u64 = 0x5CA3;
const TAG_FORCE: u64 = 0xF0C4;

/// Per-machine superstep results: the (vertex, payload) pairs a machine produced,
/// plus the number of work operations it performed.
type PerMachine<T> = Vec<(Vec<(VertexId, T)>, u64)>;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Mirror synchronization policy (the paper's `p_s`).
    pub sync_policy: SyncPolicy,
    /// Cost model converting counted work and traffic into simulated time.
    pub cost_model: CostModel,
    /// Maximum number of supersteps to execute.
    pub max_supersteps: usize,
    /// Seed for all engine randomness.
    pub seed: u64,
    /// If `true`, per-machine phases run on one thread per simulated machine.
    pub parallel: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sync_policy: SyncPolicy::Full,
            cost_model: CostModel::default(),
            max_supersteps: 100,
            seed: 0xF20C,
            parallel: false,
        }
    }
}

/// How the first superstep's active set is formed.
pub enum InitialActivation<M> {
    /// Every vertex is active in superstep 0 with no incoming message
    /// (how the standard PageRank starts).
    AllVertices,
    /// The listed messages are delivered before superstep 0; their recipients form the
    /// initial active set (how FrogWild seeds its walkers). Delivery is local — it does
    /// not count as network traffic, matching the paper's implementation where each
    /// machine births its own share of the walkers.
    Messages(Vec<(VertexId, M)>),
}

/// Result of an engine run.
pub struct EngineOutput<S> {
    /// Final state of every vertex, indexed by vertex id (taken from the masters).
    pub states: Vec<S>,
    /// Cost metrics of the run.
    pub metrics: RunMetrics,
}

/// Work prepared centrally for one machine's apply phase.
struct ApplyTask<P: VertexProgram> {
    local: u32,
    vertex: VertexId,
    accum: Option<P::Accum>,
    message: Option<P::Message>,
}

/// Work prepared centrally for one machine's scatter phase.
struct ScatterTask {
    local: u32,
    vertex: VertexId,
    replica_rank: usize,
    num_participating: usize,
}

/// A state refresh a machine must apply to its mirror cache before scattering.
struct SyncReceive<S> {
    local: u32,
    state: S,
}

/// The synchronous engine. Borrows the partitioned graph; owns the program and config.
pub struct Engine<'g, P: VertexProgram> {
    graph: &'g PartitionedGraph,
    program: P,
    config: EngineConfig,
}

impl<'g, P: VertexProgram> Engine<'g, P> {
    /// Creates an engine for `program` over `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`](frogwild_graph::Error::InvalidConfig) when the
    /// configured synchronization policy carries a probability outside `[0, 1]`.
    pub fn new(
        graph: &'g PartitionedGraph,
        program: P,
        config: EngineConfig,
    ) -> Result<Self, frogwild_graph::Error> {
        config.sync_policy.validate()?;
        Ok(Engine {
            graph,
            program,
            config,
        })
    }

    /// Access to the program (e.g. to read configuration back out).
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Runs the program to completion (quiescence or `max_supersteps`) and returns the
    /// final per-vertex states plus the run metrics.
    pub fn run(&self, initial: InitialActivation<P::Message>) -> EngineOutput<P::State> {
        let num_machines = self.graph.num_machines();
        let num_vertices = self.graph.num_vertices();

        // Replica state caches: caches[machine][local index].
        let mut caches: Vec<Vec<P::State>> = self
            .graph
            .shards()
            .iter()
            .map(|s| vec![P::State::default(); s.num_local_vertices()])
            .collect();

        // Message inboxes: inboxes[machine] maps local index (of a locally mastered
        // vertex) to the combined incoming message.
        let mut inboxes: Vec<HashMap<u32, P::Message>> =
            (0..num_machines).map(|_| HashMap::new()).collect();

        // Initial active set.
        let mut active: Vec<VertexId> = match initial {
            InitialActivation::AllVertices => (0..num_vertices as VertexId).collect(),
            InitialActivation::Messages(messages) => {
                let mut seen: Vec<(VertexId, P::Message)> = messages;
                // Combine per destination, then deliver to masters locally.
                seen.sort_by_key(|(v, _)| *v);
                let mut active = Vec::new();
                let mut iter = seen.into_iter();
                let mut current: Option<(VertexId, P::Message)> = iter.next();
                while let Some((v, msg)) = current.take() {
                    let mut combined = msg;
                    loop {
                        match iter.next() {
                            Some((v2, m2)) if v2 == v => {
                                combined = self.program.combine_messages(combined, m2);
                            }
                            next => {
                                current = next;
                                break;
                            }
                        }
                    }
                    let master = self.graph.placement().master(v);
                    let local = self
                        .graph
                        .shard(master)
                        .local_index(v)
                        .expect("master shard holds the vertex");
                    inboxes[master.index()].insert(local, combined);
                    active.push(v);
                    if current.is_none() {
                        break;
                    }
                }
                active
            }
        };
        active.sort_unstable();
        active.dedup();

        let mut metrics = RunMetrics {
            replication_factor: self.graph.placement().replication_factor(),
            num_machines,
            ..RunMetrics::default()
        };

        for superstep in 0..self.config.max_supersteps {
            if active.is_empty() {
                break;
            }
            let start = Instant::now();
            let (step_metrics, next_active) =
                self.superstep(superstep, &active, &mut caches, &mut inboxes);
            let host_seconds = start.elapsed().as_secs_f64();
            metrics.supersteps.push(SuperstepMetrics {
                host_seconds,
                ..step_metrics
            });
            active = next_active;
        }

        // Collect final states from the masters.
        let placement = self.graph.placement();
        let states: Vec<P::State> = (0..num_vertices as VertexId)
            .map(|v| {
                let m = placement.master(v);
                let local = self.graph.shard(m).local_index(v).expect("master replica");
                caches[m.index()][local as usize].clone()
            })
            .collect();

        EngineOutput { states, metrics }
    }

    /// Executes one superstep; returns its metrics and the next active set.
    fn superstep(
        &self,
        superstep: usize,
        active: &[VertexId],
        caches: &mut [Vec<P::State>],
        inboxes: &mut [HashMap<u32, P::Message>],
    ) -> (SuperstepMetrics, Vec<VertexId>) {
        let num_machines = self.graph.num_machines();
        let placement = self.graph.placement();
        let mut net = NetworkStats::new(num_machines);
        let mut work = WorkStats::new(num_machines);

        // ------------------------------------------------------------------ gather --
        let mut accums: Vec<HashMap<u32, P::Accum>> =
            (0..num_machines).map(|_| HashMap::new()).collect();
        if self.program.gather_direction() == EdgeDirection::In {
            // Which local vertices must gather on each machine.
            let mut gather_tasks: Vec<Vec<u32>> = vec![Vec::new(); num_machines];
            for &v in active {
                for &m in placement.replicas(v) {
                    if let Some(local) = self.graph.shard(m).local_index(v) {
                        if self.graph.shard(m).local_in_degree(local) > 0 {
                            gather_tasks[m.index()].push(local);
                        }
                    }
                }
            }
            let per_machine: PerMachine<P::Accum> =
                self.run_per_machine(caches, |machine, cache| {
                    let shard = self.graph.shard(MachineId::from(machine));
                    gather_machine(
                        &self.program,
                        self.graph,
                        shard,
                        cache,
                        &gather_tasks[machine],
                    )
                });
            for (machine, (partials, ops)) in per_machine.into_iter().enumerate() {
                work.gather_ops += ops;
                work.ops_per_machine[machine] += ops;
                for (vertex, accum) in partials {
                    let master = placement.master(vertex);
                    if master.index() != machine {
                        net.record(
                            machine,
                            (self.program.accum_bytes()
                                + self.config.cost_model.message_header_bytes)
                                as u64,
                        );
                    }
                    let local = self
                        .graph
                        .shard(master)
                        .local_index(vertex)
                        .expect("master replica");
                    match accums[master.index()].entry(local) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let combined = self.program.combine_accums(e.get().clone(), accum);
                            e.insert(combined);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(accum);
                        }
                    }
                }
            }
        }

        // ------------------------------------------------------------------- apply --
        let mut apply_tasks: Vec<Vec<ApplyTask<P>>> =
            (0..num_machines).map(|_| Vec::new()).collect();
        for &v in active {
            let master = placement.master(v);
            let local = self
                .graph
                .shard(master)
                .local_index(v)
                .expect("master replica");
            let accum = accums[master.index()].remove(&local);
            let message = inboxes[master.index()].remove(&local);
            apply_tasks[master.index()].push(ApplyTask {
                local,
                vertex: v,
                accum,
                message,
            });
        }
        let apply_counts: Vec<u64> = self.run_per_machine_mut(caches, |machine, cache| {
            apply_machine(
                &self.program,
                self.graph,
                cache,
                &apply_tasks[machine],
                superstep,
                self.config.seed,
            )
        });
        for (machine, ops) in apply_counts.into_iter().enumerate() {
            work.apply_ops += ops;
            work.ops_per_machine[machine] += ops;
        }

        // ----------------------------------------------------- sync decision (central) --
        let ps = self.config.sync_policy.probability();
        let mut sync_receives: Vec<Vec<SyncReceive<P::State>>> =
            (0..num_machines).map(|_| Vec::new()).collect();
        let mut scatter_tasks: Vec<Vec<ScatterTask>> =
            (0..num_machines).map(|_| Vec::new()).collect();

        for &v in active {
            let master = placement.master(v);
            let master_local = self
                .graph
                .shard(master)
                .local_index(v)
                .expect("master replica");
            let master_state = &caches[master.index()][master_local as usize];
            if !self.program.needs_scatter(v, master_state) {
                continue;
            }
            let replicas = placement.replicas(v);
            // Decide which replicas are synchronized (and hence may scatter).
            let mut participating: Vec<MachineId> = Vec::with_capacity(replicas.len());
            for &r in replicas {
                if r == master {
                    participating.push(r);
                    continue;
                }
                let synced = match self.config.sync_policy {
                    SyncPolicy::Full => true,
                    SyncPolicy::Independent { .. } | SyncPolicy::AtLeastOneOutEdge { .. } => {
                        rng::coin(
                            ps,
                            &[
                                self.config.seed,
                                superstep as u64,
                                v as u64,
                                r.index() as u64,
                                TAG_SYNC,
                            ],
                        )
                    }
                };
                if synced {
                    participating.push(r);
                    work.sync_ops += 1;
                    work.ops_per_machine[master.index()] += 1;
                    net.record(
                        master.index(),
                        (self.program.state_bytes() + self.config.cost_model.message_header_bytes)
                            as u64,
                    );
                } else {
                    work.skipped_syncs += 1;
                }
            }

            // "At least one out-edge per node": if no participating replica owns an
            // out-edge while the vertex does have out-edges, force-sync one replica
            // that does.
            if self.config.sync_policy.guarantees_out_edge() && self.graph.out_degree(v) > 0 {
                let has_out = |m: MachineId| {
                    let shard = self.graph.shard(m);
                    shard
                        .local_index(v)
                        .map(|l| shard.local_out_degree(l) > 0)
                        .unwrap_or(false)
                };
                if !participating.iter().any(|&m| has_out(m)) {
                    let candidates: Vec<MachineId> =
                        replicas.iter().copied().filter(|&m| has_out(m)).collect();
                    if !candidates.is_empty() {
                        let pick = candidates[rng::pick_index(
                            candidates.len(),
                            &[self.config.seed, superstep as u64, v as u64, TAG_FORCE],
                        )];
                        participating.push(pick);
                        if pick != master {
                            work.sync_ops += 1;
                            work.skipped_syncs = work.skipped_syncs.saturating_sub(1);
                            work.ops_per_machine[master.index()] += 1;
                            net.record(
                                master.index(),
                                (self.program.state_bytes()
                                    + self.config.cost_model.message_header_bytes)
                                    as u64,
                            );
                        }
                        participating.sort_unstable();
                    }
                }
            }

            // Queue state refreshes for participating non-master machines.
            for &m in &participating {
                if m == master {
                    continue;
                }
                let local = self
                    .graph
                    .shard(m)
                    .local_index(v)
                    .expect("replica exists on participating machine");
                sync_receives[m.index()].push(SyncReceive {
                    local,
                    state: master_state.clone(),
                });
            }

            // Scatter tasks: participating replicas that own at least one out-edge.
            let scatterers: Vec<MachineId> = participating
                .iter()
                .copied()
                .filter(|&m| {
                    let shard = self.graph.shard(m);
                    shard
                        .local_index(v)
                        .map(|l| shard.local_out_degree(l) > 0)
                        .unwrap_or(false)
                })
                .collect();
            let num_participating = scatterers.len();
            for (rank, &m) in scatterers.iter().enumerate() {
                let local = self.graph.shard(m).local_index(v).expect("replica");
                scatter_tasks[m.index()].push(ScatterTask {
                    local,
                    vertex: v,
                    replica_rank: rank,
                    num_participating,
                });
            }
        }

        // ----------------------------------------------------- sync apply + scatter --
        let scatter_results: PerMachine<P::Message> =
            self.run_per_machine_mut(caches, |machine, cache| {
                let shard = self.graph.shard(MachineId::from(machine));
                scatter_machine(
                    &self.program,
                    self.graph,
                    shard,
                    cache,
                    &sync_receives[machine],
                    &scatter_tasks[machine],
                    superstep,
                    self.config.seed,
                    ps,
                )
            });

        // ----------------------------------------------------------- route messages --
        let mut next_inbox_updates: Vec<(usize, u32, P::Message, bool)> = Vec::new();
        for (machine, (outbox, ops)) in scatter_results.into_iter().enumerate() {
            work.scatter_ops += ops;
            work.ops_per_machine[machine] += ops;
            // Combine per destination within the sending machine (walkers headed to the
            // same vertex travel as one message — the paper's first optimization).
            let mut combined: Vec<(VertexId, P::Message)> = outbox;
            combined.sort_by_key(|(v, _)| *v);
            let mut merged: Vec<(VertexId, P::Message)> = Vec::with_capacity(combined.len());
            for (v, msg) in combined {
                match merged.last_mut() {
                    Some((lv, lm)) if *lv == v => {
                        *lm = self.program.combine_messages(lm.clone(), msg);
                    }
                    _ => merged.push((v, msg)),
                }
            }
            for (dst, msg) in merged {
                let master = placement.master(dst);
                let crossed = master.index() != machine;
                if crossed {
                    net.record(
                        machine,
                        (self.program.message_bytes() + self.config.cost_model.message_header_bytes)
                            as u64,
                    );
                }
                let local = self
                    .graph
                    .shard(master)
                    .local_index(dst)
                    .expect("master replica");
                next_inbox_updates.push((master.index(), local, msg, crossed));
            }
        }
        let mut next_active: Vec<VertexId> = Vec::new();
        for (machine, local, msg, _) in next_inbox_updates {
            let vertex = self.graph.shard(MachineId::from(machine)).global_id(local);
            match inboxes[machine].entry(local) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let combined = self.program.combine_messages(e.get().clone(), msg);
                    e.insert(combined);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(msg);
                    next_active.push(vertex);
                }
            }
        }
        next_active.sort_unstable();

        let simulated_seconds = self.config.cost_model.superstep_seconds(&work, &net);
        let step_metrics = SuperstepMetrics {
            superstep,
            active_vertices: active.len(),
            network: net,
            work,
            simulated_seconds,
            host_seconds: 0.0,
        };
        (step_metrics, next_active)
    }

    /// Runs a read-only per-machine closure either serially or on one thread per
    /// machine, returning results in machine order.
    fn run_per_machine<T, F>(&self, caches: &[Vec<P::State>], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &Vec<P::State>) -> T + Sync,
    {
        if self.config.parallel && self.graph.num_machines() > 1 {
            let f = &f;
            std::thread::scope(|scope| {
                let handles: Vec<_> = caches
                    .iter()
                    .enumerate()
                    .map(|(machine, cache)| scope.spawn(move || f(machine, cache)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("machine worker panicked"))
                    .collect()
            })
        } else {
            caches
                .iter()
                .enumerate()
                .map(|(machine, cache)| f(machine, cache))
                .collect()
        }
    }

    /// Runs a mutating per-machine closure either serially or on one thread per
    /// machine, returning results in machine order.
    fn run_per_machine_mut<T, F>(&self, caches: &mut [Vec<P::State>], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Vec<P::State>) -> T + Sync,
    {
        if self.config.parallel && self.graph.num_machines() > 1 {
            let f = &f;
            std::thread::scope(|scope| {
                let handles: Vec<_> = caches
                    .iter_mut()
                    .enumerate()
                    .map(|(machine, cache)| scope.spawn(move || f(machine, cache)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("machine worker panicked"))
                    .collect()
            })
        } else {
            caches
                .iter_mut()
                .enumerate()
                .map(|(machine, cache)| f(machine, cache))
                .collect()
        }
    }
}

/// Per-machine gather: partial accumulations over locally-owned in-edges of the listed
/// local vertices. Returns `(vertex, partial)` pairs plus the number of edge operations.
fn gather_machine<P: VertexProgram>(
    program: &P,
    graph: &PartitionedGraph,
    shard: &Shard,
    cache: &[P::State],
    locals: &[u32],
) -> (Vec<(VertexId, P::Accum)>, u64) {
    let mut out = Vec::new();
    let mut ops = 0u64;
    for &local in locals {
        let vertex = shard.global_id(local);
        let dst_state = &cache[local as usize];
        let mut acc: Option<P::Accum> = None;
        for &src_local in shard.local_in_neighbors(local) {
            ops += 1;
            let src = shard.global_id(src_local);
            let src_state = &cache[src_local as usize];
            if let Some(partial) =
                program.gather_edge(src, vertex, src_state, dst_state, graph.out_degree(src))
            {
                acc = Some(match acc {
                    None => partial,
                    Some(existing) => program.combine_accums(existing, partial),
                });
            }
        }
        if let Some(acc) = acc {
            out.push((vertex, acc));
        }
    }
    (out, ops)
}

/// Per-machine apply: runs `apply` for each locally-mastered active vertex. Returns the
/// number of apply operations.
fn apply_machine<P: VertexProgram>(
    program: &P,
    graph: &PartitionedGraph,
    cache: &mut [P::State],
    tasks: &[ApplyTask<P>],
    superstep: usize,
    seed: u64,
) -> u64 {
    for task in tasks {
        let mut task_rng =
            rng::derived_rng(&[seed, superstep as u64, task.vertex as u64, TAG_APPLY]);
        let mut ctx = ApplyContext {
            superstep,
            num_vertices: graph.num_vertices(),
            out_degree: graph.out_degree(task.vertex),
            rng: &mut task_rng,
        };
        program.apply(
            &mut ctx,
            task.vertex,
            &mut cache[task.local as usize],
            task.accum.clone(),
            task.message.clone(),
        );
    }
    tasks.len() as u64
}

/// Per-machine sync-apply and scatter. Refreshes the mirror cache with the received
/// states, then runs `scatter_replica` for every scatter task. Returns the emitted
/// messages and the number of edge operations considered.
#[allow(clippy::too_many_arguments)]
fn scatter_machine<P: VertexProgram>(
    program: &P,
    graph: &PartitionedGraph,
    shard: &Shard,
    cache: &mut [P::State],
    receives: &[SyncReceive<P::State>],
    tasks: &[ScatterTask],
    superstep: usize,
    seed: u64,
    sync_probability: f64,
) -> (Vec<(VertexId, P::Message)>, u64) {
    for recv in receives {
        cache[recv.local as usize] = recv.state.clone();
    }
    let mut outbox: Vec<(VertexId, P::Message)> = Vec::new();
    let mut ops = 0u64;
    for task in tasks {
        let local_neighbors: Vec<VertexId> = shard
            .local_out_neighbors(task.local)
            .iter()
            .map(|&l| shard.global_id(l))
            .collect();
        ops += local_neighbors.len() as u64;
        let mut task_rng = rng::derived_rng(&[
            seed,
            superstep as u64,
            task.vertex as u64,
            shard.machine.index() as u64,
            TAG_SCATTER,
        ]);
        let mut ctx = ScatterContext {
            superstep,
            machine: shard.machine,
            replica_rank: task.replica_rank,
            num_participating: task.num_participating,
            global_out_degree: graph.out_degree(task.vertex),
            local_out_degree: local_neighbors.len(),
            sync_probability,
            rng: &mut task_rng,
        };
        let state = &cache[task.local as usize];
        program.scatter_replica(
            &mut ctx,
            task.vertex,
            state,
            &local_neighbors,
            &mut |dst, msg| {
                outbox.push((dst, msg));
            },
        );
    }
    (outbox, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::ObliviousPartitioner;
    use frogwild_graph::generators::simple::{cycle, star};
    use frogwild_graph::generators::{rmat, RmatParams};
    use frogwild_graph::DiGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A token-passing program: each vertex forwards the tokens it received to its
    /// out-neighbors; at the final step tokens are absorbed into `arrived`. On any
    /// graph with full out-edge coverage the total arrived count equals the number of
    /// tokens injected, which pins down the engine's message routing, splitting and
    /// activation logic.
    struct TokenForward {
        steps: usize,
    }

    #[derive(Clone, Default)]
    struct TokenState {
        /// Tokens this vertex will forward during the current superstep's scatter.
        forwarding: u64,
        /// Tokens absorbed at the final step.
        arrived: u64,
    }

    impl VertexProgram for TokenForward {
        type State = TokenState;
        type Message = u64;
        type Accum = ();

        fn combine_messages(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn combine_accums(&self, _a: (), _b: ()) {}

        fn apply(
            &self,
            ctx: &mut ApplyContext<'_>,
            _vertex: VertexId,
            state: &mut TokenState,
            _accum: Option<()>,
            message: Option<u64>,
        ) {
            let incoming = message.unwrap_or(0);
            if ctx.superstep + 1 >= self.steps {
                state.arrived += incoming;
                state.forwarding = 0;
            } else {
                state.forwarding = incoming;
            }
        }

        fn needs_scatter(&self, _vertex: VertexId, state: &TokenState) -> bool {
            state.forwarding > 0
        }

        fn scatter_replica(
            &self,
            ctx: &mut ScatterContext<'_>,
            _vertex: VertexId,
            state: &TokenState,
            local_out_neighbors: &[VertexId],
            emit: &mut dyn FnMut(VertexId, u64),
        ) {
            // Split the tokens across the participating replicas, then evenly across
            // this replica's local out-edges (remainder to the first edges).
            if local_out_neighbors.is_empty() {
                return;
            }
            let share = split_share(state.forwarding, ctx.num_participating, ctx.replica_rank);
            if share == 0 {
                return;
            }
            let per_edge = share / local_out_neighbors.len() as u64;
            let mut remainder = share % local_out_neighbors.len() as u64;
            for &dst in local_out_neighbors {
                let mut amount = per_edge;
                if remainder > 0 {
                    amount += 1;
                    remainder -= 1;
                }
                if amount > 0 {
                    emit(dst, amount);
                }
            }
        }
    }

    /// Evenly splits `total` across `parts`, returning the share of `index`.
    fn split_share(total: u64, parts: usize, index: usize) -> u64 {
        let parts = parts as u64;
        let base = total / parts;
        let extra = total % parts;
        base + if (index as u64) < extra { 1 } else { 0 }
    }

    fn partitioned(graph: &DiGraph, machines: usize) -> PartitionedGraph {
        PartitionedGraph::build(graph, machines, &ObliviousPartitioner, 99)
    }

    fn total_tokens(states: &[TokenState]) -> u64 {
        states.iter().map(|s| s.arrived).sum()
    }

    #[test]
    fn tokens_are_conserved_on_a_cycle() {
        let graph = cycle(50);
        let pg = partitioned(&graph, 4);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 10 },
            EngineConfig {
                max_supersteps: 10,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let initial = vec![(0u32, 1000u64), (25u32, 500u64)];
        let out = engine.run(InitialActivation::Messages(initial));
        assert_eq!(total_tokens(&out.states), 1500);
        assert_eq!(out.metrics.num_supersteps(), 10);
    }

    #[test]
    fn tokens_move_along_the_cycle() {
        let graph = cycle(10);
        let pg = partitioned(&graph, 2);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 3 },
            EngineConfig {
                max_supersteps: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 7u64)]));
        // The tokens are injected at vertex 0, forwarded twice, and absorbed at the
        // final superstep two hops downstream.
        assert_eq!(out.states[2].arrived, 7);
        assert_eq!(total_tokens(&out.states), 7);
    }

    #[test]
    fn engine_stops_when_quiescent() {
        let graph = cycle(10);
        let pg = partitioned(&graph, 2);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 2 },
            EngineConfig {
                max_supersteps: 50,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 5u64)]));
        // steps=2 means the program stops scattering after superstep 1; one more
        // superstep delivers the final messages and then the engine finds no work.
        assert!(out.metrics.num_supersteps() <= 3);
    }

    #[test]
    fn no_initial_messages_means_no_work() {
        let graph = cycle(10);
        let pg = partitioned(&graph, 2);
        let engine = Engine::new(&pg, TokenForward { steps: 5 }, EngineConfig::default()).unwrap();
        let out = engine.run(InitialActivation::Messages(vec![]));
        assert_eq!(out.metrics.num_supersteps(), 0);
        assert_eq!(total_tokens(&out.states), 0);
    }

    #[test]
    fn single_machine_run_has_no_network_traffic() {
        let graph = cycle(30);
        let pg = partitioned(&graph, 1);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 5 },
            EngineConfig {
                max_supersteps: 5,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 100u64)]));
        assert_eq!(out.metrics.total_bytes(), 0);
        assert_eq!(total_tokens(&out.states), 100);
    }

    #[test]
    fn multi_machine_run_counts_network_traffic() {
        let graph = cycle(30);
        let pg = partitioned(&graph, 6);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 5 },
            EngineConfig {
                max_supersteps: 5,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 100u64)]));
        assert!(out.metrics.total_bytes() > 0);
        assert!(out.metrics.total_messages() > 0);
        assert!(out.metrics.total_simulated_seconds() > 0.0);
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let mut rng = SmallRng::seed_from_u64(5);
        let graph = rmat(300, RmatParams::default(), &mut rng);
        let pg = partitioned(&graph, 4);
        let run = |parallel: bool| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 6 },
                EngineConfig {
                    max_supersteps: 6,
                    parallel,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![
                (0u32, 5000u64),
                (7u32, 300u64),
            ]))
        };
        let serial = run(false);
        let parallel = run(true);
        let serial_tokens: Vec<u64> = serial
            .states
            .iter()
            .map(|s| s.arrived + s.forwarding)
            .collect();
        let parallel_tokens: Vec<u64> = parallel
            .states
            .iter()
            .map(|s| s.arrived + s.forwarding)
            .collect();
        assert_eq!(serial_tokens, parallel_tokens);
        assert_eq!(serial.metrics.total_bytes(), parallel.metrics.total_bytes());
        assert_eq!(serial.metrics.total_ops(), parallel.metrics.total_ops());
    }

    #[test]
    fn partial_sync_reduces_synchronizations_and_traffic() {
        let graph = star(400);
        let pg = partitioned(&graph, 8);
        let run = |policy: SyncPolicy| {
            let engine = Engine::new(
                &pg,
                TokenForward { steps: 4 },
                EngineConfig {
                    max_supersteps: 4,
                    sync_policy: policy,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            engine.run(InitialActivation::Messages(vec![(0u32, 10_000u64)]))
        };
        let full = run(SyncPolicy::Full);
        let partial = run(SyncPolicy::AtLeastOneOutEdge { ps: 0.1 });
        assert!(partial.metrics.total_syncs() < full.metrics.total_syncs());
        assert!(partial.metrics.total_bytes() < full.metrics.total_bytes());
        assert_eq!(full.metrics.total_skipped_syncs(), 0);
        assert!(partial.metrics.total_skipped_syncs() > 0);
        // tokens are conserved regardless of the sync policy
        assert_eq!(total_tokens(&full.states), 10_000);
        assert_eq!(total_tokens(&partial.states), 10_000);
    }

    #[test]
    fn all_vertices_activation_applies_everyone() {
        let graph = cycle(12);
        let pg = partitioned(&graph, 3);
        let engine = Engine::new(
            &pg,
            TokenForward { steps: 1 },
            EngineConfig {
                max_supersteps: 1,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let out = engine.run(InitialActivation::AllVertices);
        assert_eq!(out.metrics.supersteps[0].active_vertices, 12);
        assert_eq!(out.metrics.supersteps[0].work.apply_ops, 12);
    }

    #[test]
    fn metrics_record_replication_factor() {
        let graph = star(100);
        let pg = partitioned(&graph, 8);
        let engine = Engine::new(&pg, TokenForward { steps: 1 }, EngineConfig::default()).unwrap();
        let out = engine.run(InitialActivation::Messages(vec![(0u32, 1u64)]));
        assert!(out.metrics.replication_factor >= 1.0);
        assert_eq!(out.metrics.num_machines, 8);
    }
}
