//! Cluster description: machine identifiers and cluster-wide configuration.

use serde::{Deserialize, Serialize};

/// Identifier of a simulated machine (cluster node). The paper's experiments use
/// clusters of 12–24 machines; `u16` leaves generous headroom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u16);

impl MachineId {
    /// The machine's index as a `usize`, for indexing per-machine vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<usize> for MachineId {
    fn from(v: usize) -> Self {
        assert!(v <= u16::MAX as usize, "machine index {v} too large");
        MachineId(v as u16)
    }
}

/// Static description of the simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of machines in the cluster. The paper sweeps 12, 16, 20 and 24.
    pub num_machines: usize,
    /// Seed used to derive all per-machine, per-superstep randomness (partitioning
    /// hashes, synchronization coins, walker moves). Two runs with the same seed and
    /// configuration produce bit-identical results.
    pub seed: u64,
}

impl ClusterConfig {
    /// A cluster of `num_machines` machines with the given seed.
    pub fn new(num_machines: usize, seed: u64) -> Self {
        assert!(num_machines > 0, "cluster needs at least one machine");
        assert!(
            num_machines <= u16::MAX as usize,
            "at most {} machines supported",
            u16::MAX
        );
        ClusterConfig { num_machines, seed }
    }

    /// Iterator over all machine ids in the cluster.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> {
        (0..self.num_machines).map(MachineId::from)
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // 16 machines matches the cluster size used for the accuracy figures (Fig. 2).
        ClusterConfig::new(16, 0x5EED_F20C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_display_and_index() {
        let m = MachineId(3);
        assert_eq!(m.index(), 3);
        assert_eq!(format!("{m}"), "m3");
        assert_eq!(MachineId::from(7usize), MachineId(7));
    }

    #[test]
    fn cluster_machine_iteration() {
        let c = ClusterConfig::new(4, 1);
        let ids: Vec<_> = c.machines().collect();
        assert_eq!(
            ids,
            vec![MachineId(0), MachineId(1), MachineId(2), MachineId(3)]
        );
    }

    #[test]
    fn default_cluster_is_valid() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_machines, 16);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = ClusterConfig::new(0, 1);
    }
}
