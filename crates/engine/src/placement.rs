//! Master/mirror placement and per-machine graph shards.
//!
//! Given an edge-to-machine assignment (a vertex-cut), this module derives the data
//! layout a PowerGraph-like engine works with:
//!
//! * every vertex has a replica on each machine owning at least one of its edges;
//! * exactly one replica is designated the **master** (it holds the authoritative vertex
//!   state, runs `apply`, and pushes updates to the mirrors);
//! * every machine holds a [`Shard`]: its local edges in CSR form over *local* vertex
//!   indices, plus lookup tables between local and global ids.
//!
//! The replication factor reported by [`VertexPlacement::replication_factor`] is the
//! quantity that drives the per-iteration network cost of the standard PageRank — the
//! cost the paper's partial synchronization reduces.

// lint:allow-file(indexing, build-time CSR assembly; every local index is created by the counting pass right above its use)

use crate::cluster::MachineId;
use crate::partition::{EdgeAssignment, Partitioner};
use crate::rng;
use frogwild_graph::{DiGraph, VertexId};

/// Where each vertex's master lives and which machines hold replicas.
#[derive(Clone, Debug)]
pub struct VertexPlacement {
    /// Master machine of every vertex.
    master: Vec<MachineId>,
    /// Sorted list of machines holding a replica of every vertex (always contains the
    /// master's machine).
    replicas: Vec<Vec<MachineId>>,
}

impl VertexPlacement {
    /// Master machine of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> MachineId {
        self.master[v as usize]
    }

    /// Machines holding a replica of `v` (sorted, includes the master's machine).
    #[inline]
    pub fn replicas(&self, v: VertexId) -> &[MachineId] {
        &self.replicas[v as usize]
    }

    /// Mirror machines of `v` (replicas excluding the master's machine).
    pub fn mirrors(&self, v: VertexId) -> impl Iterator<Item = MachineId> + '_ {
        let master = self.master(v);
        self.replicas[v as usize]
            .iter()
            .copied()
            .filter(move |&m| m != master)
    }

    /// Number of vertices placed.
    pub fn num_vertices(&self) -> usize {
        self.master.len()
    }

    /// Average number of replicas per vertex — the key cost metric of a vertex-cut.
    pub fn replication_factor(&self) -> f64 {
        if self.replicas.is_empty() {
            return 0.0;
        }
        let total: usize = self.replicas.iter().map(|r| r.len()).sum();
        total as f64 / self.replicas.len() as f64
    }

    /// Total number of mirror replicas (replicas minus masters), i.e. the number of
    /// master→mirror synchronization messages a full sync of every vertex would send.
    pub fn total_mirrors(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| r.len().saturating_sub(1))
            .sum()
    }
}

/// The slice of the graph owned by one machine.
#[derive(Clone, Debug)]
pub struct Shard {
    /// The machine this shard belongs to.
    pub machine: MachineId,
    /// Global ids of the vertices with a replica on this machine, sorted ascending.
    /// Local vertex index `i` refers to `vertices[i]`.
    pub vertices: Vec<VertexId>,
    /// `true` for local vertices whose master lives on this machine.
    pub is_master: Vec<bool>,
    /// Local edges in CSR form by *source* local index (used by scatter).
    out_offsets: Vec<usize>,
    out_targets_local: Vec<u32>,
    /// Local edges in CSR form by *destination* local index (used by gather).
    in_offsets: Vec<usize>,
    in_sources_local: Vec<u32>,
}

impl Shard {
    /// Number of local vertex replicas.
    pub fn num_local_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges owned by this machine.
    pub fn num_local_edges(&self) -> usize {
        self.out_targets_local.len()
    }

    /// Local index of a global vertex id, if the vertex has a replica here.
    #[inline]
    pub fn local_index(&self, v: VertexId) -> Option<u32> {
        // `vertices` is sorted ascending, so the local index is its rank.
        self.vertices.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Global id of a local index.
    #[inline]
    pub fn global_id(&self, local: u32) -> VertexId {
        self.vertices[local as usize]
    }

    /// Local out-neighbors (as local indices) of the vertex with local index `local`.
    #[inline]
    pub fn local_out_neighbors(&self, local: u32) -> &[u32] {
        let l = local as usize;
        &self.out_targets_local[self.out_offsets[l]..self.out_offsets[l + 1]]
    }

    /// Local in-neighbors (as local indices) of the vertex with local index `local`.
    #[inline]
    pub fn local_in_neighbors(&self, local: u32) -> &[u32] {
        let l = local as usize;
        &self.in_sources_local[self.in_offsets[l]..self.in_offsets[l + 1]]
    }

    /// Number of out-edges of `local` owned by this machine.
    #[inline]
    pub fn local_out_degree(&self, local: u32) -> usize {
        let l = local as usize;
        self.out_offsets[l + 1] - self.out_offsets[l]
    }

    /// Number of in-edges of `local` owned by this machine.
    #[inline]
    pub fn local_in_degree(&self, local: u32) -> usize {
        let l = local as usize;
        self.in_offsets[l + 1] - self.in_offsets[l]
    }

    /// Iterates local masters as `(local_index, global_id)` pairs.
    pub fn masters(&self) -> impl Iterator<Item = (u32, VertexId)> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(move |&(i, _)| self.is_master[i])
            .map(|(i, &v)| (i as u32, v))
    }
}

/// A graph partitioned across a simulated cluster: per-machine shards plus the global
/// placement and degree tables the engine needs.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    num_vertices: usize,
    num_edges: usize,
    shards: Vec<Shard>,
    placement: VertexPlacement,
    /// Global out-degree of every vertex (the full graph's out-degree, which the random
    /// walk transition probabilities are defined over).
    out_degrees: Vec<u32>,
    /// Name of the partitioner that produced this layout (for reports).
    partitioner_name: &'static str,
}

impl PartitionedGraph {
    /// Partitions `graph` across `num_machines` machines using `partitioner`.
    ///
    /// Master assignment follows PowerGraph: the master of a vertex is chosen by a
    /// seed-derived hash among the machines holding a replica of that vertex (isolated
    /// vertices are hashed across all machines).
    pub fn build(
        graph: &DiGraph,
        num_machines: usize,
        partitioner: &dyn Partitioner,
        seed: u64,
    ) -> Self {
        let assignment = partitioner.assign(graph, num_machines, seed);
        Self::from_assignment(graph, &assignment, partitioner.name(), seed)
    }

    /// Builds the partitioned layout from an explicit edge assignment.
    pub fn from_assignment(
        graph: &DiGraph,
        assignment: &EdgeAssignment,
        partitioner_name: &'static str,
        seed: u64,
    ) -> Self {
        let n = graph.num_vertices();
        let num_machines = assignment.num_machines;
        assert_eq!(
            assignment.machines.len(),
            graph.num_edges(),
            "assignment must cover every edge"
        );

        // --- replica sets -------------------------------------------------------
        let mut replica_sets: Vec<Vec<MachineId>> = vec![Vec::new(); n];
        let add_replica = |v: VertexId, m: MachineId, sets: &mut Vec<Vec<MachineId>>| {
            let set = &mut sets[v as usize];
            if !set.contains(&m) {
                set.push(m);
            }
        };
        for ((src, dst), &machine) in graph.edges().zip(assignment.machines.iter()) {
            add_replica(src, machine, &mut replica_sets);
            add_replica(dst, machine, &mut replica_sets);
        }
        // Isolated vertices (no edges at all) still need a home for their master.
        for (v, set) in replica_sets.iter_mut().enumerate() {
            if set.is_empty() {
                let m =
                    MachineId::from(rng::pick_index(num_machines, &[seed, 0x150AA7ED, v as u64]));
                set.push(m);
            }
        }
        for set in &mut replica_sets {
            set.sort_unstable();
        }

        // --- master assignment --------------------------------------------------
        let master: Vec<MachineId> = (0..n)
            .map(|v| {
                let set = &replica_sets[v];
                set[rng::pick_index(set.len(), &[seed, 0x4A57E2, v as u64])]
            })
            .collect();

        let placement = VertexPlacement {
            master,
            replicas: replica_sets,
        };

        // --- shards -------------------------------------------------------------
        // Local vertex tables per machine.
        let mut shard_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); num_machines];
        for v in 0..n as VertexId {
            for &m in placement.replicas(v) {
                shard_vertices[m.index()].push(v);
            }
        }
        let mut shards: Vec<Shard> = Vec::with_capacity(num_machines);
        for (m, vertices) in shard_vertices.into_iter().enumerate() {
            let is_master = vertices
                .iter()
                .map(|&v| placement.master(v).index() == m)
                .collect();
            shards.push(Shard {
                machine: MachineId::from(m),
                vertices,
                is_master,
                out_offsets: Vec::new(),
                out_targets_local: Vec::new(),
                in_offsets: Vec::new(),
                in_sources_local: Vec::new(),
            });
        }

        // Local edges per machine, in local-index terms.
        let mut local_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_machines];
        for ((src, dst), &machine) in graph.edges().zip(assignment.machines.iter()) {
            let shard = &shards[machine.index()];
            // lint:allow(panic, placement invariant: edge endpoints are replicated where the edge lives)
            let ls = shard.local_index(src).expect("source must have a replica");
            let ld = shard
                .local_index(dst)
                // lint:allow(panic, placement invariant: edge endpoints are replicated where the edge lives)
                .expect("destination must have a replica");
            local_edges[machine.index()].push((ls, ld));
        }
        for (m, edges) in local_edges.into_iter().enumerate() {
            let num_local = shards[m].vertices.len();
            let (out_offsets, out_targets_local) =
                build_local_csr(num_local, edges.iter().map(|&(s, d)| (s, d)));
            let (in_offsets, in_sources_local) =
                build_local_csr(num_local, edges.iter().map(|&(s, d)| (d, s)));
            let shard = &mut shards[m];
            shard.out_offsets = out_offsets;
            shard.out_targets_local = out_targets_local;
            shard.in_offsets = in_offsets;
            shard.in_sources_local = in_sources_local;
        }

        let out_degrees = (0..n as VertexId)
            .map(|v| graph.out_degree(v) as u32)
            .collect();

        PartitionedGraph {
            num_vertices: n,
            num_edges: graph.num_edges(),
            shards,
            placement,
            out_degrees,
            partitioner_name,
        }
    }

    /// Number of vertices in the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges in the underlying graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.shards.len()
    }

    /// The per-machine shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by machine id.
    pub fn shard(&self, machine: MachineId) -> &Shard {
        &self.shards[machine.index()]
    }

    /// Master/replica placement tables.
    pub fn placement(&self) -> &VertexPlacement {
        &self.placement
    }

    /// Global out-degree of a vertex (over the whole graph, not just local edges).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degrees[v as usize]
    }

    /// Name of the partitioner that produced this layout.
    pub fn partitioner_name(&self) -> &'static str {
        self.partitioner_name
    }

    /// Consistency check used by tests: every edge appears on exactly one machine, every
    /// endpoint of a local edge has a local replica, local degree sums match global
    /// degrees, and the master of every vertex is one of its replicas.
    pub fn validate(&self) -> Result<(), frogwild_graph::Error> {
        let total_local_edges: usize = self.shards.iter().map(|s| s.num_local_edges()).sum();
        if total_local_edges != self.num_edges {
            return Err(frogwild_graph::Error::partition(format!(
                "local edges {} do not sum to global edge count {}",
                total_local_edges, self.num_edges
            )));
        }
        for v in 0..self.num_vertices as VertexId {
            let master = self.placement.master(v);
            if !self.placement.replicas(v).contains(&master) {
                return Err(frogwild_graph::Error::partition(format!(
                    "master of vertex {v} is not among its replicas"
                )));
            }
            let local_out_total: usize = self
                .placement
                .replicas(v)
                .iter()
                .map(|&m| {
                    let shard = self.shard(m);
                    shard
                        .local_index(v)
                        .map(|l| shard.local_out_degree(l))
                        .unwrap_or(0)
                })
                .sum();
            if local_out_total != self.out_degrees[v as usize] as usize {
                return Err(frogwild_graph::Error::partition(format!(
                    "vertex {v}: local out-degrees sum to {local_out_total}, global is {}",
                    self.out_degrees[v as usize]
                )));
            }
        }
        for shard in &self.shards {
            if shard.vertices.len() != shard.is_master.len() {
                return Err(frogwild_graph::Error::partition(format!(
                    "shard {} vertex/master table length mismatch",
                    shard.machine
                )));
            }
            for (i, &v) in shard.vertices.iter().enumerate() {
                if shard.local_index(v) != Some(i as u32) {
                    return Err(frogwild_graph::Error::partition(format!(
                        "shard {}: lookup table inconsistent for vertex {v}",
                        shard.machine
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Counting-sort CSR over local indices.
fn build_local_csr(
    num_local: usize,
    edges: impl Iterator<Item = (u32, u32)> + Clone,
) -> (Vec<usize>, Vec<u32>) {
    let mut degrees = vec![0usize; num_local];
    let mut count = 0usize;
    for (s, _) in edges.clone() {
        degrees[s as usize] += 1;
        count += 1;
    }
    let mut offsets = Vec::with_capacity(num_local + 1);
    offsets.push(0);
    let mut acc = 0;
    for &d in &degrees {
        acc += d;
        offsets.push(acc);
    }
    let mut targets = vec![0u32; count];
    let mut cursor = offsets[..num_local].to_vec();
    for (s, d) in edges {
        targets[cursor[s as usize]] = d;
        cursor[s as usize] += 1;
    }
    (offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ObliviousPartitioner, RandomPartitioner};
    use frogwild_graph::generators::simple::{complete, cycle, star};
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_rmat() -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(77);
        rmat(400, RmatParams::default(), &mut rng)
    }

    #[test]
    fn partitioned_graph_is_consistent() {
        let g = small_rmat();
        for machines in [1usize, 4, 16] {
            let pg = PartitionedGraph::build(&g, machines, &ObliviousPartitioner, 5);
            assert_eq!(pg.num_machines(), machines);
            assert_eq!(pg.num_vertices(), g.num_vertices());
            assert_eq!(pg.num_edges(), g.num_edges());
            pg.validate().unwrap();
        }
    }

    #[test]
    fn random_partition_is_consistent_too() {
        let g = small_rmat();
        let pg = PartitionedGraph::build(&g, 8, &RandomPartitioner, 5);
        pg.validate().unwrap();
        assert_eq!(pg.partitioner_name(), "random");
    }

    #[test]
    fn single_machine_has_no_mirrors() {
        let g = cycle(20);
        let pg = PartitionedGraph::build(&g, 1, &ObliviousPartitioner, 1);
        assert!((pg.placement().replication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(pg.placement().total_mirrors(), 0);
        for v in g.vertices() {
            assert_eq!(pg.placement().mirrors(v).count(), 0);
        }
    }

    #[test]
    fn replication_factor_bounds() {
        let g = small_rmat();
        let pg = PartitionedGraph::build(&g, 8, &RandomPartitioner, 2);
        let rf = pg.placement().replication_factor();
        assert!((1.0..=8.0).contains(&rf), "replication factor {rf}");
    }

    #[test]
    fn high_degree_hub_is_replicated_widely() {
        let g = star(200);
        let pg = PartitionedGraph::build(&g, 8, &RandomPartitioner, 2);
        // the hub touches every edge so it should be on (almost) every machine
        assert!(pg.placement().replicas(0).len() >= 7);
        // leaves have degree 2, so at most 2 replicas
        for v in 1..200u32 {
            assert!(pg.placement().replicas(v).len() <= 2);
        }
    }

    #[test]
    fn masters_are_unique_and_on_replicas() {
        let g = small_rmat();
        let pg = PartitionedGraph::build(&g, 6, &ObliviousPartitioner, 3);
        for v in g.vertices() {
            let master = pg.placement().master(v);
            assert!(pg.placement().replicas(v).contains(&master));
            // exactly one shard flags it as master
            let master_count = pg
                .shards()
                .iter()
                .filter(|s| {
                    s.local_index(v)
                        .map(|l| s.is_master[l as usize])
                        .unwrap_or(false)
                })
                .count();
            assert_eq!(master_count, 1, "vertex {v}");
        }
    }

    #[test]
    fn isolated_vertices_get_a_master() {
        let mut edges = vec![(0u32, 1u32), (1, 0)];
        edges.push((2, 3));
        edges.push((3, 2));
        // vertex 4 is isolated
        let g = DiGraph::from_edges(5, &edges);
        let pg = PartitionedGraph::build(&g, 4, &RandomPartitioner, 9);
        assert_eq!(pg.placement().replicas(4).len(), 1);
        pg.validate().unwrap();
    }

    #[test]
    fn shard_local_edges_match_global_edges() {
        let g = complete(12);
        let pg = PartitionedGraph::build(&g, 4, &ObliviousPartitioner, 8);
        // reconstruct the multiset of global edges from the shards
        let mut reconstructed: Vec<(u32, u32)> = Vec::new();
        for shard in pg.shards() {
            for local in 0..shard.num_local_vertices() as u32 {
                let src = shard.global_id(local);
                for &dst_local in shard.local_out_neighbors(local) {
                    reconstructed.push((src, shard.global_id(dst_local)));
                }
            }
        }
        reconstructed.sort_unstable();
        let mut expected = g.edge_vec();
        expected.sort_unstable();
        assert_eq!(reconstructed, expected);
    }

    #[test]
    fn local_in_and_out_edge_counts_agree() {
        let g = small_rmat();
        let pg = PartitionedGraph::build(&g, 5, &ObliviousPartitioner, 8);
        for shard in pg.shards() {
            let out_total: usize = (0..shard.num_local_vertices() as u32)
                .map(|l| shard.local_out_degree(l))
                .sum();
            let in_total: usize = (0..shard.num_local_vertices() as u32)
                .map(|l| shard.local_in_degree(l))
                .sum();
            assert_eq!(out_total, shard.num_local_edges());
            assert_eq!(in_total, shard.num_local_edges());
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = small_rmat();
        let a = PartitionedGraph::build(&g, 8, &ObliviousPartitioner, 11);
        let b = PartitionedGraph::build(&g, 8, &ObliviousPartitioner, 11);
        assert_eq!(
            a.placement().replication_factor(),
            b.placement().replication_factor()
        );
        for v in g.vertices() {
            assert_eq!(a.placement().master(v), b.placement().master(v));
            assert_eq!(a.placement().replicas(v), b.placement().replicas(v));
        }
    }
}
