//! Deterministic randomness helpers.
//!
//! Every random decision in the engine (synchronization coins, walker moves, edge
//! placement hashes) is derived from the run seed, the superstep, the vertex and the
//! machine through a small counter-mode hash. This makes the serial and the
//! multi-threaded executor produce *identical* results: no decision depends on thread
//! scheduling or on the order in which a machine happened to draw from a shared
//! generator.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit hash used as the basis for all
/// derived randomness.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes an arbitrary number of components into one 64-bit value.
#[inline]
pub fn mix(components: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fraction, arbitrary non-zero start
    for &c in components {
        acc = splitmix64(acc ^ c);
    }
    acc
}

/// A uniform `f64` in `[0, 1)` derived from the mixed components.
#[inline]
pub fn uniform_from(components: &[u64]) -> f64 {
    // 53 mantissa bits of the hash give a uniform double in [0, 1).
    (mix(components) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A Bernoulli coin with success probability `p`, derived deterministically from the
/// mixed components. Used for the per-mirror synchronization decision so both executors
/// agree on which mirrors were skipped.
#[inline]
pub fn coin(p: f64, components: &[u64]) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    uniform_from(components) < p
}

/// A `SmallRng` whose seed is derived from the mixed components. Used wherever a
/// sequence of draws is needed (e.g. splitting frogs across out-edges).
pub fn derived_rng(components: &[u64]) -> SmallRng {
    SmallRng::seed_from_u64(mix(components))
}

/// Picks an index in `0..n` deterministically from the components. Panics if `n == 0`.
#[inline]
pub fn pick_index(n: usize, components: &[u64]) -> usize {
    assert!(n > 0, "cannot pick from an empty range");
    (mix(components) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // avalanche sanity: flipping one input bit flips many output bits
        let a = splitmix64(0x1);
        let b = splitmix64(0x3);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn mix_depends_on_all_components_and_order() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2]), mix(&[1, 2, 0]));
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        for i in 0..1000u64 {
            let u = uniform_from(&[i, 7]);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let n = 20_000u64;
        let sum: f64 = (0..n).map(|i| uniform_from(&[i, 99])).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn coin_edge_cases() {
        assert!(coin(1.0, &[1]));
        assert!(coin(1.5, &[1]));
        assert!(!coin(0.0, &[1]));
        assert!(!coin(-0.5, &[1]));
    }

    #[test]
    fn coin_frequency_matches_probability() {
        let p = 0.3;
        let n = 50_000u64;
        let hits = (0..n).filter(|&i| coin(p, &[i, 1234])).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - p).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn derived_rng_is_reproducible() {
        let mut a = derived_rng(&[5, 6]);
        let mut b = derived_rng(&[5, 6]);
        let va: Vec<u32> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = derived_rng(&[5, 7]);
        let vc: Vec<u32> = (0..10).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn pick_index_in_range() {
        for i in 0..100u64 {
            let idx = pick_index(7, &[i]);
            assert!(idx < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn pick_index_rejects_empty() {
        let _ = pick_index(0, &[1]);
    }
}
