//! # frogwild-engine
//!
//! A from-scratch, PowerGraph-like **simulated distributed graph engine**.
//!
//! The FrogWild paper implements its algorithm inside GraphLab PowerGraph and modifies
//! the engine so that master vertices synchronize each mirror only with probability
//! `p_s`. Reproducing the paper therefore requires the engine layer itself. This crate
//! provides that layer:
//!
//! * **Vertex-cut partitioning** ([`partition`]) — edges are assigned to machines
//!   (random, grid-constrained, and the greedy "oblivious" heuristic PowerGraph uses),
//!   and every vertex obtains one *master* replica plus cached *mirror* replicas on all
//!   other machines that own one of its edges ([`placement`]).
//! * **GAS vertex programs** ([`program`]) — the gather / apply / scatter abstraction,
//!   expressed so that gather runs on the machine owning each edge, apply runs at the
//!   master, and scatter runs on every *participating* replica.
//! * **Partial synchronization** ([`sync`]) — the paper's `p_s` knob: after apply, each
//!   mirror of an active vertex is synchronized only with probability `p_s`. The
//!   "at least one out-edge per node" variant from Appendix A is included.
//! * **Cost accounting** ([`metrics`]) — bytes and messages crossing machine boundaries,
//!   per-machine work operations, replication factors, and a simulated cluster-time
//!   model so experiments can report the same four panels as Figure 1 of the paper
//!   (per-iteration time, total time, network bytes, CPU time).
//! * **Execution** ([`engine`]) — a deterministic single-threaded executor and a
//!   multi-threaded executor (one worker per simulated machine, synchronized at
//!   superstep barriers) that produce identical results for the same seed.
//! * **Walk-segment generation** ([`walkgen`]) — parallel precomputation of per-vertex
//!   random-walk segments (each machine generates for the vertices it masters), the
//!   build phase of `frogwild`'s walk-index subsystem.
//!
//! The engine is *simulated* in the sense that all "machines" live in one process and
//! network transfer is accounted rather than performed; everything else — the data
//! placement, the message flow, which replica knows what and when — follows the
//! PowerGraph execution model. See `DESIGN.md` §2 for why this preserves the paper's
//! claims.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod engine;
pub mod metrics;
pub mod partition;
pub mod placement;
pub mod program;
pub mod rng;
pub mod sync;
pub mod walkgen;

pub use cluster::{ClusterConfig, MachineId};
pub use engine::{Engine, EngineConfig, EngineOutput, Frontier, InitialActivation};
pub use frogwild_graph::Error;
pub use metrics::{CostModel, NetworkStats, RunMetrics, SuperstepMetrics, WorkStats};
pub use partition::{
    GridPartitioner, HdrfPartitioner, HybridPartitioner, ObliviousPartitioner, Partitioner,
    PartitionerKind, RandomPartitioner,
};
pub use placement::{PartitionedGraph, Shard, VertexPlacement};
pub use program::{ApplyContext, EdgeDirection, ScatterContext, VertexProgram};
pub use sync::SyncPolicy;
pub use walkgen::{generate_walk_segments, generate_walk_segments_traced, MachineSegments};
