//! Parallel random-walk segment generation over a partitioned cluster.
//!
//! The walk-index subsystem (`frogwild::walkindex`) precomputes, for every vertex, a
//! small number of fixed-length random-walk *segments* that queries later stitch
//! together PowerWalk-style instead of walking the graph afresh. Generating those
//! segments is the expensive, embarrassingly parallel part of an index build, and the
//! natural unit of parallelism is the engine's own work division: **each simulated
//! machine generates the segments of the vertices it masters**, on its own worker
//! thread when `parallel` is set — exactly how the engine splits gather/apply/scatter
//! work in [`crate::engine`].
//!
//! Every hop is drawn from a generator derived from `(seed, vertex, segment)` via
//! [`crate::rng::derived_rng`], so the produced segments are identical regardless of
//! the machine count, the partitioner, or whether the build ran parallel — the same
//! determinism contract the engine's two executors obey.

use frogwild_graph::{DiGraph, VertexId};
use frogwild_obs::{span_meta, SpanKey, Tracer};
use rand::Rng;

use crate::cluster::MachineId;
use crate::placement::PartitionedGraph;

/// Domain-separation tag for segment-generation randomness.
const TAG_SEGMENT: u64 = 0x5E91;

/// The segments one machine generated for the vertices it masters.
///
/// Storage is flat: `lens[i * segments_per_vertex + j]` is the hop count of segment
/// `j` of `vertices[i]`, and `hops` concatenates all segments in that order.
#[derive(Clone, Debug)]
pub struct MachineSegments {
    /// The machine that produced this batch.
    pub machine: MachineId,
    /// The vertices this machine masters, ascending.
    pub vertices: Vec<VertexId>,
    /// Hop count of each `(vertex, segment)` pair, `vertices.len() * segments_per_vertex`
    /// entries in vertex-major order.
    pub lens: Vec<u32>,
    /// All hops, concatenated in the same order `lens` describes.
    pub hops: Vec<VertexId>,
}

/// Generates `segments_per_vertex` random-walk segments of (at most) `segment_length`
/// hops from every vertex of `graph`, split across the machines of `pg` by master
/// assignment.
///
/// A segment follows out-edges uniformly at random and stops early only when it
/// reaches a dangling vertex (a walk stuck at a sink can go nowhere; how a stranded
/// walk continues is a query-time decision). Segments carry **no teleportation**:
/// walk length is also decided at query time, which keeps the index valid for any
/// teleport probability.
///
/// When `parallel` is set, one worker thread per simulated machine generates that
/// machine's batch, mirroring the engine's execution model. The output is identical
/// either way, and identical across machine counts and partitioners for a fixed
/// `seed`.
pub fn generate_walk_segments(
    graph: &DiGraph,
    pg: &PartitionedGraph,
    segments_per_vertex: usize,
    segment_length: usize,
    seed: u64,
    parallel: bool,
) -> Vec<MachineSegments> {
    generate_walk_segments_traced(
        graph,
        pg,
        segments_per_vertex,
        segment_length,
        seed,
        parallel,
        &Tracer::disabled(),
    )
}

/// [`generate_walk_segments`] with a tracing handle: each machine's segment
/// generation is recorded as a `walk_segments` span keyed `(0, machine, 0)`,
/// carrying vertex and hop counters. Output is identical to the untraced build —
/// the tracer only observes.
pub fn generate_walk_segments_traced(
    graph: &DiGraph,
    pg: &PartitionedGraph,
    segments_per_vertex: usize,
    segment_length: usize,
    seed: u64,
    parallel: bool,
    tracer: &Tracer,
) -> Vec<MachineSegments> {
    let generate_for = |machine: usize| -> MachineSegments {
        let sink = tracer.sink();
        let mut span = sink.span(
            span_meta!("walk_segments"),
            SpanKey::new(0, machine as u32 + 1, 0, 0),
        );
        let shard = pg.shard(MachineId::from(machine));
        let vertices: Vec<VertexId> = shard.masters().map(|(_, v)| v).collect();
        let mut lens = Vec::with_capacity(vertices.len() * segments_per_vertex);
        // The common case walks the full length; reserve for it.
        let mut hops = Vec::with_capacity(vertices.len() * segments_per_vertex * segment_length);
        for &v in &vertices {
            for j in 0..segments_per_vertex {
                let start = hops.len();
                let mut rng = crate::rng::derived_rng(&[seed, v as u64, j as u64, TAG_SEGMENT]);
                let mut position = v;
                for _ in 0..segment_length {
                    let neighbors = graph.out_neighbors(position);
                    if neighbors.is_empty() {
                        break;
                    }
                    // lint:allow(indexing, gen_range is bounded by the neighbor count)
                    position = neighbors[rng.gen_range(0..neighbors.len())];
                    hops.push(position);
                }
                lens.push((hops.len() - start) as u32);
            }
        }
        span.counter("vertices", vertices.len() as u64);
        span.counter("hops", hops.len() as u64);
        drop(span);
        MachineSegments {
            machine: MachineId::from(machine),
            vertices,
            lens,
            hops,
        }
    };

    let num_machines = pg.num_machines();
    if parallel && num_machines > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_machines)
                .map(|m| scope.spawn(move || generate_for(m)))
                .collect();
            handles
                .into_iter()
                // lint:allow(panic, re-raises a worker thread panic)
                .map(|h| h.join().expect("segment generation worker panicked"))
                .collect()
        })
    } else {
        (0..num_machines).map(generate_for).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ObliviousPartitioner, RandomPartitioner};
    use frogwild_graph::generators::simple::cycle;
    use frogwild_graph::generators::{rmat, RmatParams};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(31);
        rmat(n, RmatParams::default(), &mut rng)
    }

    /// Flattens per-machine batches into a vertex-indexed segment table.
    fn by_vertex(batches: &[MachineSegments], n: usize, r: usize) -> Vec<Vec<Vec<VertexId>>> {
        let mut table = vec![Vec::new(); n];
        for batch in batches {
            let mut cursor = 0usize;
            for (i, &v) in batch.vertices.iter().enumerate() {
                let mut segs = Vec::with_capacity(r);
                for j in 0..r {
                    let len = batch.lens[i * r + j] as usize;
                    segs.push(batch.hops[cursor..cursor + len].to_vec());
                    cursor += len;
                }
                table[v as usize] = segs;
            }
        }
        table
    }

    #[test]
    fn every_vertex_is_generated_exactly_once() {
        let g = test_graph(300);
        let pg = PartitionedGraph::build(&g, 4, &ObliviousPartitioner, 7);
        let batches = generate_walk_segments(&g, &pg, 3, 5, 11, false);
        let mut seen: Vec<VertexId> = batches
            .iter()
            .flat_map(|b| b.vertices.iter().copied())
            .collect();
        seen.sort_unstable();
        let expected: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        assert_eq!(seen, expected);
        for batch in &batches {
            assert_eq!(batch.lens.len(), batch.vertices.len() * 3);
            assert_eq!(
                batch.hops.len(),
                batch.lens.iter().map(|&l| l as usize).sum::<usize>()
            );
        }
    }

    #[test]
    fn segments_follow_edges_and_respect_the_length_cap() {
        let g = test_graph(200);
        let pg = PartitionedGraph::build(&g, 3, &ObliviousPartitioner, 5);
        let r = 4;
        let l = 6;
        let table = by_vertex(
            &generate_walk_segments(&g, &pg, r, l, 13, false),
            g.num_vertices(),
            r,
        );
        for v in g.vertices() {
            assert_eq!(table[v as usize].len(), r);
            for seg in &table[v as usize] {
                assert!(seg.len() <= l);
                let mut position = v;
                for &hop in seg {
                    assert!(
                        g.has_edge(position, hop),
                        "hop {position}->{hop} not an edge"
                    );
                    position = hop;
                }
                // A short segment must have ended on a dangling vertex.
                if seg.len() < l {
                    assert_eq!(g.out_degree(position), 0, "short segment not at a sink");
                }
            }
        }
    }

    #[test]
    fn output_is_identical_across_machine_counts_partitioners_and_threading() {
        let g = test_graph(250);
        let r = 3;
        let l = 5;
        let reference = by_vertex(
            &generate_walk_segments(
                &g,
                &PartitionedGraph::build(&g, 1, &ObliviousPartitioner, 9),
                r,
                l,
                42,
                false,
            ),
            g.num_vertices(),
            r,
        );
        for (machines, parallel) in [(4usize, false), (4, true), (8, true)] {
            for partitioner in [true, false] {
                let pg = if partitioner {
                    PartitionedGraph::build(&g, machines, &ObliviousPartitioner, 9)
                } else {
                    PartitionedGraph::build(&g, machines, &RandomPartitioner, 9)
                };
                let other = by_vertex(
                    &generate_walk_segments(&g, &pg, r, l, 42, parallel),
                    g.num_vertices(),
                    r,
                );
                assert_eq!(reference, other, "machines={machines} parallel={parallel}");
            }
        }
    }

    #[test]
    fn cycle_segments_are_fully_determined() {
        let g = cycle(10);
        let pg = PartitionedGraph::build(&g, 2, &ObliviousPartitioner, 3);
        let table = by_vertex(&generate_walk_segments(&g, &pg, 2, 4, 1, false), 10, 2);
        // On a cycle the walk has no choices: segment hops are v+1, v+2, ...
        for v in 0..10u32 {
            for seg in &table[v as usize] {
                let expected: Vec<VertexId> = (1..=4).map(|i| (v + i) % 10).collect();
                assert_eq!(seg, &expected);
            }
        }
    }

    #[test]
    fn star_leaves_stop_at_the_hub_sink() {
        // In the star generator leaves point at the hub and the hub points back, so no
        // vertex is dangling; use a hand-built sink instead.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let pg = PartitionedGraph::build(&g, 2, &ObliviousPartitioner, 3);
        let table = by_vertex(&generate_walk_segments(&g, &pg, 2, 5, 1, false), 3, 2);
        // From vertex 0 the only walk is 1, 2 and then the sink stops it.
        for seg in &table[0] {
            assert_eq!(seg, &vec![1u32, 2u32]);
        }
        // Vertex 2 is a sink: its segments are empty.
        for seg in &table[2] {
            assert!(seg.is_empty());
        }
    }
}
