//! Serving-throughput microbenchmarks: the concurrent front-end draining a mixed
//! query stream, against the serial reference path — the end-to-end numbers behind
//! the QPS figure, at Criterion precision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frogwild::prelude::*;
use frogwild::serve::ServeConfig;
use frogwild::session::PprMethod;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A mixed top-k / personalized stream; the front-end re-roots every seed anyway.
fn stream(count: usize, vertices: u64) -> Vec<Query> {
    (0..count)
        .map(|i| {
            if i % 4 == 0 {
                Query::TopK {
                    k: 20,
                    config: FrogWildConfig {
                        num_walkers: 4_000,
                        iterations: 3,
                        sync_probability: 0.7,
                        ..FrogWildConfig::default()
                    },
                }
            } else {
                Query::Ppr {
                    source: ((i as u64 * 31) % vertices) as VertexId,
                    k: 20,
                    teleport_probability: 0.15,
                    method: PprMethod::MonteCarlo {
                        walkers: 2_000,
                        max_steps: 32,
                        seed: 0,
                    },
                }
            }
        })
        .collect()
}

fn bench_qps(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(17);
    let graph = twitter_like(3_000, &mut rng);
    let queries = stream(40, graph.num_vertices() as u64);
    let mut session = Session::builder(&graph)
        .machines(8)
        .seed(17)
        .walk_index(WalkIndexConfig::default())
        .build()
        .expect("valid bench configuration");

    let mut group = c.benchmark_group("qps");
    group.sample_size(10);
    group.bench_function("serial_40_query_stream", |b| {
        b.iter(|| black_box(session.serve().serve_serial(&queries)))
    });
    for workers in [1usize, 2, 8] {
        group.bench_function(format!("pool_{workers}_workers_40_query_stream"), |b| {
            b.iter(|| {
                let mut handle = session
                    .serve_with(ServeConfig::with_workers(workers))
                    .expect("valid bench configuration");
                black_box(handle.serve(&queries))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qps);
criterion_main!(benches);
