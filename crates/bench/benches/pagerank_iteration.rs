//! Per-iteration cost of the baseline GraphLab-style PageRank on the simulated engine,
//! and of the serial power-iteration reference — the costs FrogWild is measured against.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use frogwild::driver::{partition_graph, run_graphlab_pr_on};
use frogwild::prelude::*;
use frogwild::reference::exact_pagerank;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_pagerank(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let graph = twitter_like(10_000, &mut rng);
    let cluster = ClusterConfig::new(16, 13);
    let pg = partition_graph(&graph, &cluster);

    let mut group = c.benchmark_group("pagerank_iteration");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.bench_function("engine_pr_2_iterations", |b| {
        b.iter(|| black_box(run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2)).unwrap()))
    });
    group.bench_function("engine_pr_1_iteration", |b| {
        b.iter(|| black_box(run_graphlab_pr_on(&pg, &PageRankConfig::truncated(1)).unwrap()))
    });
    group.bench_function("serial_power_iteration_20_iters", |b| {
        b.iter(|| black_box(exact_pagerank(&graph, 0.15, 20, 0.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
