//! Microbenchmark of the engine's superstep machinery: full FrogWild runs with
//! serial and multi-threaded execution, isolating the engine overhead from the
//! algorithm's accuracy concerns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frogwild::driver::{partition_graph, run_frogwild_on};
use frogwild::prelude::*;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_superstep(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(10_000, &mut rng);
    let cluster = ClusterConfig::new(16, 9);
    let pg = partition_graph(&graph, &cluster);
    let config = FrogWildConfig {
        num_walkers: 50_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };

    let mut group = c.benchmark_group("engine_superstep");
    group.sample_size(10);
    group.bench_function("frogwild_4_supersteps_serial", |b| {
        b.iter(|| black_box(run_frogwild_on(&pg, &config).unwrap()))
    });
    group.bench_function("frogwild_4_supersteps_parallel", |b| {
        b.iter(|| {
            black_box(
                run_frogwild_on(
                    &pg,
                    &FrogWildConfig {
                        parallel: true,
                        ..config
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_superstep);
criterion_main!(benches);
