//! Microbenchmark of the engine's superstep machinery: full FrogWild runs with
//! serial and worker-pool execution, a bounded-staleness sweep (the host cost of
//! the staging inbox relative to the synchronous barrier path), plus delta-gated
//! vs ungated runs of both vertex programs, isolating the engine overhead from
//! the algorithm's accuracy concerns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frogwild::driver::{
    partition_graph, run_frogwild_on, run_frogwild_scheduled, run_frogwild_with, run_graphlab_pr_on,
};
use frogwild::prelude::*;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_superstep(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(10_000, &mut rng);
    let cluster = ClusterConfig::new(16, 9);
    let pg = partition_graph(&graph, &cluster);
    let config = FrogWildConfig {
        num_walkers: 50_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };

    let mut group = c.benchmark_group("engine_superstep");
    group.sample_size(10);
    group.bench_function("frogwild_4_supersteps_serial", |b| {
        b.iter(|| black_box(run_frogwild_on(&pg, &config).unwrap()))
    });
    group.bench_function("frogwild_4_supersteps_parallel", |b| {
        b.iter(|| {
            black_box(
                run_frogwild_on(
                    &pg,
                    &FrogWildConfig {
                        parallel: true,
                        ..config
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("frogwild_4_supersteps_pool4_batch256", |b| {
        b.iter(|| {
            black_box(
                run_frogwild_scheduled(
                    &pg,
                    &FrogWildConfig {
                        parallel: true,
                        ..config
                    },
                    &Scheduling {
                        workers: 4,
                        batch_size: 256,
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("frogwild_4_supersteps_gated_tol2", |b| {
        b.iter(|| {
            black_box(
                run_frogwild_on(
                    &pg,
                    &FrogWildConfig {
                        tolerance: 2.0,
                        ..config
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

/// Bounded-staleness sweep: the same FrogWild run under widening staleness windows.
/// `staleness 0` takes the synchronous fast path (no staging inbox); `s > 0` pays
/// for the deterministic per-channel delays and the `BTreeMap` staging inbox, which
/// is exactly the host-side overhead this group measures.
fn bench_staleness(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(10_000, &mut rng);
    let pg = partition_graph(&graph, &ClusterConfig::new(16, 9));
    let config = FrogWildConfig {
        num_walkers: 50_000,
        iterations: 6,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };

    let mut group = c.benchmark_group("engine_staleness");
    group.sample_size(10);
    for staleness in [0usize, 1, 2, 4] {
        group.bench_function(
            format!("frogwild_6_supersteps_staleness_{staleness}"),
            |b| {
                b.iter(|| {
                    black_box(
                        run_frogwild_with(
                            &pg,
                            &config,
                            &ExecutionConfig::new().staleness(staleness),
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_delta_gate(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = twitter_like(3_000, &mut rng);
    let pg = partition_graph(&graph, &ClusterConfig::new(16, 9));
    let base = PageRankConfig {
        max_iterations: 20,
        ..PageRankConfig::default()
    };

    let mut group = c.benchmark_group("engine_delta_gate");
    group.sample_size(10);
    group.bench_function("pagerank_20_iters_ungated", |b| {
        b.iter(|| {
            black_box(
                run_graphlab_pr_on(
                    &pg,
                    &PageRankConfig {
                        tolerance: 0.0,
                        ..base
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("pagerank_20_iters_gated_tol1e3", |b| {
        b.iter(|| {
            black_box(
                run_graphlab_pr_on(
                    &pg,
                    &PageRankConfig {
                        tolerance: 1e-3,
                        ..base
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_superstep, bench_staleness, bench_delta_gate);
criterion_main!(benches);
