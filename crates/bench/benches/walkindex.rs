//! Walk-index microbenchmarks: the one-time build, index-served PPR, and the fresh
//! Monte-Carlo baseline it amortizes — the per-query numbers behind the "serve heavy
//! query traffic from an index" story.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frogwild::ppr::monte_carlo_ppr;
use frogwild::walkindex::{build_walk_index_standalone, indexed_ppr, WalkIndexConfig};
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_walkindex(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(17);
    let graph = twitter_like(10_000, &mut rng);
    let config = WalkIndexConfig::default();
    let (index, _) = build_walk_index_standalone(&graph, 8, &config).expect("valid build");

    let mut group = c.benchmark_group("walkindex");
    group.sample_size(10);
    group.bench_function("build_10k_vertices", |b| {
        b.iter(|| black_box(build_walk_index_standalone(&graph, 8, &config).unwrap()))
    });
    group.bench_function("ppr_index_served", |b| {
        let mut source = 0u32;
        b.iter(|| {
            source = (source + 1) % 1_000;
            black_box(indexed_ppr(&graph, &index, &config, source, 0.15).unwrap())
        })
    });
    group.bench_function("ppr_fresh_monte_carlo", |b| {
        let mut source = 0u32;
        b.iter(|| {
            source = (source + 1) % 1_000;
            let mut walk_rng = SmallRng::seed_from_u64(source as u64);
            black_box(monte_carlo_ppr(
                &graph,
                source,
                40_000,
                64,
                0.15,
                &mut walk_rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_walkindex);
criterion_main!(benches);
