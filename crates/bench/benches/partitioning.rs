//! Microbenchmarks for the vertex-cut partitioners (ingress cost and the resulting
//! replication factor drive everything else in the engine).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use frogwild_engine::{
    GridPartitioner, ObliviousPartitioner, PartitionedGraph, Partitioner, RandomPartitioner,
};
use frogwild_graph::generators::twitter_like;
use frogwild_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const VERTICES: usize = 10_000;
const MACHINES: usize = 16;

fn graph() -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(7);
    twitter_like(VERTICES, &mut rng)
}

fn bench_partitioners(c: &mut Criterion) {
    let graph = graph();
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("random", Box::new(RandomPartitioner)),
        ("grid", Box::new(GridPartitioner)),
        ("oblivious", Box::new(ObliviousPartitioner)),
    ];
    for (name, partitioner) in &partitioners {
        group.bench_function(format!("assign_{name}"), |b| {
            b.iter(|| black_box(partitioner.assign(&graph, MACHINES, 3)))
        });
    }
    group.bench_function("build_partitioned_graph_oblivious", |b| {
        b.iter(|| {
            black_box(PartitionedGraph::build(
                &graph,
                MACHINES,
                &ObliviousPartitioner,
                3,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
