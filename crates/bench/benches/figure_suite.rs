//! Smoke benchmark of the full figure harness at tiny scale.
//!
//! `cargo bench` runs every figure end-to-end (tiny graphs) so regressions in any part
//! of the pipeline — generation, partitioning, engine, metrics, table writing — show up
//! as a timing change. The real figure data comes from the `figures` binary at
//! `small`/`medium` scale; this bench only guards the plumbing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frogwild_bench::{run_figures, Scale};

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("figure_suite_tiny");
    group.sample_size(10);
    for figure in ["fig2", "fig8"] {
        group.bench_function(figure, |b| {
            b.iter(|| black_box(run_figures(&[figure.to_string()], &scale)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
