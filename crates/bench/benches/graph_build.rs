//! Microbenchmarks for the graph substrate: generation, CSR construction and
//! traversal throughput on a social-graph-shaped input.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use frogwild_graph::generators::{rmat, twitter_like, RmatParams};
use frogwild_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const VERTICES: usize = 20_000;

fn base_graph() -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(42);
    twitter_like(VERTICES, &mut rng)
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    group.sample_size(10);
    group.bench_function("rmat_20k_vertices", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            black_box(rmat(VERTICES, RmatParams::default(), &mut rng))
        })
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let graph = base_graph();
    let edges = graph.edge_vec();
    let mut group = c.benchmark_group("csr_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("from_edges", |b| {
        b.iter(|| black_box(DiGraph::from_edges(VERTICES, &edges)))
    });
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let graph = base_graph();
    let mut group = c.benchmark_group("traversal");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.bench_function("sum_out_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in graph.vertices() {
                for &d in graph.out_neighbors(v) {
                    acc = acc.wrapping_add(d as u64);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_csr_build, bench_traversal);
criterion_main!(benches);
