//! Per-run cost of FrogWild as a function of the synchronization probability and the
//! walker count — the microbenchmark behind the paper's "less than one second per
//! iteration" claim (relative, not absolute, on the simulated engine).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use frogwild::driver::{partition_graph, run_frogwild_on};
use frogwild::prelude::*;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_frogwild(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(17);
    let graph = twitter_like(10_000, &mut rng);
    let cluster = ClusterConfig::new(16, 19);
    let pg = partition_graph(&graph, &cluster);

    let mut group = c.benchmark_group("frogwild_run");
    group.sample_size(10);
    for ps in [1.0, 0.4, 0.1] {
        group.bench_with_input(BenchmarkId::new("sync_probability", ps), &ps, |b, &ps| {
            b.iter(|| {
                black_box(
                    run_frogwild_on(
                        &pg,
                        &FrogWildConfig {
                            num_walkers: 50_000,
                            iterations: 4,
                            sync_probability: ps,
                            ..FrogWildConfig::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    for walkers in [10_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("walkers", walkers),
            &walkers,
            |b, &walkers| {
                b.iter(|| {
                    black_box(
                        run_frogwild_on(
                            &pg,
                            &FrogWildConfig {
                                num_walkers: walkers,
                                iterations: 4,
                                sync_probability: 0.7,
                                ..FrogWildConfig::default()
                            },
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_frogwild);
criterion_main!(benches);
