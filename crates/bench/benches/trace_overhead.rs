//! Microbenchmark of the tracing subsystem's overhead on the engine hot path.
//!
//! Three FrogWild runs of the same configuration: no tracer (the baseline), a
//! *disabled* tracer threaded through every instrumentation point (the cost every
//! untraced run pays — this must stay indistinguishable from the baseline), and an
//! armed host-clock tracer (the cost of actually recording). A fourth group
//! measures the raw record path in isolation: spans and counter events against a
//! disabled vs enabled sink, plus the merge/export step over a recorded timeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frogwild::driver::{partition_graph, run_frogwild_traced};
use frogwild::obs::{span_meta, SpanKey, TraceConfig, Tracer};
use frogwild::prelude::*;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_engine_overhead(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let graph = twitter_like(10_000, &mut rng);
    let pg = partition_graph(&graph, &ClusterConfig::new(16, 9));
    let config = FrogWildConfig {
        num_walkers: 50_000,
        iterations: 4,
        sync_probability: 0.7,
        ..FrogWildConfig::default()
    };
    let execution = ExecutionConfig::new();

    let mut group = c.benchmark_group("trace_overhead_engine");
    group.sample_size(10);
    group.bench_function("frogwild_4_supersteps_tracer_disabled", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| black_box(run_frogwild_traced(&pg, &config, &execution, &tracer).unwrap()))
    });
    group.bench_function("frogwild_4_supersteps_tracer_enabled", |b| {
        b.iter(|| {
            let tracer = Tracer::new(TraceConfig::enabled());
            let report = run_frogwild_traced(&pg, &config, &execution, &tracer).unwrap();
            black_box((report, tracer.finish()))
        })
    });
    group.finish();
}

fn bench_record_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead_records");
    group.bench_function("span_1000_disabled", |b| {
        let tracer = Tracer::disabled();
        b.iter(|| {
            let sink = tracer.sink();
            for i in 0..1000u64 {
                let mut span = sink.span(span_meta!("bench"), SpanKey::new(i, 0, 0, 0));
                span.counter("value", black_box(i));
            }
        })
    });
    group.bench_function("span_1000_enabled", |b| {
        b.iter(|| {
            let tracer = Tracer::new(TraceConfig::enabled());
            let sink = tracer.sink();
            for i in 0..1000u64 {
                let mut span = sink.span(span_meta!("bench"), SpanKey::new(i, 0, 0, 0));
                span.counter("value", black_box(i));
            }
            drop(sink);
            black_box(tracer)
        })
    });
    group.bench_function("merge_and_export_1000", |b| {
        let tracer = Tracer::new(TraceConfig::logical());
        let sink = tracer.sink();
        for i in 0..1000u64 {
            let mut span = sink.span(span_meta!("bench"), SpanKey::new(i, 0, 0, 0));
            span.counter("value", i);
        }
        drop(sink);
        b.iter(|| black_box(tracer.finish().to_chrome_json()))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_overhead, bench_record_path);
criterion_main!(benches);
