//! # frogwild-bench
//!
//! The benchmark harness that regenerates every figure of the FrogWild paper's
//! evaluation section (Figures 1–8) plus a numerical check of the paper's theory
//! (Theorems 1–2, Proposition 7), and the Criterion microbenchmarks for the engine's
//! building blocks.
//!
//! The `figures` binary is the entry point:
//!
//! ```text
//! cargo run -p frogwild-bench --release --bin figures -- all
//! cargo run -p frogwild-bench --release --bin figures -- fig1 fig2
//! FROGWILD_SCALE=medium cargo run -p frogwild-bench --release --bin figures -- fig1
//! ```
//!
//! Each figure function returns [`frogwild::report::Table`]s; the binary prints them as
//! markdown and writes CSVs under `bench_results/`.
//!
//! The experiments run on synthetic graphs whose shape matches the paper's datasets
//! (see `DESIGN.md` §2); [`Scale`] controls the graph sizes and sweep ranges so the
//! whole suite finishes in minutes on a laptop at the default scale.

pub mod figures;
pub mod workloads;

pub use workloads::Scale;

/// Runs the selected figures and returns all produced tables, in order.
pub fn run_figures(names: &[String], scale: &Scale) -> Vec<frogwild::report::Table> {
    let mut tables = Vec::new();
    let wants = |name: &str| {
        names.is_empty()
            || names.iter().any(|n| n == "all")
            || names.iter().any(|n| n.eq_ignore_ascii_case(name))
    };
    if wants("fig1") {
        tables.extend(figures::fig1::run(scale));
    }
    if wants("fig2") {
        tables.extend(figures::fig2::run(scale));
    }
    if wants("fig3") || wants("fig4") {
        tables.extend(figures::fig34::run(scale));
    }
    if wants("fig5") {
        tables.extend(figures::fig5::run(scale));
    }
    if wants("fig6") || wants("fig7") {
        tables.extend(figures::fig67::run(scale));
    }
    if wants("fig8") {
        tables.extend(figures::fig8::run(scale));
    }
    if wants("theory") {
        tables.extend(figures::theory_check::run(scale));
    }
    if wants("ablation") {
        tables.extend(figures::ablation::run(scale));
    }
    if wants("estimator") {
        tables.extend(figures::estimator::run(scale));
    }
    if wants("stragglers") {
        tables.extend(figures::stragglers::run(scale));
    }
    if wants("staleness") {
        tables.extend(figures::staleness::run(scale));
    }
    if wants("walkindex") {
        tables.extend(figures::walkindex::run(scale));
    }
    if wants("qps") {
        tables.extend(figures::qps::run(scale));
    }
    if wants("trace") {
        tables.extend(figures::trace::run(scale));
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_figures_with_unknown_name_produces_nothing() {
        let tables = run_figures(&["not-a-figure".to_string()], &Scale::tiny());
        assert!(tables.is_empty());
    }

    #[test]
    fn run_figures_selects_by_name() {
        let tables = run_figures(&["fig8".to_string()], &Scale::tiny());
        assert!(!tables.is_empty());
        assert!(tables.iter().all(|t| t.title.contains("Figure 8")));
    }
}
