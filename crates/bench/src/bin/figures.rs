//! The figure harness binary: regenerates every figure of the FrogWild paper.
//!
//! ```text
//! USAGE:
//!     cargo run -p frogwild-bench --release --bin figures -- [FIGURES...]
//!
//! FIGURES:
//!     all (default) | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | theory | ablation | estimator | stragglers | staleness | walkindex | qps
//!
//! ENVIRONMENT:
//!     FROGWILD_SCALE=tiny|small|medium   experiment scale (default: small)
//!     FROGWILD_OUT=<dir>                 CSV output directory (default: bench_results)
//! ```
//!
//! Each figure is printed as a markdown table and written as a CSV file.

use frogwild_bench::{run_figures, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: figures [all|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|theory|ablation|estimator|stragglers|staleness|walkindex|qps]...\n\
             env:   FROGWILD_SCALE=tiny|small|medium, FROGWILD_OUT=<dir>"
        );
        return;
    }
    let scale = Scale::from_env();
    let out_dir = std::env::var("FROGWILD_OUT").unwrap_or_else(|_| "bench_results".to_string());
    let selected = if args.is_empty() {
        vec!["all".to_string()]
    } else {
        args
    };

    eprintln!(
        "# FrogWild figure harness — scale: {} twitter vertices / {} livejournal vertices, {} walkers, machines {:?}",
        scale.twitter_vertices, scale.livejournal_vertices, scale.walkers, scale.machine_counts
    );
    eprintln!("# figures: {selected:?}; CSV output: {out_dir}/");

    let start = Instant::now();
    let tables = run_figures(&selected, &scale);
    if tables.is_empty() {
        eprintln!("no figures matched {selected:?}");
        std::process::exit(1);
    }

    for table in &tables {
        println!("{}", table.to_markdown());
        let file_name = sanitize(&table.title);
        let path = std::path::Path::new(&out_dir).join(format!("{file_name}.csv"));
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    eprintln!(
        "# produced {} tables in {:.1}s",
        tables.len(),
        start.elapsed().as_secs_f64()
    );
}

/// Turns a table title into a file name: keep the figure id prefix, drop punctuation.
fn sanitize(title: &str) -> String {
    let prefix: String = title
        .chars()
        .take_while(|&c| c != ':')
        .collect::<String>()
        .to_lowercase();
    prefix
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}
