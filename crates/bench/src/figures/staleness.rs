//! Staleness study: superstep overlap vs accuracy under bounded-staleness execution.
//!
//! Not a paper figure. The paper's engine (like the reproduction's default) is
//! synchronous: every superstep ends in a global barrier, so each one costs the
//! *maximum* over per-machine times. `ExecutionConfig::staleness(s)` relaxes the
//! barrier — a machine may run up to `s` supersteps ahead of its peers' messages
//! under a deterministic delivery schedule — which overlaps fast machines' compute
//! with slow machines' stragglers and converts barrier wait into forward progress.
//!
//! The first table sweeps the staleness window on the Twitter-shaped workload and
//! reports, per `s`: top-20 mass captured (accuracy), total simulated wall-clock
//! time, the simulated barrier wait the overlap avoided, and the executor's
//! staleness telemetry (summed delivery lag, deepest staging inbox). `s = 0` is the
//! exact synchronous baseline; rows below it show how much wall-time the relaxation
//! buys and what it costs in accuracy (walkers absorbing against slightly stale
//! counts).
//!
//! The second table is the straggler profile behind those numbers: each machine's
//! finish time on the pipelined watermark clock for the deepest window swept. The
//! spread between the fastest and slowest machine is exactly the barrier wait a
//! synchronous run would pay per superstep — the wait the first table reports as
//! avoided.

use crate::figures::accuracy;
use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::run_frogwild_with;
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild_engine::{ObliviousPartitioner, PartitionedGraph};

/// The staleness windows swept, in supersteps. `0` is the synchronous baseline.
const STALENESS_SWEEP: [usize; 4] = [0, 1, 2, 4];

/// Runs the staleness sweep table.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = 16.min(*scale.machine_counts.last().unwrap_or(&16));
    let pg = PartitionedGraph::build(&workload.graph, machines, &ObliviousPartitioner, scale.seed);
    let config = FrogWildConfig {
        num_walkers: scale.walkers,
        iterations: 6,
        sync_probability: 0.7,
        seed: scale.seed,
        ..FrogWildConfig::default()
    };

    let mut table = Table::new(
        format!(
            "Ablation G: bounded staleness — overlap vs accuracy ({}, {} machines, ps=0.7)",
            workload.name, machines
        ),
        &[
            "staleness",
            "mass@20",
            "total_time_s",
            "barrier_wait_avoided_s",
            "staleness_lag",
            "max_inbox_depth",
        ],
    );
    let deepest = *STALENESS_SWEEP.last().unwrap_or(&0);
    let mut straggler_profile: Vec<f64> = Vec::new();
    for s in STALENESS_SWEEP {
        let report = run_frogwild_with(&pg, &config, &ExecutionConfig::new().staleness(s))
            .expect("valid figure configuration");
        let (mass, _) = accuracy(&report, &workload.truth, 20);
        table.push_row(vec![
            s.to_string(),
            fmt_f64(mass),
            fmt_f64(report.cost.simulated_total_seconds),
            fmt_f64(report.cost.barrier_wait_avoided_seconds),
            report.cost.staleness_lag.to_string(),
            report.cost.max_inbox_depth.to_string(),
        ]);
        if s == deepest {
            straggler_profile = report.metrics.machine_finish_seconds.clone();
        }
    }

    let mut watermark = Table::new(
        format!(
            "Ablation G2: per-machine watermark finish times ({}, staleness = {deepest})",
            workload.name
        ),
        &["machine", "finish_s", "behind_fastest_s"],
    );
    let fastest = straggler_profile
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    for (machine, &finish) in straggler_profile.iter().enumerate() {
        watermark.push_row(vec![
            machine.to_string(),
            fmt_f64(finish),
            fmt_f64(finish - fastest),
        ]);
    }
    vec![table, watermark]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_sweep_trades_barrier_wait_without_collapsing_accuracy() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        let table = &tables[0];
        assert_eq!(table.len(), STALENESS_SWEEP.len());
        let time = |row: &[String]| row[2].parse::<f64>().unwrap();
        let sync_row = &table.rows[0];
        assert_eq!(sync_row[0], "0");
        // The synchronous baseline defers nothing and avoids no barrier wait.
        assert_eq!(sync_row[3].parse::<f64>().unwrap(), 0.0);
        assert_eq!(sync_row[4], "0");
        for row in &table.rows[1..] {
            // Relaxing the barrier can only shorten (or keep) the simulated makespan,
            // and the avoided wait is visible in the telemetry.
            assert!(time(row) <= time(sync_row) + 1e-12, "{row:?}");
            assert!(row[3].parse::<f64>().unwrap() > 0.0, "{row:?}");
            assert!(row[4].parse::<u64>().unwrap() > 0, "{row:?}");
            // Accuracy stays in the same regime as the synchronous run.
            let mass: f64 = row[1].parse().unwrap();
            let sync_mass: f64 = sync_row[1].parse().unwrap();
            assert!(mass >= sync_mass - 0.2, "{row:?}");
        }
    }

    #[test]
    fn watermark_table_profiles_every_machine() {
        let tables = run(&Scale::tiny());
        let watermark = &tables[1];
        assert!(watermark.title.contains("watermark"));
        // One row per machine; at least one machine is the fastest (lag 0) and the
        // finish times are positive on the pipelined clock.
        assert!(!watermark.rows.is_empty());
        let lags: Vec<f64> = watermark
            .rows
            .iter()
            .map(|row| row[2].parse::<f64>().unwrap())
            .collect();
        assert!(lags.contains(&0.0), "{lags:?}");
        assert!(lags.iter().all(|&lag| lag >= 0.0), "{lags:?}");
        for row in &watermark.rows {
            assert!(row[1].parse::<f64>().unwrap() > 0.0, "{row:?}");
        }
    }
}
