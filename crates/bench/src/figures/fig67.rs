//! Figures 6 and 7: the LiveJournal-shaped experiments on a 20-machine cluster.
//!
//! Figure 6 sweeps (a) the number of initial walkers at 4 iterations and (b) the number
//! of iterations at the baseline walker count, reporting mass captured (k = 100); (c)
//! and (d) report the corresponding total running times. Figure 7 plots the same
//! accuracy against (a) total time and (b) network bytes for
//! iterations ∈ {3, 4, 5} × p_s ∈ {0.1, 0.4, 0.7, 1} plus the PR baselines.

use super::{accuracy, PS_SWEEP};
use crate::workloads::{livejournal_workload, Scale};
use frogwild::driver::{partition_graph, run_frogwild_on, run_graphlab_pr_on};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};

/// k used by the LiveJournal figures.
pub const K: usize = 100;
/// Iteration sweep of Figure 6(b)/(d).
pub const ITERATION_SWEEP: [usize; 5] = [2, 3, 4, 5, 6];

/// Runs the Figure 6 and 7 sweeps.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = livejournal_workload(scale);
    let machines = scale
        .machine_counts
        .iter()
        .copied()
        .find(|&m| m >= 20)
        .unwrap_or_else(|| *scale.machine_counts.last().unwrap_or(&20));
    let cluster = ClusterConfig::new(machines, scale.seed);
    let pg = partition_graph(&workload.graph, &cluster);

    // ---------------------------------------------------------------- Figure 6(a)/(c)
    let mut walkers_acc = Table::new(
        format!(
            "Figure 6(a): accuracy vs number of walkers ({}, {} machines, 4 iters, k={K})",
            workload.name, machines
        ),
        &["walkers", "ps", "mass_captured_k100"],
    );
    let mut walkers_time = Table::new(
        "Figure 6(c): total time vs number of walkers",
        &["walkers", "ps", "total_time_s"],
    );
    for &walkers in &scale.walker_sweep() {
        for &ps in &PS_SWEEP {
            let report = run_frogwild_on(
                &pg,
                &FrogWildConfig {
                    num_walkers: walkers,
                    iterations: 4,
                    sync_probability: ps,
                    ..FrogWildConfig::default()
                },
            )
            .expect("valid figure configuration");
            let (mass, _) = accuracy(&report, &workload.truth, K);
            walkers_acc.push_row(vec![walkers.to_string(), ps.to_string(), fmt_f64(mass)]);
            walkers_time.push_row(vec![
                walkers.to_string(),
                ps.to_string(),
                fmt_f64(report.cost.simulated_total_seconds),
            ]);
        }
    }

    // ---------------------------------------------------------------- Figure 6(b)/(d)
    let mut iters_acc = Table::new(
        format!(
            "Figure 6(b): accuracy vs number of iterations ({} walkers, k={K})",
            scale.walkers
        ),
        &["iterations", "ps", "mass_captured_k100"],
    );
    let mut iters_time = Table::new(
        "Figure 6(d): total time vs number of iterations",
        &["iterations", "ps", "total_time_s"],
    );
    for &iterations in &ITERATION_SWEEP {
        for &ps in &PS_SWEEP {
            let report = run_frogwild_on(
                &pg,
                &FrogWildConfig {
                    num_walkers: scale.walkers,
                    iterations,
                    sync_probability: ps,
                    ..FrogWildConfig::default()
                },
            )
            .expect("valid figure configuration");
            let (mass, _) = accuracy(&report, &workload.truth, K);
            iters_acc.push_row(vec![iterations.to_string(), ps.to_string(), fmt_f64(mass)]);
            iters_time.push_row(vec![
                iterations.to_string(),
                ps.to_string(),
                fmt_f64(report.cost.simulated_total_seconds),
            ]);
        }
    }

    // -------------------------------------------------------------------- Figure 7
    let mut tradeoff = Table::new(
        format!(
            "Figure 7: accuracy vs total time and network ({}, {} machines, {} walkers, k={K})",
            workload.name, machines, scale.walkers
        ),
        &[
            "algorithm",
            "iterations",
            "ps",
            "mass_captured_k100",
            "total_time_s",
            "network_bytes",
        ],
    );
    for (label, config) in [
        ("GraphLab PR 1 iters", PageRankConfig::truncated(1)),
        ("GraphLab PR 2 iters", PageRankConfig::truncated(2)),
        (
            "GraphLab PR exact",
            PageRankConfig {
                max_iterations: scale.exact_pr_iterations,
                tolerance: 1e-9,
                ..PageRankConfig::default()
            },
        ),
    ] {
        let report = run_graphlab_pr_on(&pg, &config).expect("valid figure configuration");
        let (mass, _) = accuracy(&report, &workload.truth, K);
        tradeoff.push_row(vec![
            label.to_string(),
            config.max_iterations.to_string(),
            "-".into(),
            fmt_f64(mass),
            fmt_f64(report.cost.simulated_total_seconds),
            report.cost.network_bytes.to_string(),
        ]);
    }
    for iterations in [3usize, 4, 5] {
        for &ps in &PS_SWEEP {
            let report = run_frogwild_on(
                &pg,
                &FrogWildConfig {
                    num_walkers: scale.walkers,
                    iterations,
                    sync_probability: ps,
                    ..FrogWildConfig::default()
                },
            )
            .expect("valid figure configuration");
            let (mass, _) = accuracy(&report, &workload.truth, K);
            tradeoff.push_row(vec![
                "FrogWild".into(),
                iterations.to_string(),
                ps.to_string(),
                fmt_f64(mass),
                fmt_f64(report.cost.simulated_total_seconds),
                report.cost.network_bytes.to_string(),
            ]);
        }
    }

    vec![walkers_acc, iters_acc, walkers_time, iters_time, tradeoff]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig67_produces_all_five_tables() {
        let scale = Scale::tiny();
        let tables = run(&scale);
        assert_eq!(tables.len(), 5);
        // 6(a): walker sweep × ps sweep
        assert_eq!(tables[0].len(), scale.walker_sweep().len() * PS_SWEEP.len());
        // 6(b): iteration sweep × ps sweep
        assert_eq!(tables[1].len(), ITERATION_SWEEP.len() * PS_SWEEP.len());
        // Figure 7: 3 PR baselines + 3 × 4 FrogWild points
        assert_eq!(tables[4].len(), 3 + 12);
    }
}
