//! Ablation studies for the design choices the paper leaves implicit.
//!
//! Not a paper figure; these tables quantify how much each engineering decision
//! contributes, which DESIGN.md calls out as the natural extension experiments:
//!
//! 1. **Ingress / partitioner ablation** — random vs grid vs greedy (oblivious) vs
//!    HDRF vs PowerLyra-style hybrid vertex-cuts: replication factor, and the resulting
//!    network bytes for both exact PageRank and FrogWild. PowerGraph's entire cost
//!    story hangs on the replication factor, and the paper's `p_s` lever multiplies
//!    with it.
//! 2. **Scatter-mode ablation** — the paper's idealized per-edge binomial scatter
//!    versus the deterministic even split its implementation actually uses: accuracy
//!    and messages generated.
//! 3. **Erasure-model ablation** — the at-least-one-out-edge policy (Example 10)
//!    versus fully independent erasures (Example 9): how many walkers are lost and the
//!    accuracy impact.

use super::accuracy;
use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{run_frogwild_on, run_graphlab_pr_on};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild_engine::{
    GridPartitioner, HdrfPartitioner, HybridPartitioner, ObliviousPartitioner, PartitionedGraph,
    Partitioner, RandomPartitioner,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs the ablation tables.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = 16.min(*scale.machine_counts.last().unwrap_or(&16));
    let k = 100;

    // ------------------------------------------------------- partitioner ablation
    let mut partitioner_table = Table::new(
        format!(
            "Ablation A: vertex-cut ingress strategy ({}, {} machines, {} walkers)",
            workload.name, machines, scale.walkers
        ),
        &[
            "partitioner",
            "replication_factor",
            "pr2_network_bytes",
            "frogwild_network_bytes",
            "frogwild_mass_k100",
        ],
    );
    let hdrf = HdrfPartitioner::default();
    let hybrid = HybridPartitioner::default();
    let partitioners: [(&str, &dyn Partitioner); 5] = [
        ("random", &RandomPartitioner),
        ("grid", &GridPartitioner),
        ("oblivious", &ObliviousPartitioner),
        ("hdrf", &hdrf),
        ("hybrid", &hybrid),
    ];
    for (name, partitioner) in partitioners {
        let pg = PartitionedGraph::build(&workload.graph, machines, partitioner, scale.seed);
        let pr = run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2))
            .expect("valid figure configuration");
        let fw = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: scale.walkers,
                iterations: 4,
                sync_probability: 0.7,
                ..FrogWildConfig::default()
            },
        )
        .expect("valid figure configuration");
        let (mass, _) = accuracy(&fw, &workload.truth, k);
        partitioner_table.push_row(vec![
            name.to_string(),
            fmt_f64(pg.placement().replication_factor()),
            pr.cost.network_bytes.to_string(),
            fw.cost.network_bytes.to_string(),
            fmt_f64(mass),
        ]);
    }

    // ------------------------------------------------------- scatter-mode ablation
    let pg = PartitionedGraph::build(&workload.graph, machines, &ObliviousPartitioner, scale.seed);
    let mut scatter_table = Table::new(
        "Ablation B: deterministic even-split scatter vs idealized binomial scatter",
        &[
            "scatter_mode",
            "ps",
            "mass_captured_k100",
            "network_bytes",
            "messages",
        ],
    );
    for &ps in &[1.0, 0.4] {
        for (mode, binomial) in [("even-split", false), ("binomial", true)] {
            let fw = run_frogwild_on(
                &pg,
                &FrogWildConfig {
                    num_walkers: scale.walkers,
                    iterations: 4,
                    sync_probability: ps,
                    binomial_scatter: binomial,
                    ..FrogWildConfig::default()
                },
            )
            .expect("valid figure configuration");
            let (mass, _) = accuracy(&fw, &workload.truth, k);
            scatter_table.push_row(vec![
                mode.to_string(),
                ps.to_string(),
                fmt_f64(mass),
                fw.cost.network_bytes.to_string(),
                fw.cost.network_messages.to_string(),
            ]);
        }
    }

    // ------------------------------------------------------- erasure-model ablation
    let mut erasure_table = Table::new(
        "Ablation C: at-least-one-out-edge vs independent mirror erasures (serial simulation)",
        &["model", "ps", "mass_captured_k100", "walkers_retained"],
    );
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xE7A5);
    for &ps in &[0.4, 0.1] {
        for (name, model) in [
            (
                "at-least-one",
                frogwild::erasure::ErasureModel::AtLeastOneOutEdge,
            ),
            ("independent", frogwild::erasure::ErasureModel::Independent),
        ] {
            let est = frogwild::erasure::erasure_walk_pagerank(
                &workload.graph,
                scale.walkers,
                4,
                0.15,
                ps,
                model,
                &mut rng,
            );
            let retained: f64 = est.iter().sum();
            let mass = frogwild::metrics::mass_captured(&est, &workload.truth, k).normalized();
            erasure_table.push_row(vec![
                name.to_string(),
                ps.to_string(),
                fmt_f64(mass),
                fmt_f64(retained),
            ]);
        }
    }

    vec![partitioner_table, scatter_table, erasure_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_tables_have_expected_shape() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 5);
        assert_eq!(tables[1].len(), 4);
        assert_eq!(tables[2].len(), 4);
    }

    #[test]
    fn smarter_partitioners_beat_random_replication() {
        let tables = run(&Scale::tiny());
        let rf = |name: &str| -> f64 {
            tables[0].rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(rf("oblivious") <= rf("random"));
        assert!(rf("grid") <= rf("random"));
        assert!(rf("hdrf") <= rf("random"));
        assert!(rf("hybrid") <= rf("random"));
    }

    #[test]
    fn walkers_are_fully_retained_under_at_least_one_model() {
        let tables = run(&Scale::tiny());
        for row in &tables[2].rows {
            let retained: f64 = row[3].parse().unwrap();
            // the estimator is normalised per walker, so full retention sums to 1
            if row[0] == "at-least-one" {
                assert!((retained - 1.0).abs() < 1e-9, "{row:?}");
            } else {
                assert!(retained <= 1.0 + 1e-9);
            }
        }
    }
}
