//! Figure 1: PageRank performance versus cluster size on the Twitter-shaped graph.
//!
//! Four panels, all swept over the machine counts in [`Scale::machine_counts`]:
//! (a) time per iteration, (b) total time, (c) network bytes sent, (d) CPU usage.
//! Series: GraphLab PR exact / 2 iterations / 1 iteration, and FrogWild with
//! `p_s ∈ {1, 0.7, 0.4, 0.1}` (panel (a) plots all four `p_s` values; the other panels
//! use `p_s ∈ {1, 0.1}` exactly like the paper).

use super::PS_SWEEP;
use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{partition_graph, run_frogwild_on, run_graphlab_pr_on, RunReport};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};

/// Runs the Figure 1 sweep and returns one table per panel.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let mut per_iteration = Table::new(
        format!(
            "Figure 1(a): time per iteration vs machines ({}, {} walkers, 4 iters)",
            workload.name, scale.walkers
        ),
        &["machines", "algorithm", "seconds_per_iteration"],
    );
    let mut total_time = Table::new(
        "Figure 1(b): total running time vs machines",
        &["machines", "algorithm", "total_seconds"],
    );
    let mut network = Table::new(
        "Figure 1(c): network bytes sent vs machines",
        &["machines", "algorithm", "network_bytes"],
    );
    let mut cpu = Table::new(
        "Figure 1(d): total CPU usage vs machines",
        &["machines", "algorithm", "cpu_seconds"],
    );

    for &machines in &scale.machine_counts {
        let cluster = ClusterConfig::new(machines, scale.seed);
        let pg = partition_graph(&workload.graph, &cluster);

        let mut runs: Vec<(String, RunReport)> = Vec::new();
        runs.push((
            "GraphLab PR exact".into(),
            run_graphlab_pr_on(
                &pg,
                &PageRankConfig {
                    max_iterations: scale.exact_pr_iterations,
                    tolerance: 1e-9,
                    ..PageRankConfig::default()
                },
            )
            .expect("valid figure configuration"),
        ));
        runs.push((
            "GraphLab PR 2 iters".into(),
            run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2))
                .expect("valid figure configuration"),
        ));
        runs.push((
            "GraphLab PR 1 iters".into(),
            run_graphlab_pr_on(&pg, &PageRankConfig::truncated(1))
                .expect("valid figure configuration"),
        ));
        for &ps in &PS_SWEEP {
            runs.push((
                format!("FrogWild ps={ps}"),
                run_frogwild_on(
                    &pg,
                    &FrogWildConfig {
                        num_walkers: scale.walkers,
                        iterations: 4,
                        sync_probability: ps,
                        ..FrogWildConfig::default()
                    },
                )
                .expect("valid figure configuration"),
            ));
        }

        for (label, report) in &runs {
            let is_frogwild = label.starts_with("FrogWild");
            let is_exact = label.contains("exact");
            // Panel (a): the paper plots exact PR and every FrogWild ps.
            if is_exact || is_frogwild {
                per_iteration.push_row(vec![
                    machines.to_string(),
                    label.clone(),
                    fmt_f64(report.cost.simulated_seconds_per_iteration),
                ]);
            }
            // Panels (b)-(d): PR exact/2/1 plus FrogWild ps = 1 and 0.1.
            let in_bcd = !is_frogwild || label.ends_with("ps=1") || label.ends_with("ps=0.1");
            if in_bcd {
                total_time.push_row(vec![
                    machines.to_string(),
                    label.clone(),
                    fmt_f64(report.cost.simulated_total_seconds),
                ]);
                network.push_row(vec![
                    machines.to_string(),
                    label.clone(),
                    report.cost.network_bytes.to_string(),
                ]);
                cpu.push_row(vec![
                    machines.to_string(),
                    label.clone(),
                    fmt_f64(report.cost.simulated_cpu_seconds),
                ]);
            }
        }
    }
    vec![per_iteration, total_time, network, cpu]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_produces_four_panels_with_expected_series() {
        let scale = Scale::tiny();
        let tables = run(&scale);
        assert_eq!(tables.len(), 4);
        let panel_a = &tables[0];
        // per machine count: exact + 4 FrogWild settings
        assert_eq!(
            panel_a.len(),
            scale.machine_counts.len() * (1 + PS_SWEEP.len())
        );
        let panel_c = &tables[2];
        // per machine count: 3 PR variants + 2 FrogWild settings
        assert_eq!(panel_c.len(), scale.machine_counts.len() * 5);
        assert!(panel_c.title.contains("network"));
    }
}
