//! Figures 3 and 4: the accuracy / time / network trade-off on the Twitter-shaped
//! graph at the largest cluster size.
//!
//! Figure 3(a) plots mass captured (k = 100) against total running time and 3(b)
//! against total network bytes, for GraphLab PR (1, 2, exact iterations) and FrogWild
//! with iterations ∈ {3, 4, 5} × p_s ∈ {0.1, 0.4, 0.7, 1}. Figure 4 is the same data
//! with the network bytes encoded as the circle area, so a single table covers both.

use super::{accuracy, PS_SWEEP};
use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{partition_graph, run_frogwild_on, run_graphlab_pr_on, RunReport};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};

/// The FrogWild iteration counts the sweep covers.
pub const ITERATION_SWEEP: [usize; 3] = [3, 4, 5];
/// k used by the trade-off figures.
pub const K: usize = 100;

/// Runs the Figure 3/4 sweep and returns a single trade-off table.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = *scale.machine_counts.last().unwrap_or(&24);
    let cluster = ClusterConfig::new(machines, scale.seed);
    let pg = partition_graph(&workload.graph, &cluster);

    let mut table = Table::new(
        format!(
            "Figures 3-4: accuracy (k={K}) vs total time vs network ({}, {} machines, {} walkers)",
            workload.name, machines, scale.walkers
        ),
        &[
            "algorithm",
            "iterations",
            "ps",
            "mass_captured_k100",
            "total_time_s",
            "network_bytes",
        ],
    );

    let mut push = |label: &str, iterations: String, ps: String, report: &RunReport| {
        let (mass, _) = accuracy(report, &workload.truth, K);
        table.push_row(vec![
            label.to_string(),
            iterations,
            ps,
            fmt_f64(mass),
            fmt_f64(report.cost.simulated_total_seconds),
            report.cost.network_bytes.to_string(),
        ]);
    };

    for (label, config) in [
        ("GraphLab PR 1 iters", PageRankConfig::truncated(1)),
        ("GraphLab PR 2 iters", PageRankConfig::truncated(2)),
        (
            "GraphLab PR exact",
            PageRankConfig {
                max_iterations: scale.exact_pr_iterations,
                tolerance: 1e-9,
                ..PageRankConfig::default()
            },
        ),
    ] {
        let report = run_graphlab_pr_on(&pg, &config).expect("valid figure configuration");
        push(
            label,
            config.max_iterations.to_string(),
            "-".into(),
            &report,
        );
    }

    for &iterations in &ITERATION_SWEEP {
        for &ps in &PS_SWEEP {
            let report = run_frogwild_on(
                &pg,
                &FrogWildConfig {
                    num_walkers: scale.walkers,
                    iterations,
                    sync_probability: ps,
                    ..FrogWildConfig::default()
                },
            )
            .expect("valid figure configuration");
            push("FrogWild", iterations.to_string(), ps.to_string(), &report);
        }
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig34_covers_the_full_sweep() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 1);
        // 3 PR baselines + 3 iteration counts × 4 ps values
        assert_eq!(tables[0].len(), 3 + ITERATION_SWEEP.len() * PS_SWEEP.len());
    }

    #[test]
    fn fig34_frogwild_cheaper_than_exact_pr() {
        let tables = run(&Scale::tiny());
        let rows = &tables[0].rows;
        let exact_bytes: u64 = rows.iter().find(|r| r[0] == "GraphLab PR exact").unwrap()[5]
            .parse()
            .unwrap();
        let fw_bytes: u64 = rows
            .iter()
            .filter(|r| r[0] == "FrogWild")
            .map(|r| r[5].parse::<u64>().unwrap())
            .max()
            .unwrap();
        assert!(
            fw_bytes < exact_bytes,
            "FrogWild max {fw_bytes} vs exact {exact_bytes}"
        );
    }
}
