//! One module per figure of the paper's evaluation section.
//!
//! Every module exposes `run(scale) -> Vec<Table>`; the tables contain exactly the
//! series the corresponding figure plots (same sweeps, same legends), with absolute
//! numbers coming from the simulated cost model instead of the authors' EC2 cluster.

pub mod ablation;
pub mod estimator;
pub mod fig1;
pub mod fig2;
pub mod fig34;
pub mod fig5;
pub mod fig67;
pub mod fig8;
pub mod qps;
pub mod staleness;
pub mod stragglers;
pub mod theory_check;
pub mod trace;
pub mod walkindex;

use frogwild::driver::RunReport;
use frogwild::metrics::{exact_identification, mass_captured};
use frogwild::report::fmt_f64;

/// Accuracy of a run against a reference distribution, at top-`k`.
pub(crate) fn accuracy(report: &RunReport, truth: &[f64], k: usize) -> (f64, f64) {
    (
        mass_captured(&report.estimate, truth, k).normalized(),
        exact_identification(&report.estimate, truth, k),
    )
}

/// A standard cost/accuracy row used by figure extensions and ad-hoc experiments:
/// `[label, mass@k, time/iter, total time, network bytes, cpu seconds]`.
pub fn cost_row(label: &str, report: &RunReport, truth: &[f64], k: usize) -> Vec<String> {
    let (mass, _) = accuracy(report, truth, k);
    vec![
        label.to_string(),
        fmt_f64(mass),
        fmt_f64(report.cost.simulated_seconds_per_iteration),
        fmt_f64(report.cost.simulated_total_seconds),
        report.cost.network_bytes.to_string(),
        fmt_f64(report.cost.simulated_cpu_seconds),
    ]
}

/// The column headers matching [`cost_row`].
pub const COST_COLUMNS: [&str; 6] = [
    "algorithm",
    "mass@k",
    "time_per_iter_s",
    "total_time_s",
    "network_bytes",
    "cpu_s",
];

/// The `p_s` sweep the paper uses everywhere.
pub(crate) const PS_SWEEP: [f64; 4] = [1.0, 0.7, 0.4, 0.1];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{twitter_workload, Scale};
    use frogwild::prelude::*;

    #[test]
    fn cost_row_has_matching_arity() {
        let scale = Scale::tiny();
        let w = twitter_workload(&scale);
        let report = frogwild::driver::run_frogwild_on(
            &frogwild::driver::partition_graph(&w.graph, &ClusterConfig::new(4, 1)),
            &FrogWildConfig {
                num_walkers: 5_000,
                iterations: 3,
                ..FrogWildConfig::default()
            },
        )
        .unwrap();
        let row = cost_row("test", &report, &w.truth, 20);
        assert_eq!(row.len(), COST_COLUMNS.len());
        let (mass, ident) = accuracy(&report, &w.truth, 20);
        assert!((0.0..=1.0 + 1e-9).contains(&mass));
        assert!((0.0..=1.0).contains(&ident));
    }
}
