//! Straggler-sensitivity study: how much does one slow machine hurt each algorithm?
//!
//! Not a paper figure. Both FrogWild and the baseline PageRank run on a *synchronous*
//! engine, so every superstep waits for the slowest machine. The paper's evaluation uses
//! homogeneous EC2 instances; in practice clusters are rarely uniform, and the question
//! a deployment cares about is how gracefully each algorithm degrades when one machine
//! is slow (noisy neighbour, failing disk, background compaction…).
//!
//! The engine keeps per-machine work and traffic counters for every superstep, so one
//! recorded run can be *re-priced* under any straggler scenario without re-executing
//! ([`frogwild_engine::CostModel::superstep_seconds_hetero`]). The table reports the
//! slowdown factor of total simulated time when machine 0 runs 2× / 4× / 8× slower,
//! for exact PageRank, 2-iteration PageRank and FrogWild at `p_s ∈ {1, 0.4}`.

use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{run_frogwild_on, run_graphlab_pr_on, RunReport};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild_engine::{CostModel, ObliviousPartitioner, PartitionedGraph};

/// The straggler slowdown factors applied to machine 0.
const SLOWDOWNS: [f64; 3] = [2.0, 4.0, 8.0];

/// Runs the straggler-sensitivity table.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = 16.min(*scale.machine_counts.last().unwrap_or(&16));
    let pg = PartitionedGraph::build(&workload.graph, machines, &ObliviousPartitioner, scale.seed);
    let model = CostModel::default();

    let mut table = Table::new(
        format!(
            "Ablation F: straggler sensitivity ({}, {} machines, machine 0 slowed)",
            workload.name, machines
        ),
        &[
            "algorithm",
            "work_imbalance",
            "nominal_time_s",
            "slowdown_2x",
            "slowdown_4x",
            "slowdown_8x",
        ],
    );

    let mut push_row = |label: &str, report: &RunReport| {
        let nominal = report.cost.simulated_total_seconds;
        let mut row = vec![
            label.to_string(),
            fmt_f64(report.metrics.work_imbalance()),
            fmt_f64(nominal),
        ];
        for &slow in &SLOWDOWNS {
            let mut speeds = vec![1.0; machines];
            speeds[0] = slow;
            let degraded = report
                .metrics
                .total_simulated_seconds_hetero(&model, &speeds);
            row.push(fmt_f64(degraded / nominal.max(f64::MIN_POSITIVE)));
        }
        table.push_row(row);
    };

    let exact = run_graphlab_pr_on(
        &pg,
        &PageRankConfig {
            max_iterations: scale.exact_pr_iterations,
            tolerance: 1e-9,
            ..PageRankConfig::default()
        },
    )
    .expect("valid figure configuration");
    push_row("GraphLab PR exact", &exact);
    let two =
        run_graphlab_pr_on(&pg, &PageRankConfig::truncated(2)).expect("valid figure configuration");
    push_row("GraphLab PR 2 iters", &two);
    for &ps in &[1.0, 0.4] {
        let fw = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: scale.walkers,
                iterations: 4,
                sync_probability: ps,
                seed: scale.seed,
                ..FrogWildConfig::default()
            },
        )
        .expect("valid figure configuration");
        push_row(&format!("FrogWild ps={ps}"), &fw);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_table_has_expected_shape_and_monotone_slowdowns() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.len(), 4, "exact PR, 2-iter PR, FrogWild ps=1, ps=0.4");
        for row in &table.rows {
            let s2: f64 = row[3].parse().unwrap();
            let s4: f64 = row[4].parse().unwrap();
            let s8: f64 = row[5].parse().unwrap();
            // Slowing the straggler further can only increase (or keep) total time.
            assert!(s2 >= 1.0 - 1e-9, "{row:?}");
            assert!(s4 >= s2 - 1e-9, "{row:?}");
            assert!(s8 >= s4 - 1e-9, "{row:?}");
            // A single straggler slowed 8x cannot slow the whole run by more than 8x.
            assert!(s8 <= 8.0 + 1e-9, "{row:?}");
        }
    }
}
