//! Walk-index figure: index-served versus fresh-Monte-Carlo PPR, latency and accuracy.
//!
//! Not a figure of the paper — it extends the evaluation to the serving regime the
//! ROADMAP targets: a session answering a *stream* of personalized queries. One table
//! compares, per serving method, the end-to-end latency of the stream, the top-20
//! accuracy against exact PPR, and the work/index economics; a second table shows how
//! the one-time index build cost amortizes across the stream.

use std::time::Instant;

use crate::workloads::{twitter_workload, Scale};
use frogwild::ppr::{personalized_pagerank, single_source_restart};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild::session::PprMethod;

/// Queries in the served stream.
const QUERIES: usize = 50;
/// Sources scored against exact PPR.
const SCORED: usize = 8;
/// Top-k size of the accuracy comparison.
const K: usize = 20;

/// Runs the walk-index serving comparison.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let graph = &workload.graph;
    let machines = 8.min(*scale.machine_counts.last().unwrap_or(&8));
    let query = |source: VertexId| Query::Ppr {
        source,
        k: K,
        teleport_probability: 0.15,
        method: PprMethod::MonteCarlo {
            walkers: (scale.walkers * 5).max(10_000),
            max_steps: 64,
            seed: scale.seed,
        },
    };
    let truths: Vec<Vec<f64>> = (0..SCORED as VertexId)
        .map(|s| {
            personalized_pagerank(
                graph,
                &single_source_restart(graph.num_vertices(), s),
                0.15,
                200,
                1e-9,
            )
            .scores
        })
        .collect();

    let mut table = Table::new(
        format!(
            "Walk index: {QUERIES}-query PPR stream on {} ({} machines)",
            workload.name, machines
        ),
        &[
            "method",
            "stream_seconds",
            "ms_per_query",
            "topk_overlap",
            "walk_hops",
            "index_hits",
            "index_misses",
        ],
    );
    let mut amortize = Table::new(
        "Walk index: one-time build cost amortized over the stream",
        &["quantity", "value"],
    );

    for (label, index) in [
        ("fresh monte-carlo", None),
        ("walk-index served", Some(WalkIndexConfig::default())),
    ] {
        let mut builder = Session::builder(graph).machines(machines).seed(scale.seed);
        if let Some(config) = index {
            builder = builder.walk_index(config);
        }
        let mut session = builder.build().expect("valid figure configuration");
        let started = Instant::now();
        let responses: Vec<Response> = (0..QUERIES as VertexId)
            .map(|s| {
                session
                    .query(&query(s))
                    .expect("valid figure configuration")
            })
            .collect();
        let seconds = started.elapsed().as_secs_f64();
        let mean_overlap = truths
            .iter()
            .enumerate()
            .map(|(s, truth)| exact_identification(&responses[s].estimate, truth, K))
            .sum::<f64>()
            / SCORED as f64;
        let stats = *session.stats();
        table.push_row(vec![
            label.to_string(),
            fmt_f64(seconds),
            fmt_f64(1e3 * seconds / QUERIES as f64),
            fmt_f64(mean_overlap),
            stats.total_walk_hops.to_string(),
            stats.total_index_hits.to_string(),
            stats.total_index_misses.to_string(),
        ]);
        if let Some(report) = session.walk_index_report() {
            amortize.push_row(vec![
                "build_seconds".to_string(),
                fmt_f64(report.build_seconds),
            ]);
            amortize.push_row(vec![
                "arena_bytes".to_string(),
                report.arena_bytes.to_string(),
            ]);
            amortize.push_row(vec![
                "effective_segments".to_string(),
                report.effective_segments.to_string(),
            ]);
            amortize.push_row(vec![
                "amortized_build_seconds_per_query".to_string(),
                fmt_f64(stats.amortized_index_build_seconds()),
            ]);
            amortize.push_row(vec![
                "index_hit_rate".to_string(),
                fmt_f64(stats.index_hit_rate()),
            ]);
        }
    }
    vec![table, amortize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkindex_figure_produces_both_tables() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("Walk index"));
        // One row per serving method.
        assert_eq!(tables[0].rows.len(), 2);
        // The amortization table is filled by the indexed session only.
        assert_eq!(tables[1].rows.len(), 5);
    }
}
