//! Estimator study: FrogWild's end-point estimator against the serial Monte-Carlo
//! baselines of Avrachenkov et al., and a graph-family negative control.
//!
//! Not a paper figure. Section 2.4 argues that FrogWild can use *sublinearly* many
//! walkers because it only targets the heavy vertices, while the prior Monte-Carlo work
//! starts a walker from every vertex and credits entire trajectories. These tables put
//! numbers on that argument:
//!
//! * **Table D (estimator ablation)** — at the same walker budget, compare the engine's
//!   FrogWild estimate (`p_s ∈ {1, 0.4}`) against three serial estimators: end-point
//!   sampling, complete-path sampling, and the walkers-per-vertex rule. Accuracy is
//!   reported with the paper's mass-captured metric plus the order-sensitive Kendall τ
//!   and NDCG, so the variance advantage of complete-path counting is visible even when
//!   the captured-mass numbers saturate.
//! * **Table E (graph-family control)** — the same FrogWild configuration on a
//!   Twitter-shaped heavy-tailed graph and on a Watts–Strogatz small-world graph of the
//!   same size. The flat PageRank vector of the small-world graph is exactly the regime
//!   where Remark 6 predicts the walker budget must grow, and the captured-mass gap
//!   shows it.

use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::run_frogwild_on;
use frogwild::metrics::{exact_identification, mass_captured};
use frogwild::montecarlo::{complete_path_pagerank, walkers_per_vertex_pagerank};
use frogwild::prelude::*;
use frogwild::rank_metrics::{kendall_tau_top_k, ndcg_at_k};
use frogwild::reference::{exact_pagerank, serial_random_walk_pagerank};
use frogwild::report::{fmt_f64, Table};
use frogwild_engine::{ObliviousPartitioner, PartitionedGraph};
use frogwild_graph::generators::watts_strogatz::{watts_strogatz, WattsStrogatzParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs the estimator-study tables.
pub fn run(scale: &Scale) -> Vec<Table> {
    let k = 100;
    let workload = twitter_workload(scale);
    let machines = 16.min(*scale.machine_counts.last().unwrap_or(&16));
    let max_steps = 4;

    // ---------------------------------------------------------------- Table D
    let mut estimator_table = Table::new(
        format!(
            "Ablation D: estimator comparison ({}, {} walkers, {} steps)",
            workload.name, scale.walkers, max_steps
        ),
        &[
            "estimator",
            "walkers",
            "mass_k100",
            "exact_ident_k100",
            "kendall_tau_k100",
            "ndcg_k100",
        ],
    );
    let mut push_estimator_row = |name: &str, walkers: u64, estimate: &[f64]| {
        estimator_table.push_row(vec![
            name.to_string(),
            walkers.to_string(),
            fmt_f64(mass_captured(estimate, &workload.truth, k).normalized()),
            fmt_f64(exact_identification(estimate, &workload.truth, k)),
            fmt_f64(kendall_tau_top_k(estimate, &workload.truth, k)),
            fmt_f64(ndcg_at_k(estimate, &workload.truth, k)),
        ]);
    };

    let pg = PartitionedGraph::build(&workload.graph, machines, &ObliviousPartitioner, scale.seed);
    for &ps in &[1.0, 0.4] {
        let report = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: scale.walkers,
                iterations: max_steps,
                sync_probability: ps,
                seed: scale.seed,
                ..FrogWildConfig::default()
            },
        )
        .expect("valid figure configuration");
        push_estimator_row(
            &format!("frogwild engine ps={ps}"),
            scale.walkers,
            &report.estimate,
        );
    }

    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xE571);
    let endpoint =
        serial_random_walk_pagerank(&workload.graph, scale.walkers, max_steps, 0.15, &mut rng);
    push_estimator_row("serial end-point MC", scale.walkers, &endpoint);

    let complete =
        complete_path_pagerank(&workload.graph, scale.walkers, max_steps, 0.15, &mut rng);
    push_estimator_row("serial complete-path MC", scale.walkers, &complete);

    // The walkers-per-vertex rule spends Θ(n) walks; report its real budget.
    let per_vertex_walks = 1u32;
    let per_vertex =
        walkers_per_vertex_pagerank(&workload.graph, per_vertex_walks, max_steps, 0.15, &mut rng);
    push_estimator_row(
        "walkers-per-vertex MC",
        workload.graph.num_vertices() as u64 * per_vertex_walks as u64,
        &per_vertex,
    );

    // ---------------------------------------------------------------- Table E
    let mut family_table = Table::new(
        format!(
            "Ablation E: graph-family control ({} walkers, 4 iterations, ps=0.7)",
            scale.walkers
        ),
        &["graph", "top100_true_mass", "mass_k100", "exact_ident_k100"],
    );
    let mut small_world_rng = SmallRng::seed_from_u64(scale.seed ^ 0x5A11);
    let small_world = watts_strogatz(
        scale.twitter_vertices,
        WattsStrogatzParams::default(),
        &mut small_world_rng,
    );
    let small_world_truth = exact_pagerank(&small_world, 0.15, 200, 1e-10).scores;
    let families: [(&str, &DiGraph, &[f64]); 2] = [
        (
            "twitter-shaped (heavy tail)",
            &workload.graph,
            &workload.truth,
        ),
        ("watts-strogatz (flat)", &small_world, &small_world_truth),
    ];
    for (name, graph, truth) in families {
        let pg = PartitionedGraph::build(graph, machines, &ObliviousPartitioner, scale.seed);
        let report = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: scale.walkers,
                iterations: 4,
                sync_probability: 0.7,
                seed: scale.seed,
                ..FrogWildConfig::default()
            },
        )
        .expect("valid figure configuration");
        let optimal = mass_captured(truth, truth, k).optimal;
        family_table.push_row(vec![
            name.to_string(),
            fmt_f64(optimal),
            fmt_f64(mass_captured(&report.estimate, truth, k).normalized()),
            fmt_f64(exact_identification(&report.estimate, truth, k)),
        ]);
    }

    vec![estimator_table, family_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_tables_have_expected_shape() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 5, "2 engine rows + 3 serial estimators");
        assert_eq!(tables[1].len(), 2, "two graph families");
    }

    #[test]
    fn heavy_tailed_graph_concentrates_more_mass_than_small_world() {
        let tables = run(&Scale::tiny());
        let family = &tables[1];
        let optimal: Vec<f64> = family.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // The true top-100 of the heavy-tailed graph holds more mass than the
        // small-world graph's — that is the premise of the whole approach.
        assert!(
            optimal[0] > optimal[1],
            "twitter-shaped {} vs small-world {}",
            optimal[0],
            optimal[1]
        );
    }

    #[test]
    fn all_estimators_produce_valid_metric_values() {
        let tables = run(&Scale::tiny());
        for row in &tables[0].rows {
            let mass: f64 = row[2].parse().unwrap();
            let ident: f64 = row[3].parse().unwrap();
            let tau: f64 = row[4].parse().unwrap();
            let ndcg: f64 = row[5].parse().unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&mass), "{row:?}");
            assert!((0.0..=1.0).contains(&ident), "{row:?}");
            assert!((-1.0..=1.0).contains(&tau), "{row:?}");
            assert!((0.0..=1.0 + 1e-9).contains(&ndcg), "{row:?}");
        }
    }
}
