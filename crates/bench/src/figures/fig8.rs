//! Figure 8: network usage versus the number of initial walkers on the
//! LiveJournal-shaped graph (20 machines, 4 iterations, p_s = 1).
//!
//! The paper reports a linear reduction in traffic as the walker count shrinks — the
//! reason FrogWild can afford far fewer walkers than the one-walker-per-vertex schemes
//! in earlier Monte-Carlo PageRank work.

use crate::workloads::{livejournal_workload, Scale};
use frogwild::driver::{partition_graph, run_frogwild_on};
use frogwild::prelude::*;
use frogwild::report::Table;

/// Runs the Figure 8 sweep.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = livejournal_workload(scale);
    let machines = scale
        .machine_counts
        .iter()
        .copied()
        .find(|&m| m >= 20)
        .unwrap_or_else(|| *scale.machine_counts.last().unwrap_or(&20));
    let cluster = ClusterConfig::new(machines, scale.seed);
    let pg = partition_graph(&workload.graph, &cluster);

    let mut table = Table::new(
        format!(
            "Figure 8: network bytes vs number of initial walkers ({}, {} machines, 4 iters, ps=1)",
            workload.name, machines
        ),
        &["walkers", "network_bytes", "messages"],
    );
    for &walkers in &scale.walker_sweep() {
        let report = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: walkers,
                iterations: 4,
                sync_probability: 1.0,
                ..FrogWildConfig::default()
            },
        )
        .expect("valid figure configuration");
        table.push_row(vec![
            walkers.to_string(),
            report.cost.network_bytes.to_string(),
            report.cost.network_messages.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_network_grows_with_walkers() {
        let scale = Scale::tiny();
        let tables = run(&scale);
        assert_eq!(tables.len(), 1);
        let bytes: Vec<u64> = tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert_eq!(bytes.len(), scale.walker_sweep().len());
        assert!(
            bytes.windows(2).all(|w| w[0] <= w[1]),
            "network bytes should be non-decreasing in walkers: {bytes:?}"
        );
        assert!(*bytes.last().unwrap() > bytes[0]);
    }
}
