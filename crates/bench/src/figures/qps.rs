//! Serving-throughput figure: the concurrent front-end's QPS and latency
//! percentiles across worker counts, against the serial reference path.
//!
//! Not a figure of the paper — it extends the evaluation to the regime the serving
//! front-end targets: a session answering a mixed top-k / personalized query stream
//! through a fixed worker pool. The first table sweeps the pool size over one
//! 100-query stream and reports throughput, latency percentiles, the speedup over
//! serial, and — the determinism pin — whether every response stayed bit-identical
//! to the serial path. The second table sweeps the bounded queue's depth under the
//! load-shedding admission policy, showing rejection taking over as buffering shrinks.

use crate::workloads::Scale;
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild::serve::{Admission, ServeConfig, ServeReport};
use frogwild::session::PprMethod;
use frogwild_graph::generators::twitter_like;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Worker counts swept in the throughput table (0 = the serial reference row).
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Queue depths swept in the admission table (batches of buffering).
const DEPTH_SWEEP: [usize; 3] = [1, 4, 16];

/// The mixed stream: one global top-k per `MIX` queries, the rest personalized.
const MIX: usize = 4;

/// Builds the mixed query stream. Per-query seeds are irrelevant — the serving
/// front-end re-roots them by sequence id.
fn stream(count: usize, vertices: u64, walkers: u64) -> Vec<Query> {
    (0..count)
        .map(|i| {
            if i % MIX == 0 {
                Query::TopK {
                    k: 20,
                    config: FrogWildConfig {
                        num_walkers: walkers,
                        iterations: 3,
                        sync_probability: 0.7,
                        ..FrogWildConfig::default()
                    },
                }
            } else {
                Query::Ppr {
                    source: ((i as u64 * 31) % vertices) as VertexId,
                    k: 20,
                    teleport_probability: 0.15,
                    method: PprMethod::MonteCarlo {
                        walkers: 2_000,
                        max_steps: 32,
                        seed: 0,
                    },
                }
            }
        })
        .collect()
}

/// One throughput row: `workers` label, counts, wall, qps, percentiles, speedup,
/// bit-identity verdict against the serial responses.
fn qps_row(label: &str, report: &ServeReport, serial: &ServeReport) -> Vec<String> {
    let overall = report.latency.overall();
    let identical = report
        .responses()
        .zip(serial.responses())
        .all(|(a, b)| a == b)
        && report.served == serial.served;
    vec![
        label.to_string(),
        report.served.to_string(),
        report.rejected.to_string(),
        fmt_f64(report.wall_seconds),
        fmt_f64(report.qps()),
        fmt_f64(overall.p50() * 1e3),
        fmt_f64(overall.p95() * 1e3),
        fmt_f64(overall.p99() * 1e3),
        fmt_f64(serial.wall_seconds / report.wall_seconds.max(1e-12)),
        if identical { "yes" } else { "NO" }.to_string(),
    ]
}

/// Runs the serving-throughput comparison.
pub fn run(scale: &Scale) -> Vec<Table> {
    // ~34 edges per vertex: 3 000 vertices ≈ a 100k-edge graph, the serving target;
    // the tiny preset stays below that so the test suite finishes in seconds.
    let vertices = scale.twitter_vertices.clamp(1_000, 3_000);
    let queries_n = if scale.walkers <= 1_000 { 24 } else { 100 };
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let graph = twitter_like(vertices, &mut rng);
    let queries = stream(
        queries_n,
        graph.num_vertices() as u64,
        scale.walkers.max(4_000),
    );
    let session = || {
        Session::builder(&graph)
            .machines(8)
            .seed(scale.seed)
            .walk_index(WalkIndexConfig::default())
            .build()
            .expect("valid figure configuration")
    };

    let mut throughput = Table::new(
        format!(
            "Serving throughput: {queries_n}-query mixed stream on {vertices} vertices / {} edges",
            graph.num_edges()
        ),
        &[
            "workers",
            "served",
            "rejected",
            "wall_s",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "speedup_vs_serial",
            "identical_to_serial",
        ],
    );

    let mut serial_session = session();
    let serial = serial_session.serve().serve_serial(&queries);
    throughput.push_row(qps_row("serial", &serial, &serial));
    for workers in WORKER_SWEEP {
        let mut s = session();
        let report = s
            .serve_with(ServeConfig::with_workers(workers))
            .expect("valid figure configuration")
            .serve(&queries);
        throughput.push_row(qps_row(&workers.to_string(), &report, &serial));
    }

    let mut admission = Table::new(
        "Serving admission: load shedding (Admission::Reject) vs queue depth, 1 worker",
        &["queue_depth", "served", "rejected", "qps"],
    );
    for depth in DEPTH_SWEEP {
        let mut s = session();
        let report = s
            .serve_with(ServeConfig {
                workers: 1,
                queue_depth: depth,
                batch: 1,
                admission: Admission::Reject,
            })
            .expect("valid figure configuration")
            .serve(&queries);
        admission.push_row(vec![
            depth.to_string(),
            report.served.to_string(),
            report.rejected.to_string(),
            fmt_f64(report.qps()),
        ]);
    }

    vec![throughput, admission]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qps_figure_produces_both_tables_and_stays_deterministic() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        // serial row + one per swept worker count.
        assert_eq!(tables[0].rows.len(), 1 + WORKER_SWEEP.len());
        for row in &tables[0].rows {
            assert_eq!(
                row[9], "yes",
                "worker count {} diverged from serial",
                row[0]
            );
            assert_eq!(row[2], "0", "Block admission must not reject");
        }
        assert_eq!(tables[1].rows.len(), DEPTH_SWEEP.len());
        // Every submitted query is accounted for: served + rejected = stream size.
        for row in &tables[1].rows {
            let served: u64 = row[1].parse().unwrap();
            let rejected: u64 = row[2].parse().unwrap();
            assert_eq!(served + rejected, 24);
        }
    }
}
