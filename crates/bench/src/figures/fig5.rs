//! Figure 5: FrogWild versus the uniform-sparsification baseline on the Twitter-shaped
//! graph, 12 machines.
//!
//! The baseline deletes each edge with probability `1 - q` and runs two iterations of
//! GraphLab PR on the thinner graph; FrogWild runs 4 iterations with matching
//! `p_s = q`. The figure plots mass captured (k = 100) against total running time for
//! q / p_s ∈ {0.4, 0.7, 1}.

use super::accuracy;
use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{partition_graph, run_frogwild_on, run_sparsified_pr};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild::sparsify::SparsifiedBaselineConfig;

/// k used by the figure.
pub const K: usize = 100;

/// Runs the Figure 5 comparison.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = *scale.machine_counts.first().unwrap_or(&12);
    let cluster = ClusterConfig::new(machines, scale.seed);
    let pg = partition_graph(&workload.graph, &cluster);

    let mut table = Table::new(
        format!(
            "Figure 5: FrogWild vs uniform sparsification ({}, {} machines, {} walkers, k={K})",
            workload.name, machines, scale.walkers
        ),
        &[
            "algorithm",
            "q_or_ps",
            "mass_captured_k100",
            "total_time_s",
            "time_per_iter_s",
            "network_bytes",
        ],
    );

    for config in SparsifiedBaselineConfig::paper_sweep() {
        let report = run_sparsified_pr(
            &workload.graph,
            &cluster,
            config.keep_probability,
            &config.pagerank_config(scale.seed),
        )
        .expect("valid figure configuration");
        let (mass, _) = accuracy(&report, &workload.truth, K);
        table.push_row(vec![
            "Sparsified GraphLab PR 2 iters".into(),
            config.keep_probability.to_string(),
            fmt_f64(mass),
            fmt_f64(report.cost.simulated_total_seconds),
            fmt_f64(report.cost.simulated_seconds_per_iteration),
            report.cost.network_bytes.to_string(),
        ]);
    }

    for ps in [0.4, 0.7, 1.0] {
        let report = run_frogwild_on(
            &pg,
            &FrogWildConfig {
                num_walkers: scale.walkers,
                iterations: 4,
                sync_probability: ps,
                ..FrogWildConfig::default()
            },
        )
        .expect("valid figure configuration");
        let (mass, _) = accuracy(&report, &workload.truth, K);
        table.push_row(vec![
            "FrogWild 4 iters".into(),
            ps.to_string(),
            fmt_f64(mass),
            fmt_f64(report.cost.simulated_total_seconds),
            fmt_f64(report.cost.simulated_seconds_per_iteration),
            report.cost.network_bytes.to_string(),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_produces_both_families() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 6);
        let frogwild_rows = tables[0]
            .rows
            .iter()
            .filter(|r| r[0].starts_with("FrogWild"))
            .count();
        assert_eq!(frogwild_rows, 3);
    }

    #[test]
    fn fig5_frogwild_is_cheaper_per_iteration_and_on_the_network() {
        // The paper's total-time gap needs per-superstep work to dominate the
        // per-superstep barrier, which only happens at the harness scales (small /
        // medium). At tiny scale the claim that survives is the per-iteration cost and
        // the network traffic — both strictly lower for FrogWild at matching q = p_s.
        let tables = run(&Scale::tiny());
        let rows = &tables[0].rows;
        let cell = |algo_prefix: &str, q: &str, col: usize| -> f64 {
            rows.iter()
                .find(|r| r[0].starts_with(algo_prefix) && r[1] == q)
                .unwrap()[col]
                .parse()
                .unwrap()
        };
        assert!(cell("FrogWild", "0.7", 4) < cell("Sparsified", "0.7", 4));
        assert!(cell("FrogWild", "0.7", 5) < cell("Sparsified", "0.7", 5));
    }
}
