//! Numerical check of the paper's analysis: Theorem 1's error envelope, Theorem 2's
//! intersection-probability bound, and Proposition 7's bound on `‖π‖_∞`.
//!
//! The paper does not plot these (they are proved, not measured); the table produced
//! here documents that the implementation's measured error indeed stays inside the
//! analytical envelope, which is the strongest end-to-end consistency check available
//! for the partial-synchronization machinery.

use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{partition_graph, run_frogwild_on};
use frogwild::metrics::mass_captured;
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild::theory;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs the theory-vs-measurement comparison.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let cluster = ClusterConfig::new(
        16.min(*scale.machine_counts.last().unwrap_or(&16)),
        scale.seed,
    );
    let pg = partition_graph(&workload.graph, &cluster);
    let pi_max = workload.truth.iter().cloned().fold(0.0, f64::max);
    let n = workload.graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0x7E07);

    // ------------------------------------------------------------------- Theorem 2
    let mut theorem2 = Table::new(
        format!(
            "Theorem 2: intersection probability, bound vs Monte-Carlo ({})",
            workload.name
        ),
        &["steps", "bound", "measured"],
    );
    for steps in [2usize, 4, 6] {
        let bound = theory::intersection_probability_bound(n, steps, 0.15, pi_max);
        let measured = theory::empirical_intersection_probability(
            &workload.graph,
            steps,
            0.15,
            20_000,
            &mut rng,
        );
        theorem2.push_row(vec![steps.to_string(), fmt_f64(bound), fmt_f64(measured)]);
    }

    // --------------------------------------------------------------- Proposition 7
    let mut prop7 = Table::new(
        "Proposition 7: bound on the largest PageRank entry (gamma = 0.5, theta = 2.2)",
        &[
            "n",
            "bound_on_pi_max",
            "measured_pi_max",
            "failure_probability",
        ],
    );
    let (bound, failure) = theory::power_law_max_bound(n, 0.5, 2.2);
    prop7.push_row(vec![
        n.to_string(),
        fmt_f64(bound),
        fmt_f64(pi_max),
        fmt_f64(failure),
    ]);

    // ------------------------------------------------------------------- Theorem 1
    let mut theorem1 = Table::new(
        format!(
            "Theorem 1: measured captured-mass loss vs epsilon envelope ({}, k=30, delta=0.1, {} walkers)",
            workload.name, scale.walkers
        ),
        &["ps", "iterations", "measured_loss", "epsilon_bound", "within_bound"],
    );
    let k = 30;
    for &ps in &[1.0, 0.7, 0.4, 0.1] {
        for &iterations in &[4usize, 6] {
            let report = run_frogwild_on(
                &pg,
                &FrogWildConfig {
                    num_walkers: scale.walkers,
                    iterations,
                    sync_probability: ps,
                    ..FrogWildConfig::default()
                },
            )
            .expect("valid figure configuration");
            let m = mass_captured(&report.estimate, &workload.truth, k);
            let p_intersect = theory::intersection_probability_bound(n, iterations, 0.15, pi_max);
            let epsilon =
                theory::theorem1_epsilon(0.15, iterations, k, 0.1, scale.walkers, ps, p_intersect);
            theorem1.push_row(vec![
                ps.to_string(),
                iterations.to_string(),
                fmt_f64(m.loss()),
                fmt_f64(epsilon),
                (m.loss() <= epsilon).to_string(),
            ]);
        }
    }

    vec![theorem2, prop7, theorem1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theory_tables_report_containment() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 3);
        // Theorem 1 rows must all be within the bound at tiny scale too.
        let theorem1 = &tables[2];
        assert!(theorem1.rows.iter().all(|r| r[4] == "true"), "{theorem1:?}");
        // Theorem 2: measured never exceeds the bound by more than noise.
        for row in &tables[0].rows {
            let bound: f64 = row[1].parse().unwrap();
            let measured: f64 = row[2].parse().unwrap();
            assert!(
                measured <= bound * 1.3 + 0.02,
                "bound {bound}, measured {measured}"
            );
        }
    }
}
