//! Trace study: where a FrogWild run spends its time, phase by phase.
//!
//! Not a paper figure. The `frogwild::obs` tracer records every superstep's
//! gather/apply/sync/scatter/route spans with frontier and staleness counters;
//! this figure runs the Twitter-shaped workload once under a host-clock tracer
//! and folds the merged timeline into two tables:
//!
//! * the **phase breakdown** — per span name: how many spans, summed/mean/max
//!   duration — the same summary `TraceReport` prints on the CLI's `--trace`;
//! * the **slowest spans** — the top individual spans with their deterministic
//!   timeline keys, the first place to look when one superstep dominates.
//!
//! The run also cross-checks the tracing bit-identity contract: the traced
//! estimate must match an untraced run of the same configuration exactly.

use crate::workloads::{twitter_workload, Scale};
use frogwild::driver::{run_frogwild_traced, run_frogwild_with};
use frogwild::obs::{TraceConfig, Tracer};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};
use frogwild_engine::{ObliviousPartitioner, PartitionedGraph};

/// How many slowest spans the second table lists.
const SLOWEST: usize = 8;

/// Runs the traced workload and renders the phase-breakdown tables.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = 16.min(*scale.machine_counts.last().unwrap_or(&16));
    let pg = PartitionedGraph::build(&workload.graph, machines, &ObliviousPartitioner, scale.seed);
    let config = FrogWildConfig {
        num_walkers: scale.walkers,
        iterations: 6,
        sync_probability: 0.7,
        seed: scale.seed,
        ..FrogWildConfig::default()
    };
    let execution = ExecutionConfig::new();

    let tracer = Tracer::new(TraceConfig::enabled());
    let traced =
        run_frogwild_traced(&pg, &config, &execution, &tracer).expect("valid figure configuration");
    let untraced = run_frogwild_with(&pg, &config, &execution).expect("valid figure configuration");
    assert_eq!(
        traced.estimate, untraced.estimate,
        "tracing must not change results"
    );
    let report = tracer.finish().report(SLOWEST);

    let mut phases = Table::new(
        format!(
            "Trace A: per-phase breakdown ({}, {} machines, {} supersteps)",
            workload.name, machines, config.iterations
        ),
        &["phase", "count", "total_us", "mean_us", "max_us"],
    );
    for row in &report.phases {
        phases.push_row(vec![
            row.name.to_string(),
            row.count.to_string(),
            row.total_us.to_string(),
            fmt_f64(row.mean_us()),
            row.max_us.to_string(),
        ]);
    }

    let mut slowest = Table::new(
        format!("Trace B: the {SLOWEST} slowest spans ({})", workload.name),
        &["span", "superstep", "machine", "lane", "dur_us"],
    );
    for row in &report.slowest {
        slowest.push_row(vec![
            row.name.to_string(),
            row.key.seq.to_string(),
            row.key.pid.to_string(),
            row.key.lane.to_string(),
            row.dur_us.to_string(),
        ]);
    }
    vec![phases, slowest]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_figure_breaks_the_run_into_phases() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        let phases = &tables[0];
        let names: Vec<&str> = phases.rows.iter().map(|r| r[0].as_str()).collect();
        for expected in ["superstep", "gather", "apply", "sync", "scatter"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        // Six supersteps were traced, so every engine phase ran six times.
        let superstep_row = phases
            .rows
            .iter()
            .find(|r| r[0] == "superstep")
            .expect("superstep phase");
        assert_eq!(superstep_row[1], "6");
        let slowest = &tables[1];
        assert!(!slowest.rows.is_empty());
        assert!(slowest.rows.len() <= SLOWEST);
    }
}
