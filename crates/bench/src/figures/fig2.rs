//! Figure 2: approximation accuracy versus k on the Twitter-shaped graph, 16 machines.
//!
//! (a) mass captured, (b) exact identification, for k ∈ {30, 100, 300, 1000}.
//! Series: GraphLab PR 2 iters, 1 iter, and FrogWild with p_s ∈ {1, 0.7, 0.4, 0.1}.
//!
//! This figure is the session API's home turf: one `Session` partitions the workload
//! graph once and then serves the whole six-way algorithm sweep as a query stream.

use super::PS_SWEEP;
use crate::workloads::{twitter_workload, Scale};
use frogwild::prelude::*;
use frogwild::report::{fmt_f64, Table};

/// The k values the paper sweeps.
pub const K_SWEEP: [usize; 4] = [30, 100, 300, 1000];

/// Runs the Figure 2 sweep: one table per accuracy metric.
pub fn run(scale: &Scale) -> Vec<Table> {
    let workload = twitter_workload(scale);
    let machines = 16.min(*scale.machine_counts.last().unwrap_or(&16));
    let mut session = Session::builder(&workload.graph)
        .machines(machines)
        .seed(scale.seed)
        .build()
        .expect("valid figure configuration");
    let max_k = *K_SWEEP.last().unwrap();

    let mut runs: Vec<(String, Response)> = Vec::new();
    for iters in [2usize, 1] {
        runs.push((
            format!("GraphLab PR {iters} iters"),
            session
                .query(&Query::Pagerank {
                    k: max_k,
                    config: PageRankConfig::truncated(iters),
                })
                .expect("valid figure configuration"),
        ));
    }
    for &ps in &PS_SWEEP {
        runs.push((
            format!("FrogWild ps={ps}"),
            session
                .query(&Query::TopK {
                    k: max_k,
                    config: FrogWildConfig {
                        num_walkers: scale.walkers,
                        iterations: 4,
                        sync_probability: ps,
                        ..FrogWildConfig::default()
                    },
                })
                .expect("valid figure configuration"),
        ));
    }

    let mut mass_table = Table::new(
        format!(
            "Figure 2(a): mass captured vs k ({}, {} machines, {} walkers, 4 iters)",
            workload.name, machines, scale.walkers
        ),
        &["k", "algorithm", "mass_captured"],
    );
    let mut ident_table = Table::new(
        "Figure 2(b): exact identification vs k",
        &["k", "algorithm", "exact_identification"],
    );
    for &k in &K_SWEEP {
        for (label, response) in &runs {
            let mass = mass_captured(&response.estimate, &workload.truth, k).normalized();
            let ident = exact_identification(&response.estimate, &workload.truth, k);
            mass_table.push_row(vec![k.to_string(), label.clone(), fmt_f64(mass)]);
            ident_table.push_row(vec![k.to_string(), label.clone(), fmt_f64(ident)]);
        }
    }
    vec![mass_table, ident_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_produces_both_metrics_for_all_series() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        // 4 k values × (2 PR + 4 FrogWild) series
        assert_eq!(tables[0].len(), K_SWEEP.len() * 6);
        assert_eq!(tables[1].len(), K_SWEEP.len() * 6);
    }

    #[test]
    fn fig2_values_are_valid_and_ordered_sanely() {
        // At tiny scale the walker budget is far too small for the paper's accuracy
        // levels (see EXPERIMENTS.md caveats S1/S4); the meaningful structural checks
        // are that every reported value is a valid fraction, that the 2-iteration
        // baseline does not trail the 1-iteration baseline, and that FrogWild's
        // full-sync accuracy is not worse than its most aggressive partial-sync
        // setting. The paper-level comparison against the 1-iteration baseline is
        // asserted at larger scale by tests/integration_end_to_end_figures.rs.
        let tables = run(&Scale::tiny());
        let mass = &tables[0];
        for row in &mass.rows {
            let v: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&v), "{row:?}");
        }
        let value = |k: &str, algo: &str| -> f64 {
            mass.rows
                .iter()
                .find(|r| r[0] == k && r[1] == algo)
                .map(|r| r[2].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(value("100", "GraphLab PR 2 iters") >= value("100", "GraphLab PR 1 iters") - 0.02);
        assert!(value("100", "FrogWild ps=1") >= value("100", "FrogWild ps=0.1") - 0.1);
        assert!(value("30", "FrogWild ps=1") > 0.5);
    }
}
